"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class.  The more specific subclasses communicate *which*
precondition of the paper's model was violated (e.g. the graph must be
connected, the NodeModel fan-out ``k`` must not exceed the minimum degree).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """The supplied graph violates a structural precondition."""


class NotConnectedError(GraphError):
    """The graph is not connected.

    Both the NodeModel and the EdgeModel are only defined (and only
    converge to a single value) on connected graphs; see Section 2 of the
    paper.
    """


class NotRegularError(GraphError):
    """A regular graph was required (e.g. for Lemma 5.7's closed form)."""


class ParameterError(ReproError, ValueError):
    """A model parameter is outside its admissible range.

    Examples: ``alpha`` outside ``(0, 1)``, ``k < 1``, or ``k`` larger than
    the minimum degree (the NodeModel samples ``k`` distinct neighbours
    without replacement, Definition 2.1).
    """


class ConvergenceError(ReproError, RuntimeError):
    """A run failed to reach the requested tolerance within its step budget."""


class ScheduleError(ReproError):
    """A recorded selection schedule is inconsistent with the graph/model."""


class SpecError(ReproError, ValueError):
    """A declarative run specification is invalid.

    Raised by :mod:`repro.api` for unknown experiment ids, undeclared
    presets or parameters, values that fail a parameter schema, and
    malformed :class:`~repro.api.RunSpec` payloads.
    """


class ArtifactError(ReproError):
    """An artifact store operation failed (missing key, corrupt manifest)."""


class StorageError(ArtifactError):
    """The storage medium itself failed (disk full, unwritable path).

    Distinct from :class:`ArtifactError`'s logical failures so callers
    can tell "this key does not exist" from "the disk is out of space":
    the former is a caller bug, the latter is an operational condition —
    the job service fails the affected job cleanly with a diagnosable
    message instead of crashing the worker.
    """


class JobError(ReproError):
    """A job-service operation failed.

    Raised by :mod:`repro.jobs` for unknown job ids, malformed job
    records, waits that time out, lost claim ownership, and handles
    resolved against failed/quarantined/cancelled jobs.
    """
