"""EXP-PB1 — the one-step potential contraction (Proposition B.1).

From a *fixed* state ``xi`` we estimate ``E[phi(xi')] / phi(xi)`` by
averaging many independent single steps and compare with the closed-form
factor.  Two initial states are used:

* ``xi = f_2(P)`` — the bound's extremal direction, where the measured
  factor should essentially *match* the closed form (the spectral
  inequality used in the proof is tight on ``f_2``);
* a random Gaussian state — where the measured factor must stay *below*
  the bound (it is an upper bound for every state).

The EdgeModel analogue (Proposition D.1(ii)) is measured alongside with
its own factor ``1 - alpha (1-alpha) lambda_2(L) / m`` against the
uniform potential ``phi_V``.
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment
from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, gaussian_values
from repro.core.node_model import NodeModel
from repro.core.potentials import phi_pi, phi_uniform
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.graphs.spectral import (
    second_laplacian_eigenpair,
    second_walk_eigenpair,
    stationary_distribution,
)
from repro.sim.results import ResultTable
from repro.theory.contraction import (
    edge_model_contraction_factor,
    node_model_contraction_factor,
)

ALPHA = 0.5


def _node_measured_factor(graph, initial, k, trials, seed) -> float:
    pi = stationary_distribution(graph)
    phi0 = phi_pi(pi, initial)
    process = NodeModel(graph, initial, alpha=ALPHA, k=k, seed=seed)
    total = 0.0
    for _ in range(trials):
        process.reset()
        process.step()
        total += process.phi
    return (total / trials) / phi0


def _edge_measured_factor(graph, initial, trials, seed) -> float:
    phi0 = phi_uniform(initial)
    process = EdgeModel(graph, initial, alpha=ALPHA, seed=seed)
    n = process.n
    total = 0.0
    for _ in range(trials):
        process.reset()
        process.step()
        # phi_V = n * phi_uniform-with-uniform-pi; compute from the vector
        # only at the two touched coordinates would be fancier; a full
        # O(n) evaluation per trial is already cheap.
        total += phi_uniform(process.values)
    return (total / trials) / phi0


@experiment(
    "EXP-PB1",
    artefact="Proposition B.1: one-step potential contraction",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "trials": ParamSpec(int, "independent single-step trials"),
    },
    presets={
        "fast": {"n": 24, "trials": 30_000},
        "full": {"n": 64, "trials": 200_000},
    },
)
def run(n: int, trials: int, seed: int = 0) -> list[ResultTable]:
    """Empirical one-step contraction vs Propositions B.1 / D.1(ii)."""
    table = ResultTable(
        title="Prop B.1 / D.1(ii): one-step potential contraction factors",
        columns=["model", "graph", "k", "state", "measured", "bound_factor", "ok"],
    )
    for name, graph in [
        ("cycle", cycle_graph(n)),
        ("random_regular(d=4)", random_regular_graph(n, 4, seed=seed)),
    ]:
        lambda2, f2 = second_walk_eigenpair(graph)
        gauss = center_simple(gaussian_values(n, seed=seed + 1))
        for k in (1, 2):
            bound = node_model_contraction_factor(n, lambda2, ALPHA, k)
            for label, state in [("f_2(P)", f2), ("gaussian", gauss)]:
                measured = _node_measured_factor(graph, state, k, trials, seed + k)
                # Monte-Carlo tolerance: three sigma of a Bernoulli-scale
                # estimator at this trial count.
                ok = measured <= bound + 5.0 / np.sqrt(trials)
                table.add_row("node", name, k, label, measured, bound, ok)

        lambda2_l, fiedler = second_laplacian_eigenpair(graph)
        m = graph.number_of_edges()
        bound_e = edge_model_contraction_factor(m, lambda2_l, ALPHA)
        for label, state in [("f_2(L)", fiedler), ("gaussian", gauss)]:
            measured = _edge_measured_factor(graph, state, trials, seed + 9)
            ok = measured <= bound_e + 5.0 / np.sqrt(trials)
            table.add_row("edge", name, 1, label, measured, bound_e, ok)
    table.add_note(
        "measured <= bound for every state; equality (up to MC noise) on the "
        "second eigenvector, where the proof's spectral inequality is tight"
    )
    return [table]
