"""EXP-T221K — the claimed near-independence of ``k`` (Theorem 2.2(1)).

The detailed bounds behind Theorem 2.2(1) (Proposition B.1) show the
convergence rate scales with a factor in ``[1, 2]`` as ``k`` grows from 1
to the degree — "it makes almost no difference if k = 1 or if it is close
to the node degree".  We measure mean ``T_eps`` on a fixed random regular
graph for increasing ``k`` and print it against the sharp prediction
``log(phi(0)/eps) / rate(k)``; the measured times should vary by at most
a factor ~2 while ``k`` varies by a factor ``d``.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.initial import center_simple, linear_ramp
from repro.core.node_model import NodeModel
from repro.core.potentials import phi_pi
from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import second_walk_eigenpair, stationary_distribution
from repro.sim.montecarlo import sample_t_eps
from repro.sim.results import ResultTable
from repro.theory.convergence import predicted_t_eps_node

ALPHA = 0.5
EPSILON = 1e-8


@experiment(
    "EXP-T221K",
    artefact="Theorem 2.2(1): near-independence of k",
    params={
        "n": ParamSpec(int, "number of nodes of the expander"),
        "d": ParamSpec(int, "degree of the expander", default=8),
        "ks": ParamSpec("ints", "fan-out values to sweep", default=(1, 2, 4, 8)),
        "replicas": ParamSpec(int, "replicas per k"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"n": 48, "replicas": 5},
        "full": {"n": 128, "replicas": 20},
    },
)
def run(
    n: int,
    replicas: int,
    d: int,
    ks: list,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Sweep ``k`` on a d-regular expander; report T_eps(k)/T_eps(1)."""
    graph = random_regular_graph(n, d, seed=seed)
    initial = center_simple(linear_ramp(n, 0.0, 1.0))
    lambda2, _ = second_walk_eigenpair(graph)
    phi0 = phi_pi(stationary_distribution(graph), initial)

    table = ResultTable(
        title="Theorem 2.2(1) detail: T_eps nearly independent of k",
        columns=["k", "T_measured", "T_predicted(PropB.1)", "T(k)/T(1)", "ratio_to_pred"],
    )
    baseline = None
    for k in ks:

        def make(rng, k=k):
            return NodeModel(graph, initial, alpha=ALPHA, k=k, seed=rng)

        times = sample_t_eps(
            make, EPSILON, replicas, seed=seed + k, max_steps=100_000_000,
            engine=engine, kernel=kernel, threads=threads,
        )
        measured = float(times.mean())
        predicted = predicted_t_eps_node(n, lambda2, ALPHA, k, phi0, EPSILON)
        if baseline is None:
            baseline = measured
        table.add_row(k, measured, predicted, measured / baseline, measured / predicted)
    table.add_note(
        "the paper predicts T(k)/T(1) in [1/2, 1]: rate carries a factor "
        "2 alpha + (1-alpha)(1+lambda2)(1-1/k) that at most doubles"
    )
    return [table]
