"""EXP-T241 — EdgeModel convergence time vs Theorem 2.4(1).

Measures mean ``T_eps`` for the EdgeModel across both regular and
*irregular* families (the EdgeModel theorem covers arbitrary connected
graphs) and compares with ``m log(n ||xi(0)||^2 / eps) / lambda_2(L)``.
The star and barbell stress the two failure modes the bound captures:
many edges concentrated on a hub, and a bottleneck cut with tiny
``lambda_2(L)``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fits import ratio_statistics
from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, linear_ramp
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    star_graph,
)
from repro.graphs.spectral import second_laplacian_eigenpair
from repro.sim.montecarlo import sample_t_eps
from repro.sim.results import ResultTable
from repro.theory.convergence import edge_model_upper_bound

ALPHA = 0.5
EPSILON = 1e-8


@experiment(
    "EXP-T241",
    artefact="Theorem 2.4(1): EdgeModel convergence time",
    params={
        "sizes": ParamSpec("ints", "graph sizes per family"),
        "replicas": ParamSpec(int, "replicas per (family, size) cell"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"sizes": [16, 32], "replicas": 5},
        "full": {"sizes": [32, 64, 128], "replicas": 20},
    },
)
def run(
    sizes: list,
    replicas: int,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Measure EdgeModel T_eps across regular and irregular graphs."""
    table = ResultTable(
        title="Theorem 2.4(1): EdgeModel T_eps vs m log(n||xi||^2/eps)/lambda2(L)",
        columns=["family", "n", "m", "lambda2(L)", "T_measured", "bound", "ratio"],
    )
    measured_all: list[float] = []
    bound_all: list[float] = []
    for n in sizes:
        for family, graph in [
            ("cycle", cycle_graph(n)),
            ("complete", complete_graph(n)),
            ("star", star_graph(n)),
            ("barbell", barbell_graph(n)),
            ("erdos_renyi", erdos_renyi_graph(n, seed=seed + n)),
        ]:
            nn = graph.number_of_nodes()
            m = graph.number_of_edges()
            initial = center_simple(linear_ramp(nn, 0.0, 1.0))
            lambda2_l, _ = second_laplacian_eigenpair(graph)
            norm_sq = float(np.sum(initial**2))
            bound = edge_model_upper_bound(nn, m, lambda2_l, norm_sq, EPSILON)

            def make(rng, graph=graph, initial=initial):
                return EdgeModel(graph, initial, alpha=ALPHA, seed=rng)

            times = sample_t_eps(
                make, EPSILON, replicas, seed=seed + n, max_steps=500_000_000,
                engine=engine, kernel=kernel, threads=threads,
            )
            measured = float(times.mean())
            table.add_row(family, nn, m, lambda2_l, measured, bound, measured / bound)
            measured_all.append(measured)
            bound_all.append(bound)
    stats = ratio_statistics(measured_all, bound_all)
    table.add_note(
        f"ratio band max/min = {stats.band:.2f}; geometric mean = "
        f"{stats.geometric_mean:.3f} (Theorem 2.4(1) predicts an O(1) band)"
    )
    return [table]
