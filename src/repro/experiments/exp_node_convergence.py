"""EXP-T221 — NodeModel convergence time vs Theorem 2.2(1).

For each graph family and size we measure ``T_eps`` (mean over replicas)
starting from a centered linear ramp, and compare with the bound
expression ``n log(n ||xi(0)||^2 / eps) / (1 - lambda_2(P))``.  Theorem
2.2(1) predicts measured/bound ratios bounded by a constant across the
sweep (the bound is stated up to constants); the well-mixing families
(clique, random regular) and the poorly mixing cycle should *both* stay
within one band — that is the content of the spectral-gap dependence.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.analysis.fits import ratio_statistics
from repro.core.initial import center_degree_weighted, linear_ramp
from repro.core.node_model import NodeModel
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
    torus_graph,
)
from repro.graphs.spectral import second_walk_eigenpair
from repro.sim.montecarlo import sample_t_eps
from repro.sim.results import ResultTable
from repro.theory.convergence import node_model_upper_bound

ALPHA = 0.5
EPSILON = 1e-8


def _families(sizes: list, seed: int):
    yield "cycle", [(n, cycle_graph(n)) for n in sizes]
    yield "complete", [(n, complete_graph(n)) for n in sizes]
    yield "random_regular(d=4)", [
        (n, random_regular_graph(n, 4, seed=seed + n)) for n in sizes
    ]
    square_sizes = [n for n in (16, 36, 64, 144, 256) if n <= max(sizes)]
    yield "torus", [(n, torus_graph(n)) for n in square_sizes]


@experiment(
    "EXP-T221",
    artefact="Theorem 2.2(1): NodeModel convergence time",
    params={
        "sizes": ParamSpec("ints", "graph sizes per family"),
        "replicas": ParamSpec(int, "replicas per (family, size) cell"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"sizes": [16, 32, 64], "replicas": 5},
        "full": {"sizes": [32, 64, 128, 256], "replicas": 20},
    },
)
def run(
    sizes: list,
    replicas: int,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Measure ``T_eps`` across graph families and compare to the bound."""
    table = ResultTable(
        title="Theorem 2.2(1): NodeModel T_eps vs n log(n||xi||^2/eps)/(1-lambda2)",
        columns=[
            "family",
            "n",
            "1-lambda2(P)",
            "T_measured",
            "bound",
            "ratio",
        ],
    )
    all_measured: list[float] = []
    all_bounds: list[float] = []
    for family, graphs in _families(sizes, seed):
        for n, graph in graphs:
            initial = center_degree_weighted(graph, linear_ramp(n, 0.0, 1.0))
            lambda2, _ = second_walk_eigenpair(graph)
            norm_sq = float(np.sum(initial**2))
            bound = node_model_upper_bound(n, lambda2, norm_sq, EPSILON)

            def make(rng, graph=graph, initial=initial):
                return NodeModel(graph, initial, alpha=ALPHA, k=1, seed=rng)

            times = sample_t_eps(
                make, EPSILON, replicas, seed=seed + n, max_steps=200_000_000,
                engine=engine, kernel=kernel, threads=threads,
            )
            measured = float(times.mean())
            table.add_row(
                family, n, 1.0 - lambda2, measured, bound, measured / bound
            )
            all_measured.append(measured)
            all_bounds.append(bound)
    stats = ratio_statistics(all_measured, all_bounds)
    table.add_note(
        f"ratio band max/min = {stats.band:.2f} "
        f"(Theorem 2.2(1) predicts an O(1) band across the sweep)"
    )
    table.add_note(
        f"geometric-mean ratio = {stats.geometric_mean:.3f} "
        "(the hidden constant of the O(.))"
    )
    return [table]
