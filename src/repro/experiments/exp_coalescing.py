"""EXP-COAL — coalescing meeting times vs the Var(F) envelope.

Footnote 2 of the paper recalls the classical voter/coalescing-walk
duality the Section-5 machinery generalises: one walk per node, walks
that meet merge, and the full coalescence time matches voter consensus
in distribution.  The same two-walk meeting structure drives the
paper's variance results — Proposition 5.8's ``Var(F)`` is a quadratic
form in the Q-chain's stationary law, whose ``S_0`` mass is exactly
the long-run probability that two tagged walks have *met*.

This experiment samples full coalescence times at engine scale
(:func:`repro.sim.sample_meeting_times`, one
:class:`~repro.engine.dual.BatchCoalescing` batch per graph) and puts
them next to the Theorem 2.2(2) variance envelope for the same graphs:
meeting happens on the ``n log n`` scale while the variance envelope
decays like ``1/n`` — the quantitative face of "the dual walks meet
fast enough for ``Var(F)`` to stay small".  A second table shows the
``1/(1 - alpha)`` slowdown of the lazy variant.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api import ParamSpec, engine_param, experiment
from repro.core.initial import center_simple, rademacher_values
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.sim.montecarlo import sample_meeting_times
from repro.sim.results import ResultTable
from repro.theory.variance import variance_envelope

ALPHA_AVG = 0.5  # self-weight of the averaging process the envelope is for


@experiment(
    "EXP-COAL",
    artefact="Footnote 2 / Prop. 5.8: coalescing meeting times vs the Var(F) envelope",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "replicas": ParamSpec(int, "coalescence-time replicas per graph"),
        "alphas": ParamSpec("floats", "laziness grid of the slowdown table"),
        "engine": engine_param(),
    },
    presets={
        "fast": {"n": 24, "replicas": 200, "alphas": [0.0, 0.5]},
        "full": {"n": 96, "replicas": 1_000, "alphas": [0.0, 0.25, 0.5, 0.75]},
    },
)
def run(
    n: int,
    replicas: int,
    alphas: list,
    seed: int = 0,
    engine: str = "batch",
) -> list[ResultTable]:
    """Meeting-time statistics and the variance envelope, side by side."""
    graphs = [
        ("cycle", Adjacency.from_graph(cycle_graph(n))),
        ("random_regular(d=4)",
         Adjacency.from_graph(random_regular_graph(n, 4, seed=seed))),
        ("complete", Adjacency.from_graph(complete_graph(n))),
    ]

    table = ResultTable(
        title="Coalescence time of n walks vs the Theorem 2.2(2) Var(F) envelope",
        columns=[
            "graph", "n", "d", "replicas", "mean_T_coal", "se",
            "T_coal/(n ln n)", "var_lower", "var_upper",
        ],
    )
    initial = center_simple(rademacher_values(n, seed=seed))
    norm_sq = float(np.sum(initial * initial))
    for name, adjacency in graphs:
        times = sample_meeting_times(
            adjacency, replicas, seed=seed, engine=engine
        )
        mean = float(times.mean())
        se = float(times.std(ddof=1) / math.sqrt(replicas))
        lower, upper = variance_envelope(
            n, adjacency.degree, 1, ALPHA_AVG, norm_sq
        )
        table.add_row(
            name, n, adjacency.degree, replicas, mean, se,
            mean / (n * math.log(n)), lower, upper,
        )
    table.add_note(
        "coalescence runs the voter dual (alpha=0); the envelope is the "
        f"graph-independent Var(F) band of the averaging process at "
        f"alpha={ALPHA_AVG}, k=1 for ||xi(0)||^2 = {norm_sq:g}"
    )

    slowdown = ResultTable(
        title="Lazy coalescing: mean meeting time scales like 1/(1 - alpha)",
        columns=[
            "alpha", "mean_T_coal", "se", "x_vs_alpha0", "1/(1-alpha)",
        ],
    )
    adjacency = graphs[1][1]
    base = None
    for i, alpha in enumerate(alphas):
        times = sample_meeting_times(
            adjacency, replicas, seed=seed + 1 + i, alpha=float(alpha),
            engine=engine,
        )
        mean = float(times.mean())
        se = float(times.std(ddof=1) / math.sqrt(replicas))
        if base is None:
            base = mean
        slowdown.add_row(
            float(alpha), mean, se, mean / base, 1.0 / (1.0 - float(alpha)),
        )
    slowdown.add_note("measured on the random_regular(d=4) graph above")
    return [table, slowdown]
