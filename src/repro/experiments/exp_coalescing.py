"""EXP-COAL — coalescing meeting times vs the Var(F) envelope.

Footnote 2 of the paper recalls the classical voter/coalescing-walk
duality the Section-5 machinery generalises: one walk per node, walks
that meet merge, and the full coalescence time matches voter consensus
in distribution.  The same two-walk meeting structure drives the
paper's variance results — Proposition 5.8's ``Var(F)`` is a quadratic
form in the Q-chain's stationary law, whose ``S_0`` mass is exactly
the long-run probability that two tagged walks have *met*.

This experiment samples full coalescence times at engine scale
(:func:`repro.sim.sample_meeting_times`, one
:class:`~repro.engine.dual.BatchCoalescing` batch per graph) and puts
them next to the Theorem 2.2(2) variance envelope for the same graphs:
meeting happens on the ``n log n`` scale while the variance envelope
decays like ``1/n`` — the quantitative face of "the dual walks meet
fast enough for ``Var(F)`` to stay small".  A second table shows the
``1/(1 - alpha)`` slowdown of the lazy variant.

Where the absorbing-chain solver is feasible
(:func:`repro.theory.absorbing.exact_coalescence_feasible` — complete
graphs at any ``n``, anything else at small ``n``) each row also
carries the exact expectation ``exact_T_coal`` and an ``exact_in_ci``
agreement flag: the exact value must sit inside the 99% bootstrap CI
of the Monte-Carlo mean.  ``engine="exact"`` replaces sampling with
the solver outright (every cell must then be feasible — use a small
``n``).  The voter dual runs at ``alpha = 0``, which is ill-defined on
bipartite graphs (parity lock — see
:func:`repro.sim.sample_meeting_times`), so the cycle row uses an odd
cycle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api import ParamSpec, engine_param, experiment
from repro.core.initial import center_simple, rademacher_values
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.graphs.properties import is_bipartite
from repro.sim.montecarlo import estimate_moments, sample_meeting_times
from repro.sim.results import ResultTable
from repro.theory.absorbing import (
    exact_coalescence_feasible,
    exact_coalescence_time,
)
from repro.theory.variance import variance_envelope

ALPHA_AVG = 0.5  # self-weight of the averaging process the envelope is for

#: Confidence of the bootstrap CI the exact column is checked against.
EXACT_CI_CONFIDENCE = 0.99


def _nonbipartite_regular(n: int, d: int, seed: int) -> Adjacency:
    """A connected ``d``-regular graph with an odd cycle.

    Random regular graphs are almost never bipartite at ``d >= 3``, but
    the voter dual (``alpha = 0``) hard-rejects bipartite graphs, so an
    unlucky draw is retried with a shifted seed rather than crashing
    the experiment.
    """
    for attempt in range(16):
        adjacency = Adjacency.from_graph(
            random_regular_graph(n, d, seed=seed + 1000 * attempt)
        )
        if not is_bipartite(adjacency):
            return adjacency
    raise RuntimeError(f"no non-bipartite {d}-regular graph at n={n} in 16 draws")


def _exact_cells(adjacency: Adjacency, alpha: float, times: np.ndarray):
    """``(exact_T_coal, exact_in_ci)`` for one sampled cell, or Nones.

    The agreement check asks the exact expectation to sit inside the
    99% bootstrap CI of the empirical mean — the acceptance contract
    of the analytic backend against the Monte-Carlo engines.
    """
    if not exact_coalescence_feasible(adjacency):
        return None, None
    exact = exact_coalescence_time(adjacency, alpha=alpha)
    lower, upper = estimate_moments(
        times, confidence=EXACT_CI_CONFIDENCE
    ).mean_ci
    # Degenerate samples (engine="exact" returns identical replicas)
    # collapse the CI to float-summation width; pad by relative noise
    # so agreement is not decided by the last bits of a reduction.
    pad = 1e-9 * max(1.0, abs(exact))
    return exact, bool(lower - pad <= exact <= upper + pad)


@experiment(
    "EXP-COAL",
    artefact="Footnote 2 / Prop. 5.8: coalescing meeting times vs the Var(F) envelope",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "replicas": ParamSpec(int, "coalescence-time replicas per graph"),
        "alphas": ParamSpec("floats", "laziness grid of the slowdown table"),
        "engine": engine_param(include_exact=True),
    },
    presets={
        "fast": {"n": 24, "replicas": 200, "alphas": [0.0, 0.5]},
        "full": {"n": 96, "replicas": 1_000, "alphas": [0.0, 0.25, 0.5, 0.75]},
    },
)
def run(
    n: int,
    replicas: int,
    alphas: list,
    seed: int = 0,
    engine: str = "batch",
) -> list[ResultTable]:
    """Meeting-time statistics and the variance envelope, side by side."""
    n_cycle = n if n % 2 else n - 1  # even cycles are bipartite: no voter dual
    graphs = [
        ("cycle", Adjacency.from_graph(cycle_graph(n_cycle))),
        ("random_regular(d=4)", _nonbipartite_regular(n, 4, seed)),
        ("complete", Adjacency.from_graph(complete_graph(n))),
    ]

    table = ResultTable(
        title="Coalescence time of n walks vs the Theorem 2.2(2) Var(F) envelope",
        columns=[
            "graph", "n", "d", "replicas", "mean_T_coal", "se",
            "T_coal/(n ln n)", "exact_T_coal", "exact_in_ci",
            "var_lower", "var_upper",
        ],
    )
    initial = center_simple(rademacher_values(n, seed=seed))
    norm_sq = float(np.sum(initial * initial))
    for name, adjacency in graphs:
        times = sample_meeting_times(
            adjacency, replicas, seed=seed, engine=engine
        )
        nodes = adjacency.n
        mean = float(times.mean())
        se = float(times.std(ddof=1) / math.sqrt(replicas))
        exact, exact_in_ci = _exact_cells(adjacency, 0.0, times)
        lower, upper = variance_envelope(
            nodes, adjacency.degree, 1, ALPHA_AVG, norm_sq
        )
        table.add_row(
            name, nodes, adjacency.degree, replicas, mean, se,
            mean / (nodes * math.log(nodes)), exact, exact_in_ci,
            lower, upper,
        )
    table.add_note(
        "coalescence runs the voter dual (alpha=0); the cycle is odd "
        "because bipartite graphs have no alpha=0 dual (parity lock); "
        "exact_T_coal is the absorbing-chain expectation where feasible "
        f"and exact_in_ci checks it against the "
        f"{EXACT_CI_CONFIDENCE:.0%} bootstrap CI of the mean; "
        f"the envelope is the graph-independent Var(F) band of the "
        f"averaging process at alpha={ALPHA_AVG}, k=1 for "
        f"||xi(0)||^2 = {norm_sq:g}"
    )

    slowdown = ResultTable(
        title="Lazy coalescing: mean meeting time scales like 1/(1 - alpha)",
        columns=[
            "alpha", "mean_T_coal", "se", "exact_T_coal", "x_vs_alpha0",
            "1/(1-alpha)",
        ],
    )
    adjacency = graphs[1][1]
    slowdown_exact = exact_coalescence_feasible(adjacency)
    base = None
    for i, alpha in enumerate(alphas):
        times = sample_meeting_times(
            adjacency, replicas, seed=seed + 1 + i, alpha=float(alpha),
            engine=engine,
        )
        mean = float(times.mean())
        se = float(times.std(ddof=1) / math.sqrt(replicas))
        exact = (
            exact_coalescence_time(adjacency, alpha=float(alpha))
            if slowdown_exact
            else None
        )
        if base is None:
            base = mean
        slowdown.add_row(
            float(alpha), mean, se, exact, mean / base,
            1.0 / (1.0 - float(alpha)),
        )
    slowdown.add_note("measured on the random_regular(d=4) graph above")
    return [table, slowdown]
