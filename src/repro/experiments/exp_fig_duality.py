"""EXP-F1 / EXP-F4 — regenerate Figures 1 and 4 (duality worked examples).

Figure 1: triangle graph, ``xi(0) = [6, 8, 9]``, ``alpha = 1/2, k = 1``;
the paper prints ``xi(1) = [7, 8, 9]``, ``xi(2) = [7, 15/2, 9]`` and shows
the backwards Diffusion Process reproducing ``W(2) = xi(2)^T`` exactly.
Figure 4 repeats this with ``k = 2`` (``xi(2) = [29/4, 129/16, 9]``).

Beyond the two fixed examples, the runners stress the Lemma 5.2 duality
at two scales: small random graphs through the scalar coupling
(:func:`repro.dual.duality.run_coupled`), and an **engine-scale
shared-schedule harness** (:func:`repro.dual.check_lemma_52`) that runs
``B`` primal replicas forward through the batch engine — under the
selected ``kernel`` — and replays every replica's reversed recorded
selection stream through one batch diffusion.  ``engine="loop"``
estimates the same table with per-replica scalar couplings (the
oracle); both are pass/fail at machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, engine_param, experiment, kernel_param
from repro.core.initial import gaussian_values
from repro.dual.duality import (
    FigureTrace,
    figure1_trace,
    figure4_trace,
    run_coupled,
)
from repro.dual.verification import check_lemma_52
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.rng import spawn
from repro.sim.results import ResultTable

#: Exactness threshold of the machine-precision duality checks.
_ATOL = 1e-9


def _figure_table(title: str, figure: FigureTrace) -> ResultTable:
    table = ResultTable(
        title=title,
        columns=["t", "xi_1", "xi_2", "xi_3", "paper_1", "paper_2", "paper_3", "match"],
    )
    for t, (row, paper) in enumerate(zip(figure.trace.xi, figure.expected_xi)):
        table.add_row(
            t,
            float(row[0]),
            float(row[1]),
            float(row[2]),
            float(paper[0]),
            float(paper[1]),
            float(paper[2]),
            bool(np.allclose(row, paper)),
        )
    table.add_note(
        f"duality residual max|W(T) - xi(T)| = {figure.trace.max_error:.3e}"
    )
    return table


def _random_duality_table(steps: int, seed: int) -> ResultTable:
    table = ResultTable(
        title="Lemma 5.2 duality on random graphs/schedules",
        columns=["graph", "n", "k", "alpha", "steps", "max_error", "exact"],
    )
    cases = [
        ("random_regular(d=4)", random_regular_graph(12, 4, seed=seed), 1, 0.5),
        ("random_regular(d=4)", random_regular_graph(12, 4, seed=seed + 1), 3, 0.3),
        ("erdos_renyi", erdos_renyi_graph(15, 0.4, seed=seed + 2), 1, 0.7),
    ]
    for name, graph, k, alpha in cases:
        n = graph.number_of_nodes()
        initial = gaussian_values(n, seed=seed + 10)
        trace = run_coupled(graph, initial, alpha=alpha, k=k, steps=steps, seed=seed)
        table.add_row(name, n, k, alpha, steps, trace.max_error, trace.max_error < _ATOL)
    return table


def _loop_duality_error(
    adjacency: Adjacency,
    initial: np.ndarray,
    alpha: float,
    k: int,
    kind: str,
    lazy: bool,
    steps: int,
    replicas: int,
    seed: int,
) -> float:
    """Worst per-replica scalar-coupling residual (the loop oracle).

    Runs the *scalar* process of the requested kind (node or edge, lazy
    included) with schedule recording on and replays the reversed
    schedule through the scalar diffusion — the per-replica analogue of
    the batch harness.
    """
    from repro.core.edge_model import EdgeModel
    from repro.core.node_model import NodeModel
    from repro.dual.diffusion import DiffusionProcess

    worst = 0.0
    for rng in spawn(seed, replicas):
        if kind == "node":
            process = NodeModel(
                adjacency, initial, alpha=alpha, k=k, seed=rng, lazy=lazy,
                record_schedule=True,
            )
        else:
            process = EdgeModel(
                adjacency, initial, alpha=alpha, seed=rng, lazy=lazy,
                record_schedule=True,
            )
        for _ in range(steps):
            process.step()
        diffusion = DiffusionProcess(
            adjacency, cost=initial, alpha=alpha,
            k=k if kind == "node" else 1,
        )
        diffusion.replay(process.schedule.reversed())
        worst = max(
            worst, float(np.abs(diffusion.costs - process.values).max())
        )
    return worst


def _engine_duality_table(
    cases,
    replicas: int,
    steps: int,
    seed: int,
    engine: str,
    kernel: str,
) -> ResultTable:
    """Shared-schedule duality at engine scale, one row per case."""
    table = ResultTable(
        title=(
            "Lemma 5.2 at engine scale: primal forward vs batch diffusion "
            "on the reversed recorded stream"
        ),
        columns=[
            "case", "kind", "n", "B", "steps", "engine", "kernel",
            "max_error", "exact",
        ],
    )
    for label, graph, kind, k, alpha, lazy in cases:
        adjacency = Adjacency.from_graph(graph)
        initial = gaussian_values(adjacency.n, seed=seed + 17)
        if engine == "batch":
            report = check_lemma_52(
                adjacency,
                initial,
                alpha,
                k=k,
                steps=steps,
                replicas=replicas,
                seed=seed,
                kind=kind,
                lazy=lazy,
                kernel=kernel,
            )
            error = report.max_error
            used = report.kernel
        else:
            error = _loop_duality_error(
                adjacency, initial, alpha, k, kind, lazy, steps, replicas,
                seed,
            )
            used = "-"
        table.add_row(
            label, kind, adjacency.n, replicas, steps, engine, used,
            error, error <= _ATOL,
        )
    table.add_note(
        "every replica runs its own selection sequence; the identity is "
        "checked per replica to machine precision (Lemma 5.2 is exact)"
    )
    return table


@experiment(
    "EXP-F1",
    artefact="Figure 1: duality worked example (Averaging vs Diffusion)",
    params={
        "steps": ParamSpec(int, "steps of each randomised duality check"),
        "n": ParamSpec(int, "nodes of the engine-scale duality graphs"),
        "replicas": ParamSpec(int, "replicas of the engine-scale check"),
        "engine": engine_param(),
        "kernel": kernel_param(),
    },
    presets={
        "fast": {"steps": 50, "n": 64, "replicas": 16},
        "full": {"steps": 400, "n": 256, "replicas": 64},
    },
)
def run_figure1(
    steps: int,
    n: int,
    replicas: int,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
) -> list[ResultTable]:
    """EXP-F1: Figure 1 trace plus duality checks at both scales."""
    cases = [
        ("regular k=1", random_regular_graph(n, 4, seed=seed), "node", 1, 0.5, False),
        ("irregular k=1", erdos_renyi_graph(n, seed=seed + 1), "node", 1, 0.7, False),
        ("edge model", random_regular_graph(n, 4, seed=seed + 2), "edge", 1, 0.5, False),
        ("lazy k=1", random_regular_graph(n, 4, seed=seed + 3), "node", 1, 0.5, True),
    ]
    return [
        _figure_table("Figure 1 (alpha=1/2, k=1): Averaging vs paper values", figure1_trace()),
        _random_duality_table(steps, seed),
        _engine_duality_table(cases, replicas, 2 * n, seed, engine, kernel),
    ]


@experiment(
    "EXP-F4",
    artefact="Figure 4: duality on the random-walk side",
    params={
        "n": ParamSpec(int, "nodes of the engine-scale duality graphs"),
        "replicas": ParamSpec(int, "replicas of the engine-scale check"),
        "engine": engine_param(),
        "kernel": kernel_param(),
    },
    presets={
        "fast": {"n": 64, "replicas": 16},
        "full": {"n": 256, "replicas": 64},
    },
)
def run_figure4(
    n: int,
    replicas: int,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
) -> list[ResultTable]:
    """EXP-F4: Figure 4 trace (k = 2) plus k >= 2 engine-scale duality."""
    cases = [
        ("regular k=2", random_regular_graph(n, 4, seed=seed), "node", 2, 0.5, False),
        ("regular k=d", random_regular_graph(n, 4, seed=seed + 1), "node", 4, 0.3, False),
    ]
    return [
        _figure_table("Figure 4 (alpha=1/2, k=2): Averaging vs paper values", figure4_trace()),
        _engine_duality_table(cases, replicas, 2 * n, seed, engine, kernel),
    ]
