"""EXP-F1 / EXP-F4 — regenerate Figures 1 and 4 (duality worked examples).

Figure 1: triangle graph, ``xi(0) = [6, 8, 9]``, ``alpha = 1/2, k = 1``;
the paper prints ``xi(1) = [7, 8, 9]``, ``xi(2) = [7, 15/2, 9]`` and shows
the backwards Diffusion Process reproducing ``W(2) = xi(2)^T`` exactly.
Figure 4 repeats this with ``k = 2`` (``xi(2) = [29/4, 129/16, 9]``).

Beyond the two fixed examples, ``run_*`` also stress the duality on
random graphs and random schedules (Lemma 5.2 is exact, so the check is
pass/fail at machine precision).
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment
from repro.core.initial import gaussian_values
from repro.dual.duality import (
    FigureTrace,
    figure1_trace,
    figure4_trace,
    run_coupled,
)
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.sim.results import ResultTable


def _figure_table(title: str, figure: FigureTrace) -> ResultTable:
    table = ResultTable(
        title=title,
        columns=["t", "xi_1", "xi_2", "xi_3", "paper_1", "paper_2", "paper_3", "match"],
    )
    for t, (row, paper) in enumerate(zip(figure.trace.xi, figure.expected_xi)):
        table.add_row(
            t,
            float(row[0]),
            float(row[1]),
            float(row[2]),
            float(paper[0]),
            float(paper[1]),
            float(paper[2]),
            bool(np.allclose(row, paper)),
        )
    table.add_note(
        f"duality residual max|W(T) - xi(T)| = {figure.trace.max_error:.3e}"
    )
    return table


def _random_duality_table(steps: int, seed: int) -> ResultTable:
    table = ResultTable(
        title="Lemma 5.2 duality on random graphs/schedules",
        columns=["graph", "n", "k", "alpha", "steps", "max_error", "exact"],
    )
    cases = [
        ("random_regular(d=4)", random_regular_graph(12, 4, seed=seed), 1, 0.5),
        ("random_regular(d=4)", random_regular_graph(12, 4, seed=seed + 1), 3, 0.3),
        ("erdos_renyi", erdos_renyi_graph(15, 0.4, seed=seed + 2), 1, 0.7),
    ]
    for name, graph, k, alpha in cases:
        n = graph.number_of_nodes()
        initial = gaussian_values(n, seed=seed + 10)
        trace = run_coupled(graph, initial, alpha=alpha, k=k, steps=steps, seed=seed)
        table.add_row(name, n, k, alpha, steps, trace.max_error, trace.max_error < 1e-9)
    return table


@experiment(
    "EXP-F1",
    artefact="Figure 1: duality worked example (Averaging vs Diffusion)",
    params={
        "steps": ParamSpec(int, "steps of each randomised duality check"),
    },
    presets={"fast": {"steps": 50}, "full": {"steps": 400}},
)
def run_figure1(steps: int, seed: int = 0) -> list[ResultTable]:
    """EXP-F1: Figure 1 trace plus randomised duality checks."""
    return [
        _figure_table("Figure 1 (alpha=1/2, k=1): Averaging vs paper values", figure1_trace()),
        _random_duality_table(steps, seed),
    ]


@experiment(
    "EXP-F4",
    artefact="Figure 4: duality on the random-walk side",
)
def run_figure4(seed: int = 0) -> list[ResultTable]:
    """EXP-F4: Figure 4 trace (k = 2)."""
    return [
        _figure_table("Figure 4 (alpha=1/2, k=2): Averaging vs paper values", figure4_trace()),
    ]
