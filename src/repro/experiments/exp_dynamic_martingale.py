"""EXP-DYNM — the martingale dichotomy on dynamic graphs.

The paper's regular/irregular dichotomy (Lemma 4.1: the NodeModel
preserves the degree-weighted mean, which is the simple average exactly
on regular graphs) has a dynamic analogue:

* if **all snapshots are regular with the same degree**, ``pi`` is the
  uniform vector in every snapshot, so the simple average remains a
  martingale *across switches* — no snapshot can introduce drift;
* with **heterogeneous degrees** the preserved functional changes at
  every switch, so no single linear functional is preserved and the
  simple average drifts (hub-dominated snapshots bias activation);
* the **EdgeModel** preserves the simple average on *every* graph
  (Appendix D), so its martingale survives arbitrary snapshot streams —
  the price-of-simplicity counterpoint.

Two levels of validation, mirroring EXP-L41: *exact* per-snapshot drift
of the uniform functional under the expected one-step update matrices,
and *empirical* zero-drift z-scores over a replica batch run through
the dynamic engine.
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment, kernel_param
from repro.core.initial import linear_ramp
from repro.engine.batch import BatchEdgeModel, BatchNodeModel
from repro.engine.dynamic import CyclicSchedule
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import (
    binary_tree_graph,
    random_regular_graph,
    star_graph,
)
from repro.sim.results import ResultTable
from repro.theory.martingale import node_model_expected_update

ALPHA = 0.5
DEGREE = 4


def _families(n: int, seed: int):
    regular = [
        Adjacency.from_graph(random_regular_graph(n, DEGREE, seed=seed + s + 1))
        for s in range(3)
    ]
    irregular = [
        Adjacency.from_graph(random_regular_graph(n, DEGREE, seed=seed + 11)),
        Adjacency.from_graph(star_graph(n)),
        Adjacency.from_graph(binary_tree_graph(n)),
    ]
    return (("regular(d=4)", regular), ("irregular", irregular))


def _exact_table(n: int, seed: int) -> ResultTable:
    """Per-snapshot drift of the uniform functional under E[update].

    ``u^T E[L] = u^T`` for every snapshot of a schedule iff the simple
    average is a martingale across arbitrary switch points — the matrix
    statement of the dynamic dichotomy.
    """
    table = ResultTable(
        title="Dynamic dichotomy (exact): uniform-functional drift per snapshot",
        columns=["family", "snapshot", "regular", "max_drift"],
    )
    for family, snapshots in _families(n, seed):
        uniform = np.full(n, 1.0 / n)
        for index, adjacency in enumerate(snapshots):
            update = node_model_expected_update(adjacency, ALPHA)
            drift = float(np.abs(uniform @ update - uniform).max())
            table.add_row(family, index, adjacency.is_regular, drift)
    table.add_note(
        "zero drift in every snapshot <=> the simple average is a "
        "NodeModel martingale across switches; any irregular snapshot "
        "breaks it"
    )
    return table


def _empirical_table(
    n: int, switch_every: int, steps: int, replicas: int, seed: int,
    kernel: str,
) -> ResultTable:
    initial = linear_ramp(n, 0.0, 1.0)
    avg0 = float(initial.mean())
    table = ResultTable(
        title="Dynamic dichotomy (empirical): E[Avg(t)] vs Avg(0) across switches",
        columns=["family", "model", "avg(0)", "mean_final", "stderr", "z_score"],
    )
    for family, snapshots in _families(n, seed):
        schedule = CyclicSchedule(snapshots, switch_every)
        for model, cls in (("node", BatchNodeModel), ("edge", BatchEdgeModel)):
            kwargs = {"k": 1} if model == "node" else {}
            batch = cls(
                schedule, initial, ALPHA, replicas=replicas,
                seed=seed + 17, kernel=kernel, **kwargs,
            )
            batch.run(steps)
            finals = batch.simple_average
            stderr = float(finals.std(ddof=1) / np.sqrt(replicas))
            z = (float(finals.mean()) - avg0) / stderr if stderr > 0 else 0.0
            table.add_row(
                family, model, avg0, float(finals.mean()), stderr, z
            )
    table.add_note(
        f"t = {steps}, switch_every = {switch_every}; the NodeModel "
        "drifts only on the irregular family, the EdgeModel never does"
    )
    return table


@experiment(
    "EXP-DYNM",
    artefact="Section 3 / Lemma 4.1: martingale dichotomy on dynamic graphs",
    params={
        "n": ParamSpec(int, "nodes per snapshot"),
        "switch_every": ParamSpec(int, "rounds per topology segment"),
        "steps": ParamSpec(int, "steps before sampling the invariant"),
        "replicas": ParamSpec(int, "replicas of the empirical check"),
        "kernel": kernel_param(),
    },
    presets={
        "fast": {
            "n": 21, "switch_every": 13, "steps": 1_500, "replicas": 256,
        },
        "full": {
            "n": 63, "switch_every": 50, "steps": 20_000, "replicas": 2_000,
        },
    },
)
def run(
    n: int,
    switch_every: int,
    steps: int,
    replicas: int,
    seed: int = 0,
    kernel: str = "auto",
) -> list[ResultTable]:
    """Exact and empirical martingale checks over snapshot schedules."""
    return [
        _exact_table(n, seed),
        _empirical_table(n, switch_every, steps, replicas, seed, kernel),
    ]
