"""EXP-MOM — higher moments of F (the paper's first future-work question).

Section 6 asks whether the two-walk duality can be pushed to ``M``-walk
systems to control higher moments of ``F`` and derive Chernoff-type
concentration.  As an empirical contribution we estimate the third and
fourth standardised moments of ``F`` across graphs and initial-value
families.  Under symmetric initial values the skewness is ~0; excess
kurtosis measures how far ``F`` is from Gaussian — small values suggest
Chernoff-style behaviour is plausible, which is exactly the regime the
paper conjectures.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.initial import (
    center_simple,
    indicator_values,
    rademacher_values,
)
from repro.core.node_model import NodeModel
from repro.graphs.generators import complete_graph, cycle_graph, random_regular_graph
from repro.sim.montecarlo import estimate_moments, sample_f_values
from repro.sim.results import ResultTable

ALPHA = 0.5


@experiment(
    "EXP-MOM",
    artefact="Future work: higher moments of F",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "replicas": ParamSpec(int, "Monte-Carlo replicas per estimate"),
        "tol": ParamSpec(float, "consensus discrepancy tolerance"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"n": 30, "replicas": 250, "tol": 1e-6},
        "full": {"n": 80, "replicas": 1_200, "tol": 1e-8},
    },
)
def run(
    n: int,
    replicas: int,
    tol: float,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Skewness and excess kurtosis of F across settings."""
    table = ResultTable(
        title="Future work §6: higher moments of F (Monte Carlo)",
        columns=["graph", "initial", "Var(F)", "skewness", "kurtosis_excess"],
    )
    initial_families = [
        ("rademacher", center_simple(rademacher_values(n, seed=seed))),
        ("indicator", center_simple(indicator_values(n, node=0, scale=float(n)))),
    ]
    for gname, graph in [
        ("cycle", cycle_graph(n)),
        ("random_regular(d=4)", random_regular_graph(n, 4, seed=seed)),
        ("complete", complete_graph(n)),
    ]:
        for iname, initial in initial_families:

            def make(rng, graph=graph, initial=initial):
                return NodeModel(graph, initial, alpha=ALPHA, k=1, seed=rng)

            sample = sample_f_values(
                make, replicas, seed=seed, discrepancy_tol=tol,
                max_steps=500_000_000, engine=engine, kernel=kernel, threads=threads,
            )
            estimate = estimate_moments(sample, seed=seed)
            table.add_row(
                gname, iname, estimate.variance,
                estimate.skewness, estimate.kurtosis_excess,
            )
    table.add_note(
        "symmetric initial values give ~0 skewness; the asymmetric indicator "
        "state is right-skewed — consistent with F being a weighted average "
        "of the initial values under the dual walks' occupation law"
    )
    return [table]
