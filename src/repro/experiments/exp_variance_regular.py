"""EXP-T222 — Var(F) on regular graphs (Theorem 2.2(2), Proposition 5.8).

Three claims are exercised with the same Monte-Carlo machinery:

1. *Envelope*: the empirical ``Var(F)`` lies inside the Proposition 5.8
   interval ``[core - 1/n^5, core + 1/n^5]`` (statistically, its bootstrap
   CI intersects it) and inside the graph-independent Theta envelope.
2. *Structure independence*: cycle, clique, torus and random regular
   graphs with the *same multiset* of initial values have statistically
   indistinguishable ``Var(F)`` — the paper's "clique vs cycle" point.
3. *k independence and placement independence*: sweeping ``k`` on one
   graph, and permuting the assignment of the same values to nodes,
   leaves ``Var(F)`` unchanged up to constants.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
    torus_graph,
)
from repro.sim.montecarlo import estimate_moments, sample_f_values
from repro.sim.results import ResultTable
from repro.theory.exact import exact_limit_variance
from repro.theory.variance import variance_bounds, variance_envelope

ALPHA = 0.5


def _mc_variance(graph, initial, k, replicas, seed, tol, engine="batch",
                 kernel="auto", threads=None):
    def make(rng):
        return NodeModel(graph, initial, alpha=ALPHA, k=k, seed=rng)

    values = sample_f_values(
        make, replicas, seed=seed, discrepancy_tol=tol, max_steps=500_000_000,
        engine=engine, kernel=kernel, threads=threads,
    )
    # 99% CIs: the envelope-consistency check below should fail on a real
    # discrepancy, not on a 1-in-20 bootstrap miss.
    return estimate_moments(values, confidence=0.99, seed=seed)


@experiment(
    "EXP-T222",
    artefact="Theorem 2.2(2) / Proposition 5.8: Var(F) on regular graphs",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "replicas": ParamSpec(int, "Monte-Carlo replicas per estimate"),
        "tol": ParamSpec(float, "consensus discrepancy tolerance"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"n": 36, "replicas": 160, "tol": 1e-6},
        "full": {"n": 100, "replicas": 600, "tol": 1e-8},
    },
)
def run(
    n: int,
    replicas: int,
    tol: float,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Monte-Carlo Var(F) vs the Proposition 5.8 envelope.

    ``engine`` selects the replica simulator: the vectorized batch
    engine (default) or the legacy per-replica loop (the oracle).
    """
    rng = np.random.default_rng(seed)
    base_values = center_simple(rademacher_values(n, seed=rng))
    norm_sq = float(np.sum(base_values**2))

    graphs = [
        ("cycle (d=2)", cycle_graph(n), 2),
        ("torus (d=4)", torus_graph(n), 4),
        ("random_regular (d=4)", random_regular_graph(n, 4, seed=seed), 4),
        ("complete (d=n-1)", complete_graph(n), n - 1),
    ]

    structure = ResultTable(
        title="Theorem 2.2(2): Var(F) independent of regular graph structure",
        columns=[
            "graph",
            "Var_measured",
            "ci_low",
            "ci_high",
            "Var_exact",
            "exact_in_ci",
            "prop58_core",
            "env_low",
            "env_high",
            "in_envelope",
        ],
    )
    for name, graph, d in graphs:
        estimate = _mc_variance(
            graph, base_values, 1, replicas, seed + d, tol, engine, kernel,
            threads
        )
        bounds = variance_bounds(graph, base_values, alpha=ALPHA, k=1)
        env_low, env_high = variance_envelope(n, d, 1, ALPHA, norm_sq)
        lo, hi = estimate.variance_ci
        # The Lemma 5.5 quadratic form is Var(F) exactly (no 1/n^5
        # slack) — the absorbing-backend column the Monte-Carlo CI must
        # cover.
        exact = exact_limit_variance(graph, base_values, alpha=ALPHA, k=1)
        # Consistency = the bootstrap CI intersects the theory interval
        # [lower, upper] union the Theta envelope (the CI itself already
        # carries the Monte-Carlo uncertainty).
        theory_low = min(env_low, bounds.lower)
        theory_high = max(env_high, bounds.upper)
        structure.add_row(
            name,
            estimate.variance,
            lo,
            hi,
            exact,
            bool(lo <= exact <= hi),
            bounds.core,
            env_low,
            env_high,
            bool(hi >= theory_low and lo <= theory_high),
        )
    structure.add_note(
        f"same initial multiset on all graphs; ||xi||^2 = {norm_sq:.3g}; "
        f"Theta(||xi||^2/n^2) = {norm_sq / n**2:.3g}; Var_exact is the "
        "Lemma 5.5 quadratic form in the Q-chain stationary law and "
        "exact_in_ci checks it against the 99% bootstrap CI"
    )

    # k-sweep on one graph.
    d = 8
    graph_k = random_regular_graph(n if n % 2 == 0 else n + 1, d, seed=seed + 7)
    nk = graph_k.number_of_nodes()
    values_k = center_simple(rademacher_values(nk, seed=rng))
    k_table = ResultTable(
        title="Theorem 2.2(2): Var(F) independent of k",
        columns=["k", "Var_measured", "ci_low", "ci_high", "Var_exact",
                 "prop58_core"],
    )
    k_replicas = max(80, replicas // 2)
    for k in (1, 2, 4, 8):
        estimate = _mc_variance(
            graph_k, values_k, k, k_replicas, seed + 100 + k, tol, engine,
            kernel, threads
        )
        bounds = variance_bounds(graph_k, values_k, alpha=ALPHA, k=k)
        lo, hi = estimate.variance_ci
        k_table.add_row(
            k, estimate.variance, lo, hi,
            exact_limit_variance(graph_k, values_k, alpha=ALPHA, k=k),
            bounds.core,
        )

    # Placement independence: permute the same values.
    placement = ResultTable(
        title="Theorem 2.2(2): Var(F) independent of value placement",
        columns=["placement", "Var_measured", "ci_low", "ci_high"],
    )
    graph_p = cycle_graph(n)
    sorted_values = np.sort(base_values)
    shuffled = base_values.copy()
    rng.shuffle(shuffled)
    for label, values in [
        ("sorted along cycle", sorted_values),
        ("alternating", np.array([sorted_values[i // 2] if i % 2 == 0
                                  else sorted_values[-(i // 2 + 1)] for i in range(n)])),
        ("random placement", shuffled),
    ]:
        values = center_simple(values)
        estimate = _mc_variance(
            graph_p, values, 1, k_replicas, seed + 200, tol, engine, kernel,
            threads
        )
        lo, hi = estimate.variance_ci
        placement.add_row(label, estimate.variance, lo, hi)
    placement.add_note(
        "Prop 5.8's cross term (mu_1 - mu_+) vanishes for k = 1, so even the "
        "finite-n core is placement-independent here"
    )
    return [structure, k_table, placement]
