"""EXP-L41 — the martingale structure (Lemma 4.1 / Proposition D.1(i)).

Two levels of validation:

* *Exact*: the expected one-step update matrices
  (:mod:`repro.theory.martingale`) preserve the degree weights ``pi``
  (NodeModel) and the uniform weights (EdgeModel) — checked to machine
  precision, for irregular graphs too.
* *Empirical*: over many replicas, the mean of ``M(t)`` (NodeModel) and
  ``Avg(t)`` (EdgeModel) stays at its initial value while the *individual*
  trajectories wander — the martingale has zero drift but non-zero
  quadratic variation (that variation is what Corollary E.2 bounds and
  EXP-CE2 measures).
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment
from repro.core.edge_model import EdgeModel
from repro.core.initial import linear_ramp
from repro.core.node_model import NodeModel
from repro.graphs.generators import binary_tree_graph, lollipop_graph, star_graph
from repro.rng import spawn
from repro.sim.results import ResultTable
from repro.theory.martingale import (
    edge_model_expected_update,
    martingale_weights,
    node_model_expected_update,
)

ALPHA = 0.5


def _exact_table() -> ResultTable:
    table = ResultTable(
        title="Lemma 4.1 (exact): preserved functionals of E[update]",
        columns=["graph", "model", "functional", "max_drift"],
    )
    for name, graph in [
        ("star", star_graph(12)),
        ("binary_tree", binary_tree_graph(15)),
        ("lollipop", lollipop_graph(13)),
    ]:
        node_update = node_model_expected_update(graph, ALPHA)
        pi = martingale_weights(graph, "node")
        # pi^T E[L] = pi^T  <=>  M(t) is a martingale.
        drift_node = float(np.abs(pi @ node_update - pi).max())
        table.add_row(name, "node", "degree-weighted mean M", drift_node)

        edge_update = edge_model_expected_update(graph, ALPHA)
        uniform = martingale_weights(graph, "edge")
        drift_edge = float(np.abs(uniform @ edge_update - uniform).max())
        table.add_row(name, "edge", "simple average Avg", drift_edge)
    table.add_note("drift is zero up to floating point: both are martingales")
    return table


def _empirical_table(steps: int, replicas: int, seed: int) -> ResultTable:
    n = 31
    graph = binary_tree_graph(n)
    initial = linear_ramp(n, 0.0, 1.0)

    m_finals = np.empty(replicas)
    avg_finals = np.empty(replicas)
    for i, rng in enumerate(spawn(seed, replicas)):
        node = NodeModel(graph, initial, alpha=ALPHA, k=1, seed=rng)
        node.run(steps)
        m_finals[i] = node.weighted_average
        edge = EdgeModel(graph, initial, alpha=ALPHA, seed=rng)
        edge.run(steps)
        avg_finals[i] = edge.simple_average

    node0 = NodeModel(graph, initial, alpha=ALPHA, k=1)
    table = ResultTable(
        title="Lemma 4.1 (empirical): E[M(t)] = M(0) and E[Avg(t)] = Avg(0)",
        columns=["model", "invariant(0)", "mean_final", "stderr", "z_score"],
    )
    m0 = node0.weighted_average
    avg0 = float(initial.mean())
    for model, start, finals in [
        ("node: M(t)", m0, m_finals),
        ("edge: Avg(t)", avg0, avg_finals),
    ]:
        stderr = float(finals.std(ddof=1) / np.sqrt(replicas))
        z = (float(finals.mean()) - start) / stderr if stderr > 0 else 0.0
        table.add_row(model, start, float(finals.mean()), stderr, z)
    table.add_note(
        f"binary tree (irregular), t = {steps}; |z| <~ 3 confirms zero drift"
    )
    table.add_note(
        "note the NodeModel preserves the degree-weighted mean, the EdgeModel "
        "the simple mean — swapped functionals drift"
    )
    return table


@experiment(
    "EXP-L41",
    artefact="Lemma 4.1 / Proposition D.1(i): martingale structure",
    params={
        "steps": ParamSpec(int, "steps before sampling the invariant"),
        "replicas": ParamSpec(int, "replicas of the empirical check"),
    },
    presets={
        "fast": {"steps": 2_000, "replicas": 200},
        "full": {"steps": 20_000, "replicas": 1_000},
    },
)
def run(steps: int, replicas: int, seed: int = 0) -> list[ResultTable]:
    """Exact and empirical martingale checks on irregular graphs."""
    return [_exact_table(), _empirical_table(steps, replicas, seed)]
