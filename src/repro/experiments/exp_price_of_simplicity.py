"""EXP-PRICE — the "price of simplicity" (Section 1).

Coordinated pairwise gossip reaches the exact initial average
(``Var(F) = 0``); the paper's unilateral processes trade that exactness
for coordination-free updates, paying ``Var(F) = Theta(||xi||^2 / n^2)``.
The discrete voter model sits at the far end: it *samples* one initial
opinion (degree-weighted), so its limit has the full population variance.

This experiment runs all three on the same graph and initial values and
prints the spread of the consensus value, plus convergence-time context
(including push-sum, which buys exactness with extra per-node state
instead of coordination).
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment
from repro.baselines.gossip import PairwiseGossip
from repro.baselines.pushsum import PushSum
from repro.baselines.voter import VoterModel
from repro.core.convergence import run_to_consensus
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.rng import spawn
from repro.sim.results import ResultTable

ALPHA = 0.5


@experiment(
    "EXP-PRICE",
    artefact='Section 1: the "price of simplicity"',
    params={
        "n": ParamSpec(int, "number of nodes"),
        "replicas": ParamSpec(int, "replicas per protocol"),
        "tol": ParamSpec(float, "consensus discrepancy tolerance"),
    },
    presets={
        "fast": {"n": 36, "replicas": 120, "tol": 1e-6},
        "full": {"n": 100, "replicas": 400, "tol": 1e-8},
    },
)
def run(n: int, replicas: int, tol: float, seed: int = 0) -> list[ResultTable]:
    """Spread of the consensus value: averaging vs gossip vs voter."""
    import networkx as nx

    graph = nx.random_regular_graph(4, n, seed=seed)
    initial = center_simple(rademacher_values(n, seed=seed))
    target = float(initial.mean())  # == 0 by centering

    f_node = np.empty(replicas)
    f_gossip = np.empty(replicas)
    f_voter = np.empty(replicas)
    steps_node = np.empty(replicas)
    steps_gossip = np.empty(replicas)
    # Map the +-1 opinions to {0, 1} labels for the voter model.
    labels = (initial > 0).astype(np.int64)
    label_values = np.array([initial[labels == 0].mean(), initial[labels == 1].mean()])

    for i, rng in enumerate(spawn(seed, replicas)):
        node = NodeModel(graph, initial, alpha=ALPHA, k=1, seed=rng)
        result = run_to_consensus(node, discrepancy_tol=tol, max_steps=500_000_000)
        f_node[i] = result.value
        steps_node[i] = result.t

        gossip = PairwiseGossip(graph, initial, seed=rng)
        value, steps = gossip.run_to_consensus(discrepancy_tol=tol)
        f_gossip[i] = value
        steps_gossip[i] = steps

        voter = VoterModel(graph, labels, seed=rng)
        winner, _ = voter.run_to_consensus()
        f_voter[i] = label_values[winner]

    pushsum = PushSum(graph, initial, seed=seed)
    ps_value, ps_steps = pushsum.run_to_accuracy(tol=tol)

    table = ResultTable(
        title="Price of simplicity: consensus-value spread by protocol",
        columns=["protocol", "coordination", "mean_F", "std_F", "max|F - Avg(0)|"],
    )
    table.add_row(
        "NodeModel (paper)", "none (unilateral pull)",
        float(f_node.mean()), float(f_node.std(ddof=1)),
        float(np.abs(f_node - target).max()),
    )
    table.add_row(
        "pairwise gossip", "two-node simultaneous",
        float(f_gossip.mean()), float(f_gossip.std(ddof=1)),
        float(np.abs(f_gossip - target).max()),
    )
    table.add_row(
        "voter model", "none (unilateral pull)",
        float(f_voter.mean()), float(f_voter.std(ddof=1)),
        float(np.abs(f_voter - target).max()),
    )
    table.add_row(
        "push-sum", "none (push + weight state)",
        ps_value, 0.0, abs(ps_value - target),
    )
    table.add_note(
        f"steps to consensus (mean): NodeModel {steps_node.mean():.0f}, "
        f"gossip {steps_gossip.mean():.0f}, push-sum {ps_steps} (single run)"
    )
    table.add_note(
        "gossip/push-sum recover Avg(0) exactly; the NodeModel pays "
        "Theta(||xi||/n) standard deviation; the voter model pays Theta(1)"
    )
    return [table]
