"""EXP-ABL — ablation of the self-weight ``alpha``.

``alpha`` is the models' one free design knob.  The theory predicts two
opposing effects:

* *speed*: the NodeModel's one-step rate (Prop B.1, k = 1) scales with
  ``alpha (1-alpha)`` — fastest at ``alpha = 1/2``, degenerating at both
  ends (at ``alpha -> 0`` with k = 1 the process loses the averaging
  contraction and behaves like continuous voting; at ``alpha -> 1``
  nothing moves);
* *accuracy*: the Var(F) coefficient (Prop 5.8) scales with ``(1-alpha)``
  — stubborner agents average more gently and ``F`` concentrates harder.

This ablation sweeps ``alpha``, measuring mean ``T_eps`` and Monte-Carlo
``Var(F)`` against both closed forms, exposing the speed/accuracy
trade-off a user of the protocol must pick on.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.core.potentials import phi_pi
from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import second_walk_eigenpair, stationary_distribution
from repro.sim.montecarlo import estimate_moments, sample_f_values, sample_t_eps
from repro.sim.results import ResultTable
from repro.theory.convergence import predicted_t_eps_node
from repro.theory.variance import variance_bounds

EPSILON = 1e-8


@experiment(
    "EXP-ABL",
    artefact="Ablation of the self-weight alpha",
    params={
        "n": ParamSpec(int, "number of nodes of the expander"),
        "d": ParamSpec(int, "degree of the expander", default=4),
        "time_replicas": ParamSpec(int, "replicas of the T_eps estimate"),
        "var_replicas": ParamSpec(int, "replicas of the Var(F) estimate"),
        "tol": ParamSpec(float, "consensus discrepancy tolerance"),
        "alphas": ParamSpec(
            "floats", "alpha grid", default=(0.1, 0.3, 0.5, 0.7, 0.9)
        ),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"n": 36, "time_replicas": 5, "var_replicas": 120, "tol": 1e-6},
        "full": {"n": 100, "time_replicas": 20, "var_replicas": 500, "tol": 1e-8},
    },
)
def run(
    n: int,
    time_replicas: int,
    var_replicas: int,
    tol: float,
    d: int,
    alphas: list,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Sweep alpha on a fixed regular expander: speed vs accuracy."""
    graph = random_regular_graph(n, d, seed=seed)
    initial = center_simple(rademacher_values(n, seed=seed))
    lambda2, _ = second_walk_eigenpair(graph)
    phi0 = phi_pi(stationary_distribution(graph), initial)

    table = ResultTable(
        title="Ablation: self-weight alpha — speed vs accuracy trade-off",
        columns=[
            "alpha",
            "T_measured",
            "T_predicted",
            "Var_measured",
            "Var_core(Prop5.8)",
        ],
    )
    for alpha in alphas:

        def make(rng, alpha=alpha):
            return NodeModel(graph, initial, alpha=alpha, k=1, seed=rng)

        times = sample_t_eps(
            make, EPSILON, time_replicas, seed=seed + 1, max_steps=200_000_000,
            engine=engine, kernel=kernel, threads=threads,
        )
        f_sample = sample_f_values(
            make, var_replicas, seed=seed + 2, discrepancy_tol=tol,
            max_steps=500_000_000, engine=engine, kernel=kernel, threads=threads,
        )
        estimate = estimate_moments(f_sample, seed=seed)
        bounds = variance_bounds(graph, initial, alpha=alpha, k=1)
        predicted = predicted_t_eps_node(n, lambda2, alpha, 1, phi0, EPSILON)
        table.add_row(
            alpha, float(times.mean()), predicted,
            estimate.variance, bounds.core,
        )
    table.add_note(
        "speed is best near alpha = 1/2 (rate ~ alpha(1-alpha)); variance "
        "falls monotonically with alpha (core ~ (1-alpha)) — the protocol "
        "trades convergence time for concentration of F"
    )
    return [table]
