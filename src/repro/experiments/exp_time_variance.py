"""EXP-CE2 — time-dependent variance envelopes (Corollary E.2).

The martingales accumulate quadratic variation over time; Corollary E.2
bounds it crudely but *at every t*:

    NodeModel:  Var(M(t))   <= t (d_max K / (2m))^2
    EdgeModel:  Var(Avg(t)) <= t K^2 / n^2

with ``K`` the initial discrepancy.  We estimate both variances across
replicas at geometric checkpoints and report measured / bound — always
<= 1, with the bound looser at large ``t`` (the true variance saturates at
``Var(F)`` while the bound keeps growing linearly).
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment
from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.graphs.generators import lollipop_graph, random_regular_graph
from repro.rng import spawn
from repro.sim.results import ResultTable
from repro.theory.variance import (
    variance_time_bound_avg,
    variance_time_bound_weighted,
)

ALPHA = 0.5


@experiment(
    "EXP-CE2",
    artefact="Corollary E.2: time-dependent variance envelopes",
    params={
        "n": ParamSpec(int, "number of nodes of the lollipop graph"),
        "replicas": ParamSpec(int, "replicas per checkpoint"),
        "checkpoints": ParamSpec("ints", "times t at which to sample"),
    },
    presets={
        "fast": {"n": 30, "replicas": 300, "checkpoints": [50, 200, 800, 3_200]},
        "full": {
            "n": 80,
            "replicas": 1_500,
            "checkpoints": [100, 1_000, 10_000, 100_000],
        },
    },
)
def run(
    n: int, replicas: int, checkpoints: list, seed: int = 0
) -> list[ResultTable]:
    """Var(M(t)) and Var(Avg(t)) vs the Corollary E.2 envelopes."""
    graph = lollipop_graph(n)  # deliberately irregular
    initial = center_simple(rademacher_values(n, seed=seed))
    discrepancy = float(initial.max() - initial.min())
    m = graph.number_of_edges()
    degrees = [d for _, d in graph.degree()]
    d_max = max(degrees)

    # Record M(t) / Avg(t) at each checkpoint for each replica.
    node_values = np.empty((replicas, len(checkpoints)))
    edge_values = np.empty((replicas, len(checkpoints)))
    for i, rng in enumerate(spawn(seed, replicas)):
        node = NodeModel(graph, initial, alpha=ALPHA, k=1, seed=rng)
        edge = EdgeModel(graph, initial, alpha=ALPHA, seed=rng)
        previous = 0
        for j, t in enumerate(checkpoints):
            node.run(t - previous)
            edge.run(t - previous)
            previous = t
            node_values[i, j] = node.weighted_average
            edge_values[i, j] = edge.simple_average

    table = ResultTable(
        title="Corollary E.2: any-time variance envelopes (lollipop graph)",
        columns=["model", "t", "Var_measured", "bound", "measured/bound", "ok"],
    )
    for j, t in enumerate(checkpoints):
        var_m = float(node_values[:, j].var(ddof=1))
        bound_m = variance_time_bound_weighted(t, d_max, m, discrepancy)
        table.add_row("node: M(t)", t, var_m, bound_m, var_m / bound_m, var_m <= bound_m)
    for j, t in enumerate(checkpoints):
        var_a = float(edge_values[:, j].var(ddof=1))
        bound_a = variance_time_bound_avg(t, n, discrepancy)
        table.add_row("edge: Avg(t)", t, var_a, bound_a, var_a / bound_a, var_a <= bound_a)
    table.add_note(
        "bounds grow linearly in t while the measured variance saturates at "
        "Var(F) — the envelopes are loose late, valid always"
    )
    return [table]
