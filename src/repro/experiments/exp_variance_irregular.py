"""EXP-IRR — Var(F) on irregular graphs (the paper's second open problem).

Theorem 2.2(2) covers regular graphs only; Section 6 asks what happens on
irregular ones.  We measure ``Var(F)`` for the NodeModel and EdgeModel on
the star, lollipop and Erdős–Rényi graphs, centered for each model's own
martingale (degree-weighted vs simple), and compare against the regular-
graph envelope evaluated at the mean degree.  The star shows the largest
departure: high-degree hubs are re-selected as targets constantly, so the
NodeModel's ``F`` concentrates on the hub's value and the variance
profile shifts.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.edge_model import EdgeModel
from repro.core.initial import (
    center_degree_weighted,
    center_simple,
    rademacher_values,
)
from repro.core.node_model import NodeModel
from repro.graphs.generators import erdos_renyi_graph, lollipop_graph, star_graph
from repro.sim.montecarlo import estimate_moments, sample_f_values
from repro.sim.results import ResultTable
from repro.theory.variance import variance_envelope

ALPHA = 0.5


@experiment(
    "EXP-IRR",
    artefact="Open problem: Var(F) on irregular graphs",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "replicas": ParamSpec(int, "Monte-Carlo replicas per estimate"),
        "tol": ParamSpec(float, "consensus discrepancy tolerance"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"n": 30, "replicas": 150, "tol": 1e-6},
        "full": {"n": 80, "replicas": 500, "tol": 1e-8},
    },
)
def run(
    n: int,
    replicas: int,
    tol: float,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Empirical Var(F) on irregular graphs vs mean-degree envelope."""
    base = rademacher_values(n, seed=seed)
    table = ResultTable(
        title="Future work §6: Var(F) on irregular graphs",
        columns=[
            "graph",
            "model",
            "d_min/d_mean/d_max",
            "Var_measured",
            "env@d_mean_low",
            "env@d_mean_high",
        ],
    )
    for gname, graph in [
        ("star", star_graph(n)),
        ("lollipop", lollipop_graph(n)),
        ("erdos_renyi", erdos_renyi_graph(n, seed=seed)),
    ]:
        nn = graph.number_of_nodes()
        degrees = np.array([d for _, d in graph.degree()], dtype=float)
        d_mean = float(degrees.mean())
        d_info = f"{int(degrees.min())}/{d_mean:.1f}/{int(degrees.max())}"

        for model_name, make_factory, centering in [
            ("node", NodeModel, center_degree_weighted),
            ("edge", EdgeModel, center_simple),
        ]:
            if centering is center_degree_weighted:
                initial = centering(graph, base[:nn])
            else:
                initial = centering(base[:nn])
            norm_sq = float(np.sum(initial**2))
            env_low, env_high = variance_envelope(
                nn, max(2, int(round(d_mean))), 1, ALPHA, norm_sq
            )

            if model_name == "node":
                def make(rng, graph=graph, initial=initial):
                    return NodeModel(graph, initial, alpha=ALPHA, k=1, seed=rng)
            else:
                def make(rng, graph=graph, initial=initial):
                    return EdgeModel(graph, initial, alpha=ALPHA, seed=rng)

            sample = sample_f_values(
                make, replicas, seed=seed, discrepancy_tol=tol,
                max_steps=500_000_000, engine=engine, kernel=kernel, threads=threads,
            )
            estimate = estimate_moments(sample, seed=seed)
            table.add_row(
                gname, model_name, d_info, estimate.variance, env_low, env_high
            )
    table.add_note(
        "centered for each model's own martingale (degree-weighted for node, "
        "simple for edge); regular-graph theory does not bound these — this "
        "is the open problem's empirical baseline"
    )
    return [table]
