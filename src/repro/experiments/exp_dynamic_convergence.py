"""EXP-DYN — convergence of the averaging processes on dynamic graphs.

Section 3 cites voter-model analyses on *dynamic* graphs; the
convex-hull and discrepancy invariants are per-step facts that hold on
whatever snapshot is active, so the NodeModel and EdgeModel still
converge when the topology rotates through connected snapshots.  This
experiment measures ``T_eps`` on a time-varying topology — a
:class:`~repro.engine.dynamic.GraphSchedule` over random regular
snapshots — against the static baseline of its first snapshot, for
both models, through the batch engine's dynamic path (stacked
multi-snapshot sampling, switch-aligned kernel blocks, exact chunked
detection).

On well-mixing snapshot pools the dynamic/static ratio stays O(1): each
segment contracts the potential at the rate of its own snapshot, and
rotating among expanders neither helps nor hurts beyond constants.  The
schedule kind (``cyclic`` / ``random`` / ``rewire``) is a declared
parameter, exposed on the CLI as ``--schedule`` with ``--switch-every``
and ``--snapshots``.
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    experiment,
    graph_schedule_param,
    kernel_param,
    threads_param,
)
from repro.core.initial import center_simple, rademacher_values
from repro.engine.cache import ResultCache
from repro.engine.driver import EngineSpec, sample_t_eps_batch
from repro.engine.dynamic import build_schedule
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import random_regular_graph
from repro.sim.results import ResultTable

ALPHA = 0.5
EPSILON = 1e-8
DEGREE = 4


@experiment(
    "EXP-DYN",
    artefact="Section 3: NodeModel/EdgeModel convergence on dynamic graphs",
    params={
        "n": ParamSpec(int, "nodes per snapshot"),
        "snapshots": ParamSpec(int, "snapshot pool size"),
        "switch_every": ParamSpec(int, "rounds per topology segment"),
        "replicas": ParamSpec(int, "Monte-Carlo replicas per cell"),
        "graph_schedule": graph_schedule_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
        "cache_dir": ParamSpec(
            str,
            "on-disk engine result cache; re-runs at the same seed "
            "resume for free ('' disables)",
            default="",
        ),
    },
    presets={
        "fast": {"n": 24, "snapshots": 3, "switch_every": 16, "replicas": 24},
        "full": {"n": 96, "snapshots": 5, "switch_every": 64, "replicas": 200},
    },
)
def run(
    n: int,
    snapshots: int,
    switch_every: int,
    replicas: int,
    seed: int = 0,
    graph_schedule: str = "cyclic",
    kernel: str = "auto",
    threads: int | None = None,
    cache_dir: str = "",
) -> list[ResultTable]:
    """Measure ``T_eps`` on a snapshot schedule vs the static baseline."""
    cache = ResultCache(cache_dir) if cache_dir else None
    graphs = [
        Adjacency.from_graph(
            random_regular_graph(n, DEGREE, seed=seed + 101 * s + 1)
        )
        for s in range(snapshots)
    ]
    schedule = build_schedule(graph_schedule, graphs, switch_every, seed=seed)
    initial = center_simple(rademacher_values(n, seed=seed + 7))

    table = ResultTable(
        title=(
            "Section 3: T_eps on a dynamic topology vs its static first "
            f"snapshot (eps = {EPSILON:g})"
        ),
        columns=[
            "model",
            "schedule",
            "switch_every",
            "T_static",
            "T_dynamic",
            "ratio",
        ],
    )
    for kind in ("node", "edge"):
        static_spec = EngineSpec(
            kind, schedule.snapshots[0], initial, ALPHA, k=1,
            kernel=kernel, threads=threads
        )
        dynamic_spec = EngineSpec.for_schedule(
            kind, schedule, initial, ALPHA, k=1, kernel=kernel,
            threads=threads
        )
        t_static = sample_t_eps_batch(
            static_spec, EPSILON, replicas, seed=seed + 11,
            max_steps=200_000_000, cache=cache,
        )
        t_dynamic = sample_t_eps_batch(
            dynamic_spec, EPSILON, replicas, seed=seed + 13,
            max_steps=200_000_000, cache=cache,
        )
        table.add_row(
            kind,
            schedule.kind,
            schedule.switch_every,
            float(t_static.mean()),
            float(t_dynamic.mean()),
            float(t_dynamic.mean() / t_static.mean()),
        )
    table.add_note(
        f"{snapshots} random {DEGREE}-regular snapshots on n = {n} nodes; "
        "per-step hull/discrepancy invariants make every segment contract, "
        "so the dynamic/static ratio stays O(1) on well-mixing pools"
    )
    table.add_note(
        "dynamic runs use the batch engine's stacked multi-snapshot "
        "backends; hitting times are exact and block-size invariant "
        "across switch boundaries"
    )
    return [table]
