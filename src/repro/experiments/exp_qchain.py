"""EXP-L57 — Lemma 5.7: the Q-chain's closed-form stationary distribution.

For a grid of regular graphs, ``alpha`` and ``k`` we (i) build the
transition matrix ``Q`` from the paper's case formulas *and* by exact
enumeration of the model's joint one-step law, (ii) solve ``mu Q = mu``
numerically, and (iii) compare against the three-value closed form.  All
three agree to machine precision; the table also reports the
irreversibility the paper highlights (detailed balance fails for k > 1).
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment
from repro.dual.qchain import QChain, mu_closed_form
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    petersen_graph,
    random_regular_graph,
    torus_graph,
)
from repro.sim.results import ResultTable


@experiment(
    "EXP-L57",
    artefact="Lemma 5.7: Q-chain closed-form stationary distribution",
    params={
        "alphas": ParamSpec("floats", "alpha grid"),
        "extended": ParamSpec(
            bool, "include the larger torus/hypercube/random-regular graphs"
        ),
    },
    presets={
        "fast": {"alphas": [0.25, 0.5, 0.75], "extended": False},
        "full": {"alphas": [0.1, 0.25, 0.5, 0.75, 0.9], "extended": True},
    },
)
def run(
    alphas: list, extended: bool = False, seed: int = 0
) -> list[ResultTable]:
    """Closed-form mu vs numeric stationary distribution across a grid."""
    graphs = [
        ("cycle(8)", cycle_graph(8)),
        ("complete(6)", complete_graph(6)),
        ("petersen", petersen_graph()),
    ]
    if extended:
        graphs += [
            ("torus(16)", torus_graph(16)),
            ("hypercube(16)", hypercube_graph(16)),
            ("random_regular(12,5)", random_regular_graph(12, 5, seed=seed)),
        ]

    table = ResultTable(
        title="Lemma 5.7: closed-form (mu_0, mu_1, mu_+) vs numeric stationary law",
        columns=[
            "graph",
            "alpha",
            "k",
            "mu_0",
            "mu_1",
            "mu_+",
            "max|closed-numeric|",
            "max|Q_formula-Q_enum|",
            "reversible",
        ],
    )
    for name, graph in graphs:
        d = graph.degree(0)
        ks = sorted({1, 2, d})
        for alpha in alphas:
            for k in ks:
                chain = QChain(graph, alpha=alpha, k=k)
                q_formula = chain.transition_matrix()
                q_enum = chain.transition_matrix_enumerated()
                numeric = chain.stationary_numeric()
                closed = chain.stationary_closed_form()
                mu0, mu1, mu_plus = mu_closed_form(
                    graph.number_of_nodes(), d, k, alpha
                )
                table.add_row(
                    name,
                    alpha,
                    k,
                    mu0,
                    mu1,
                    mu_plus,
                    float(np.abs(closed - numeric).max()),
                    float(np.abs(q_formula - q_enum).max()),
                    chain.is_reversible(),
                )
    table.add_note(
        "the chain is irreducible + aperiodic but not reversible for k > 1 "
        "(Section 5.3); the closed form nevertheless solves mu Q = mu exactly"
    )
    return [table]
