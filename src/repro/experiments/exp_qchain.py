"""EXP-L57 — Lemma 5.7: the Q-chain's closed-form stationary distribution.

For a grid of regular graphs, ``alpha`` and ``k`` we (i) build the
transition matrix ``Q`` from the paper's case formulas *and* by exact
enumeration of the model's joint one-step law, (ii) solve ``mu Q = mu``
numerically, and (iii) compare against the three-value closed form.  All
three agree to machine precision; the table also reports the
irreversibility the paper highlights (detailed balance fails for k > 1).

A second, Monte-Carlo table closes the loop empirically: two tagged
walks (two walk systems driven by one shared selection stream — the
chain's exact joint law) are run past the mixing time and the empirical
class occupancies ``P(S_0), P(S_1), P(S_+)`` are compared with the
closed-form masses ``n mu_0, n d mu_1, n (n - d - 1) mu_+``.  With
``engine="batch"`` all replicas run as two
:class:`~repro.engine.dual.BatchWalks` batches; ``engine="loop"`` keeps
the scalar per-replica loop as the oracle.

Each occupancy row also carries the *exact* finite-horizon occupancy
``P_T(S0)`` — the ``(0, 0)`` start distribution propagated ``horizon``
steps through the Q-chain transition matrix — plus an ``exact_in_ci``
flag checking every empirical occupancy against its binomial CI around
the exact value.  ``engine="exact"`` skips sampling and reports the
propagated occupancies themselves.
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, engine_param, experiment
from repro.dual.qchain import QChain, mu_closed_form
from repro.dual.walks import RandomWalkProcess
from repro.engine.dual import BatchWalks
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    petersen_graph,
    random_regular_graph,
    torus_graph,
)
from repro.rng import spawn
from repro.sim.results import ResultTable


def _closed_form_table(graphs, alphas: list, seed: int) -> ResultTable:
    table = ResultTable(
        title="Lemma 5.7: closed-form (mu_0, mu_1, mu_+) vs numeric stationary law",
        columns=[
            "graph",
            "alpha",
            "k",
            "mu_0",
            "mu_1",
            "mu_+",
            "max|closed-numeric|",
            "max|Q_formula-Q_enum|",
            "reversible",
        ],
    )
    for name, graph in graphs:
        d = graph.degree(0)
        ks = sorted({1, 2, d})
        for alpha in alphas:
            for k in ks:
                chain = QChain(graph, alpha=alpha, k=k)
                q_formula = chain.transition_matrix()
                q_enum = chain.transition_matrix_enumerated()
                numeric = chain.stationary_numeric()
                closed = chain.stationary_closed_form()
                mu0, mu1, mu_plus = mu_closed_form(
                    graph.number_of_nodes(), d, k, alpha
                )
                table.add_row(
                    name,
                    alpha,
                    k,
                    mu0,
                    mu1,
                    mu_plus,
                    float(np.abs(closed - numeric).max()),
                    float(np.abs(q_formula - q_enum).max()),
                    chain.is_reversible(),
                )
    table.add_note(
        "the chain is irreducible + aperiodic but not reversible for k > 1 "
        "(Section 5.3); the closed form nevertheless solves mu Q = mu exactly"
    )
    return table


def _pair_positions_batch(
    adjacency: Adjacency, alpha: float, k: int, horizon: int,
    replicas: int, seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """End positions of two tagged walks per replica (batch engine)."""
    cost = np.zeros(adjacency.n)
    seed_a, seed_b = spawn(seed, 2)
    walks_a = BatchWalks(
        adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas, seed=seed_a
    )
    walks_a.record_selections()
    walks_a.run(horizon)
    walks_b = BatchWalks(
        adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas, seed=seed_b
    )
    walks_b.apply_selections(walks_a.recorded_selections())
    return walks_a.positions[:, 0].copy(), walks_b.positions[:, 0].copy()


def _pair_positions_loop(
    adjacency: Adjacency, alpha: float, k: int, horizon: int,
    replicas: int, seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """End positions of two tagged walks per replica (scalar oracle)."""
    cost = np.zeros(adjacency.n)
    pos_a = np.empty(replicas, dtype=np.int64)
    pos_b = np.empty(replicas, dtype=np.int64)
    for i, rng in enumerate(spawn(seed, replicas)):
        child_a, child_b = spawn(rng, 2)
        walks_a = RandomWalkProcess(
            adjacency, cost=cost, alpha=alpha, k=k, seed=child_a
        )
        walks_b = RandomWalkProcess(
            adjacency, cost=cost, alpha=alpha, k=k, seed=child_b
        )
        for _ in range(horizon):
            selection = walks_a.step()
            walks_b.step_with(selection)
        pos_a[i] = walks_a.positions[0]
        pos_b[i] = walks_b.positions[0]
    return pos_a, pos_b


def _exact_occupancies(
    adjacency: Adjacency, alpha: float, k: int, horizon: int,
    dense_adjacent: np.ndarray,
) -> tuple[float, float, float]:
    """Exact ``(P_T(S0), P_T(S1), P_T(S+))`` of the two-walk pair.

    Propagates the deterministic ``(0, 0)`` start through ``horizon``
    applications of the Q-chain transition matrix — the analytic
    counterpart of the Monte-Carlo occupancy estimate, exact at the
    *finite* horizon rather than in the stationary limit.
    """
    n = adjacency.n
    q = QChain(adjacency, alpha=alpha, k=k).transition_matrix()
    rho = np.zeros(n * n)
    rho[0] = 1.0  # state (0, 0): both tagged walks start on node 0
    for _ in range(horizon):
        rho = rho @ q
    grid = rho.reshape(n, n)
    p0 = float(np.trace(grid))
    p1 = float(grid[dense_adjacent].sum())
    return p0, p1, max(0.0, 1.0 - p0 - p1)


def _occupancy_table(
    graphs, alphas: list, horizon: int, replicas: int, seed: int, engine: str
) -> ResultTable:
    table = ResultTable(
        title=(
            "Lemma 5.7 empirically: two-walk class occupancy at horizon "
            f"T={horizon} vs the stationary masses"
        ),
        columns=[
            "graph", "alpha", "k", "engine",
            "P(S0)", "P(S0)_exact", "n*mu_0", "P(S1)", "n*d*mu_1",
            "P(S+)", "mass_+", "exact_in_ci", "max|dev|",
        ],
    )
    sample = _pair_positions_batch if engine == "batch" else _pair_positions_loop
    for name, graph in graphs:
        adjacency = Adjacency.from_graph(graph)
        n, d = adjacency.n, adjacency.degree
        dense = np.zeros((n, n), dtype=bool)
        dense[adjacency.edge_tails, adjacency.edge_heads] = True
        for alpha in alphas:
            k = 1
            exact = _exact_occupancies(adjacency, alpha, k, horizon, dense)
            if engine == "exact":
                p0, p1, p_plus = exact
                exact_in_ci = True
            else:
                pos_a, pos_b = sample(
                    adjacency, alpha, k, horizon, replicas, seed
                )
                same = pos_a == pos_b
                adjacent = dense[pos_a, pos_b]
                p0 = float(same.mean())
                p1 = float(adjacent.mean())
                p_plus = float((~same & ~adjacent).mean())
                exact_in_ci = all(
                    abs(est - ref)
                    <= 3.5 * np.sqrt(max(ref * (1.0 - ref), 1e-12) / replicas)
                    + 1e-9
                    for est, ref in zip((p0, p1, p_plus), exact)
                )
            mu0, mu1, mu_plus = mu_closed_form(n, d, k, alpha)
            masses = (n * mu0, n * d * mu1, n * (n - d - 1) * mu_plus)
            deviation = max(
                abs(p0 - masses[0]), abs(p1 - masses[1]), abs(p_plus - masses[2])
            )
            table.add_row(
                name, alpha, k, engine,
                p0, exact[0], masses[0], p1, masses[1], p_plus, masses[2],
                exact_in_ci, deviation,
            )
    table.add_note(
        "the two tagged walks start on one node (an S_0 state) and share "
        "their selection stream; past the mixing time the pair law is mu; "
        "P(S0)_exact propagates the (0,0) start through Q^T and "
        "exact_in_ci checks each empirical occupancy against a 3.5-sigma "
        "binomial band around its exact finite-horizon value"
    )
    return table


@experiment(
    "EXP-L57",
    artefact="Lemma 5.7: Q-chain closed-form stationary distribution",
    params={
        "alphas": ParamSpec("floats", "alpha grid"),
        "extended": ParamSpec(
            bool, "include the larger torus/hypercube/random-regular graphs"
        ),
        "replicas": ParamSpec(int, "Monte-Carlo replicas of the occupancy check"),
        "horizon": ParamSpec(int, "steps the two tagged walks run"),
        "engine": engine_param(include_exact=True),
    },
    presets={
        "fast": {
            "alphas": [0.25, 0.5, 0.75],
            "extended": False,
            "replicas": 2_000,
            "horizon": 300,
        },
        "full": {
            "alphas": [0.1, 0.25, 0.5, 0.75, 0.9],
            "extended": True,
            "replicas": 10_000,
            "horizon": 1_200,
        },
    },
)
def run(
    alphas: list,
    extended: bool = False,
    replicas: int = 2_000,
    horizon: int = 300,
    seed: int = 0,
    engine: str = "batch",
) -> list[ResultTable]:
    """Closed-form mu vs numeric and empirical estimates across a grid."""
    graphs = [
        ("cycle(8)", cycle_graph(8)),
        ("complete(6)", complete_graph(6)),
        ("petersen", petersen_graph()),
    ]
    if extended:
        graphs += [
            ("torus(16)", torus_graph(16)),
            ("hypercube(16)", hypercube_graph(16)),
            ("random_regular(12,5)", random_regular_graph(12, 5, seed=seed)),
        ]
    return [
        _closed_form_table(graphs, alphas, seed),
        _occupancy_table(
            graphs[:2], alphas, horizon, replicas, seed, engine
        ),
    ]
