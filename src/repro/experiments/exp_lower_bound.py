"""EXP-T221LB — tightness of the convergence bounds (Proposition B.2).

Starting from the adversarial eigenvector-aligned state
``xi(0) = n f_2(P)`` (NodeModel) / ``xi(0) = n f_2(L)`` (EdgeModel), the
expected convergence time is *Omega* of the same expression as the upper
bound — i.e. the bounds are tight up to constants.  We measure mean
``T_eps`` from those states and report the measured/lower-bound ratio,
which should be Theta(1) (and >= the ratio from benign initial states).
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.edge_model import EdgeModel
from repro.core.initial import fiedler_aligned, second_eigenvector_aligned
from repro.core.node_model import NodeModel
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.graphs.spectral import second_laplacian_eigenpair, second_walk_eigenpair
from repro.sim.montecarlo import sample_t_eps
from repro.sim.results import ResultTable
from repro.theory.convergence import (
    edge_model_lower_bound,
    node_model_lower_bound,
)

ALPHA = 0.5
EPSILON = 1e-6


@experiment(
    "EXP-T221LB",
    artefact="Proposition B.2: tightness of the convergence bounds",
    params={
        "sizes": ParamSpec("ints", "graph sizes"),
        "replicas": ParamSpec(int, "replicas per (model, graph, size) cell"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"sizes": [16, 32], "replicas": 5},
        "full": {"sizes": [32, 64, 128], "replicas": 20},
    },
)
def run(
    sizes: list,
    replicas: int,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """Measure T_eps from the Prop. B.2 worst-case initial states."""
    table = ResultTable(
        title="Proposition B.2: lower-bound tightness from xi(0) = n f_2",
        columns=["model", "graph", "n", "T_measured", "lower_bound_expr", "ratio"],
    )
    for n in sizes:
        for name, graph in [
            ("cycle", cycle_graph(n)),
            ("random_regular(d=4)", random_regular_graph(n, 4, seed=seed + n)),
        ]:
            # NodeModel with xi(0) = n f_2(P).
            initial = second_eigenvector_aligned(graph)
            lambda2, _ = second_walk_eigenpair(graph)
            norm_sq = float(np.sum(initial**2))
            bound = node_model_lower_bound(n, lambda2, norm_sq, EPSILON, ALPHA)

            def make_node(rng, graph=graph, initial=initial):
                return NodeModel(graph, initial, alpha=ALPHA, k=1, seed=rng)

            times = sample_t_eps(
                make_node, EPSILON, replicas, seed=seed + n,
                max_steps=500_000_000, engine=engine, kernel=kernel, threads=threads,
            )
            table.add_row("node", name, n, float(times.mean()), bound,
                          float(times.mean()) / bound)

            # EdgeModel with xi(0) = n f_2(L).
            initial_e = fiedler_aligned(graph)
            lambda2_l, _ = second_laplacian_eigenpair(graph)
            m = graph.number_of_edges()
            norm_sq_e = float(np.sum(initial_e**2))
            bound_e = edge_model_lower_bound(
                n, m, lambda2_l, norm_sq_e, EPSILON, ALPHA
            )

            def make_edge(rng, graph=graph, initial=initial_e):
                return EdgeModel(graph, initial, alpha=ALPHA, seed=rng)

            times_e = sample_t_eps(
                make_edge, EPSILON, replicas, seed=seed + n + 1,
                max_steps=500_000_000, engine=engine, kernel=kernel, threads=threads,
            )
            table.add_row("edge", name, n, float(times_e.mean()), bound_e,
                          float(times_e.mean()) / bound_e)
    table.add_note(
        "ratios bounded away from 0 across n confirm tightness up to constants"
    )
    return [table]
