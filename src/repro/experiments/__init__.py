"""Experiment registry: one module per paper artefact.

Every experiment module exposes ``run(fast=True, seed=...) ->
list[ResultTable]``; ``fast=True`` uses laptop-scale parameters (seconds
to a few tens of seconds), ``fast=False`` the larger sweeps recorded in
EXPERIMENTS.md.  The registry maps the experiment ids of DESIGN.md to the
runners so the CLI and the benchmark harness share one source of truth.
"""

from typing import Callable, Dict, List

from repro.sim.results import ResultTable

from repro.experiments import (
    exp_alpha_ablation,
    exp_edge_convergence,
    exp_fig_duality,
    exp_higher_moments,
    exp_k_dependence,
    exp_lower_bound,
    exp_martingale,
    exp_node_convergence,
    exp_potential_drop,
    exp_price_of_simplicity,
    exp_qchain,
    exp_time_variance,
    exp_variance_edge,
    exp_variance_irregular,
    exp_variance_regular,
    exp_variance_trajectory,
)

#: Experiment id -> runner, as indexed in DESIGN.md section 3.
EXPERIMENTS: Dict[str, Callable[..., List[ResultTable]]] = {
    "EXP-F1": exp_fig_duality.run_figure1,
    "EXP-F4": exp_fig_duality.run_figure4,
    "EXP-T221": exp_node_convergence.run,
    "EXP-T221K": exp_k_dependence.run,
    "EXP-T221LB": exp_lower_bound.run,
    "EXP-T222": exp_variance_regular.run,
    "EXP-T241": exp_edge_convergence.run,
    "EXP-T242": exp_variance_edge.run,
    "EXP-L41": exp_martingale.run,
    "EXP-L57": exp_qchain.run,
    "EXP-PB1": exp_potential_drop.run,
    "EXP-CE2": exp_time_variance.run,
    "EXP-PRICE": exp_price_of_simplicity.run,
    "EXP-MOM": exp_higher_moments.run,
    "EXP-IRR": exp_variance_irregular.run,
    "EXP-ABL": exp_alpha_ablation.run,
    "EXP-VT": exp_variance_trajectory.run,
}

__all__ = ["EXPERIMENTS"]
