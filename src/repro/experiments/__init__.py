"""Experiment registry: one module per paper artefact.

Every experiment module registers itself with the
:func:`repro.api.experiment` decorator, declaring its id, the paper
artefact it reproduces, a typed parameter schema and the ``fast`` /
``full`` scale presets as data.  Importing this package triggers the
registrations — the modules below are imported in the order of the
DESIGN.md section-3 index, so :data:`repro.api.REGISTRY` iterates in
index order.

:data:`EXPERIMENTS` remains for legacy callers: it maps each id to the
decorator-produced wrapper with the historical convention
``run(fast=True, seed=0, **overrides) -> list[ResultTable]``.  New code
should execute :class:`repro.api.RunSpec`\\ s through
:func:`repro.api.execute` instead.
"""

from typing import Callable, Dict, List

from repro.api.registry import REGISTRY
from repro.sim.results import ResultTable

# Imported for registration side effects, in DESIGN.md index order.
from repro.experiments import exp_fig_duality  # EXP-F1, EXP-F4
from repro.experiments import exp_node_convergence  # EXP-T221
from repro.experiments import exp_k_dependence  # EXP-T221K
from repro.experiments import exp_lower_bound  # EXP-T221LB
from repro.experiments import exp_variance_regular  # EXP-T222
from repro.experiments import exp_edge_convergence  # EXP-T241
from repro.experiments import exp_variance_edge  # EXP-T242
from repro.experiments import exp_martingale  # EXP-L41
from repro.experiments import exp_qchain  # EXP-L57
from repro.experiments import exp_potential_drop  # EXP-PB1
from repro.experiments import exp_time_variance  # EXP-CE2
from repro.experiments import exp_price_of_simplicity  # EXP-PRICE
from repro.experiments import exp_higher_moments  # EXP-MOM
from repro.experiments import exp_variance_irregular  # EXP-IRR
from repro.experiments import exp_alpha_ablation  # EXP-ABL
from repro.experiments import exp_variance_trajectory  # EXP-VT
from repro.experiments import exp_dynamic_convergence  # EXP-DYN
from repro.experiments import exp_dynamic_martingale  # EXP-DYNM
from repro.experiments import exp_coalescing  # EXP-COAL

#: Experiment id -> legacy runner, as indexed in DESIGN.md section 3.
EXPERIMENTS: Dict[str, Callable[..., List[ResultTable]]] = {
    experiment_id: experiment.legacy_runner
    for experiment_id, experiment in REGISTRY.items()
}

__all__ = ["EXPERIMENTS"]
