"""EXP-VT — the exact Var(Avg(t)) trajectory (Sections 5.1-5.4 end to end).

Computes ``Var(Avg(t))`` *exactly* through Q-chain powers (no Monte
Carlo), checks it against a Monte-Carlo estimate at each checkpoint, and
shows the two structural facts the Prop 5.8 proof uses:

* the trajectory is non-decreasing in ``t``;
* it converges to the Lemma 5.5 quadratic form
  ``sum mu(u,v) xi_u xi_v`` — which is the Prop 5.8 core exactly.

This is the strongest single validation of the duality pipeline: every
arrow in the paper's diagram (Averaging -> Diffusion -> Random Walks ->
Q-chain stationary law) is exercised numerically in one table.
"""

from __future__ import annotations

import numpy as np

from repro.api import ParamSpec, experiment
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.rng import spawn
from repro.sim.results import ResultTable
from repro.theory.exact import exact_limit_variance, exact_variance_trajectory

ALPHA = 0.5


@experiment(
    "EXP-VT",
    artefact="Sections 5.1-5.4: exact Var(Avg(t)) trajectory",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "replicas": ParamSpec(int, "Monte-Carlo replicas"),
        "checkpoints": ParamSpec("ints", "times t at which to sample"),
    },
    presets={
        "fast": {"n": 12, "replicas": 3_000, "checkpoints": [1, 10, 50, 200, 1_000]},
        "full": {
            "n": 20,
            "replicas": 12_000,
            "checkpoints": [1, 10, 100, 1_000, 10_000],
        },
    },
)
def run(
    n: int, replicas: int, checkpoints: list, seed: int = 0
) -> list[ResultTable]:
    """Exact vs Monte-Carlo Var(Avg(t)) on small regular graphs."""
    tables = []
    for name, graph, k in [
        ("cycle", cycle_graph(n), 1),
        ("random_regular(d=4)", random_regular_graph(n, 4, seed=seed), 2),
    ]:
        initial = center_simple(rademacher_values(n, seed=seed))
        exact = exact_variance_trajectory(graph, initial, ALPHA, k, checkpoints)
        limit = exact_limit_variance(graph, initial, ALPHA, k)

        # Monte-Carlo Avg(t) at the same checkpoints.
        averages = np.empty((replicas, len(checkpoints)))
        for i, rng in enumerate(spawn(seed, replicas)):
            process = NodeModel(graph, initial, alpha=ALPHA, k=k, seed=rng)
            previous = 0
            for j, t in enumerate(checkpoints):
                process.run(t - previous)
                previous = t
                averages[i, j] = process.simple_average

        table = ResultTable(
            title=f"Exact Var(Avg(t)) via Q-chain powers — {name}, k={k}",
            columns=["t", "Var_exact", "Var_monte_carlo", "mc/exact"],
        )
        for j, t in enumerate(checkpoints):
            mc = float(averages[:, j].var(ddof=1))
            table.add_row(t, float(exact[j]), mc,
                          mc / exact[j] if exact[j] > 0 else float("nan"))
        table.add_note(f"t->infinity limit (Lemma 5.5 form) = {limit:.6g}; "
                       f"exact trajectory is non-decreasing and approaches it")
        monotone = bool(np.all(np.diff(exact) >= -1e-12))
        table.add_note(f"monotone non-decreasing: {monotone}")
        tables.append(table)
    return tables
