"""EXP-T242 — EdgeModel Var(F) on regular graphs (Theorem 2.4(2)).

On regular graphs the EdgeModel is identical in law to the NodeModel with
``k = 1``, so its ``Var(F)`` obeys the same Proposition 5.8 bounds.  We
verify both halves: the EdgeModel's Monte-Carlo variance sits in the
envelope, and it is statistically indistinguishable from the NodeModel's
(same graph, same initial values).
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ParamSpec,
    engine_param,
    experiment,
    kernel_param,
    threads_param,
)
from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.sim.montecarlo import estimate_moments, sample_f_values
from repro.sim.results import ResultTable
from repro.theory.variance import variance_bounds, variance_envelope

ALPHA = 0.5


@experiment(
    "EXP-T242",
    artefact="Theorem 2.4(2): EdgeModel Var(F) equals NodeModel(k=1)",
    params={
        "n": ParamSpec(int, "number of nodes per graph"),
        "replicas": ParamSpec(int, "Monte-Carlo replicas per estimate"),
        "tol": ParamSpec(float, "consensus discrepancy tolerance"),
        "engine": engine_param(),
        "kernel": kernel_param(),
        "threads": threads_param(),
    },
    presets={
        "fast": {"n": 36, "replicas": 160, "tol": 1e-6},
        "full": {"n": 100, "replicas": 600, "tol": 1e-8},
    },
)
def run(
    n: int,
    replicas: int,
    tol: float,
    seed: int = 0,
    engine: str = "batch",
    kernel: str = "auto",
    threads: int | None = None,
) -> list[ResultTable]:
    """EdgeModel vs NodeModel(k=1) variance on regular graphs.

    ``engine`` selects the replica simulator: the vectorized batch
    engine (default) or the legacy per-replica loop (the oracle).
    """
    values = center_simple(rademacher_values(n, seed=seed))
    norm_sq = float(np.sum(values**2))

    table = ResultTable(
        title="Theorem 2.4(2): EdgeModel Var(F) equals NodeModel(k=1) on regular graphs",
        columns=[
            "graph",
            "model",
            "Var_measured",
            "ci_low",
            "ci_high",
            "prop58_core",
            "env_low",
            "env_high",
        ],
    )
    for name, graph, d in [
        ("cycle (d=2)", cycle_graph(n), 2),
        ("random_regular (d=4)", random_regular_graph(n, 4, seed=seed), 4),
    ]:
        bounds = variance_bounds(graph, values, alpha=ALPHA, k=1)
        env_low, env_high = variance_envelope(n, d, 1, ALPHA, norm_sq)

        def make_edge(rng, graph=graph):
            return EdgeModel(graph, values, alpha=ALPHA, seed=rng)

        def make_node(rng, graph=graph):
            return NodeModel(graph, values, alpha=ALPHA, k=1, seed=rng)

        for model, make in [("edge", make_edge), ("node k=1", make_node)]:
            sample = sample_f_values(
                make, replicas, seed=seed + d, discrepancy_tol=tol,
                max_steps=500_000_000, engine=engine, kernel=kernel, threads=threads,
            )
            estimate = estimate_moments(sample, seed=seed)
            lo, hi = estimate.variance_ci
            table.add_row(
                name, model, estimate.variance, lo, hi,
                bounds.core, env_low, env_high,
            )
    table.add_note("on regular graphs the two samplers draw from the same law")
    return [table]
