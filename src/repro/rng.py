"""Random number generation utilities.

Every stochastic component of the library accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).
:func:`as_generator` normalises those three cases, and :func:`spawn` derives
independent child generators for replicated Monte-Carlo runs so that
experiments are reproducible *and* replicas are statistically independent.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything accepted where randomness is needed.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged (no reseeding), so a
    caller can thread one generator through several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    non-overlapping streams.  When ``seed`` is already a generator, children
    are derived from its bit generator's seed sequence via ``spawn`` as well.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        children = seed.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
        return [np.random.default_rng(c) for c in children]
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(c) for c in seed.spawn(count)]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(c) for c in sequence.spawn(count)]


def stream_seeds(seed: SeedLike, count: int) -> list[int]:
    """Return ``count`` reproducible integer seeds derived from ``seed``.

    Useful when seeds must be serialised into result records so that any
    individual replica can be re-run in isolation.
    """
    generator = as_generator(seed)
    return [int(s) for s in generator.integers(0, 2**63 - 1, size=count)]


def sample_without_replacement(
    rng: np.random.Generator, pool: np.ndarray, k: int
) -> np.ndarray:
    """Sample ``k`` distinct entries of ``pool`` uniformly at random.

    Fast paths for ``k == 1`` and ``k == len(pool)`` avoid the generic
    permutation-based sampling that dominates the inner loop of the
    NodeModel otherwise.
    """
    size = len(pool)
    if k > size:
        raise ValueError(f"cannot sample {k} items from a pool of {size}")
    if k == 1:
        return pool[rng.integers(size)][None]
    if k == size:
        return pool
    return rng.choice(pool, size=k, replace=False)
