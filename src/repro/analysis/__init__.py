"""Analysis helpers: scaling fits, decay fits, bound-ratio diagnostics."""

from repro.analysis.decay import DecayFit, DecaySummary, decay_summary, fit_decay_rate
from repro.analysis.fits import loglog_slope, ratio_statistics

__all__ = [
    "DecayFit",
    "DecaySummary",
    "decay_summary",
    "fit_decay_rate",
    "loglog_slope",
    "ratio_statistics",
]
