"""Scaling-law fits and bound-ratio diagnostics.

The asymptotic statements (``T_eps = O(...)``, ``Var(F) = Theta(...)``)
are validated empirically in two ways:

* :func:`loglog_slope` — least-squares slope of ``log y`` against
  ``log x``; e.g. ``Var(F)`` against ``n`` at fixed ``||xi||^2/n`` should
  have slope close to the predicted exponent;
* :func:`ratio_statistics` — summary of measured/bound ratios across a
  sweep; a Theta(...) claim means the ratios stay within a constant band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ParameterError


def loglog_slope(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Least-squares ``(slope, intercept)`` of ``log y ~ slope log x + b``.

    All entries must be positive.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.shape != y_arr.shape or x_arr.ndim != 1 or len(x_arr) < 2:
        raise ParameterError("x and y must be equal-length 1-D with >= 2 points")
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise ParameterError("loglog fit requires positive data")
    slope, intercept = np.polyfit(np.log(x_arr), np.log(y_arr), deg=1)
    return float(slope), float(intercept)


@dataclass(frozen=True)
class RatioStatistics:
    """Spread of measured/predicted ratios across a sweep."""

    minimum: float
    maximum: float
    geometric_mean: float

    @property
    def band(self) -> float:
        """``max / min`` — a Theta(...) claim keeps this O(1) in the sweep."""
        return self.maximum / self.minimum if self.minimum > 0 else float("inf")


def ratio_statistics(
    measured: Sequence[float], predicted: Sequence[float]
) -> RatioStatistics:
    """Summarise ``measured[i] / predicted[i]`` over a sweep."""
    m = np.asarray(measured, dtype=np.float64)
    p = np.asarray(predicted, dtype=np.float64)
    if m.shape != p.shape or m.ndim != 1 or len(m) == 0:
        raise ParameterError("measured and predicted must be equal-length 1-D")
    if np.any(p <= 0):
        raise ParameterError("predicted values must be positive")
    ratios = m / p
    positive = ratios[ratios > 0]
    geo = float(np.exp(np.mean(np.log(positive)))) if len(positive) else 0.0
    return RatioStatistics(
        minimum=float(ratios.min()),
        maximum=float(ratios.max()),
        geometric_mean=geo,
    )
