"""Exponential-decay fits for potential trajectories.

Proposition B.1 / D.1(ii) say ``E[phi(t)] <= factor^t phi(0)``; a recorded
trajectory therefore decays exponentially with per-step rate at least
``1 - factor``.  :func:`fit_decay_rate` extracts the empirical rate from a
:class:`~repro.core.runner.Trajectory` by least squares on
``log phi``, and :func:`decay_summary` packages the comparison with the
theoretical factor (used by the ablation experiment and available to
users profiling their own graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.runner import Trajectory
from repro.exceptions import ParameterError


@dataclass(frozen=True)
class DecayFit:
    """Result of an exponential fit ``phi(t) ~ phi0 * exp(-rate * t)``.

    ``rate`` is per step; ``half_life`` the step count halving ``phi``;
    ``r_squared`` the goodness of the log-linear fit.
    """

    rate: float
    phi0: float
    r_squared: float

    @property
    def half_life(self) -> float:
        if self.rate <= 0:
            return float("inf")
        return float(np.log(2.0) / self.rate)

    def factor(self) -> float:
        """Equivalent per-step contraction factor ``exp(-rate)``."""
        return float(np.exp(-self.rate))


def fit_decay_rate(
    trajectory: Trajectory, floor: float = 1e-13, min_points: int = 3
) -> DecayFit:
    """Least-squares fit of ``log phi`` against ``t``.

    Samples where ``phi <= floor`` are discarded (they sit on the
    floating-point noise floor and would bias the slope).
    """
    mask = trajectory.phi > floor
    times = trajectory.times[mask].astype(np.float64)
    phis = trajectory.phi[mask]
    if len(times) < min_points:
        raise ParameterError(
            f"need at least {min_points} samples above the floor, "
            f"got {len(times)}"
        )
    log_phi = np.log(phis)
    slope, intercept = np.polyfit(times, log_phi, deg=1)
    predicted = slope * times + intercept
    residual = float(np.sum((log_phi - predicted) ** 2))
    total = float(np.sum((log_phi - log_phi.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return DecayFit(rate=-float(slope), phi0=float(np.exp(intercept)),
                    r_squared=r_squared)


@dataclass(frozen=True)
class DecaySummary:
    """Empirical vs theoretical per-step decay."""

    fit: DecayFit
    theoretical_factor: float

    @property
    def measured_factor(self) -> float:
        return self.fit.factor()

    @property
    def rate_ratio(self) -> float:
        """measured rate / theoretical rate (>= 1 when the bound is loose).

        The theoretical factor bounds ``E[phi]`` from above, so the
        measured decay should be at least as fast: ratio >= ~1 up to
        stochastic fluctuation and multi-mode transients.
        """
        theoretical_rate = 1.0 - self.theoretical_factor
        if theoretical_rate <= 0:
            return float("inf")
        return self.fit.rate / theoretical_rate


def decay_summary(trajectory: Trajectory, theoretical_factor: float) -> DecaySummary:
    """Fit ``trajectory`` and pair it with ``theoretical_factor``."""
    if not 0.0 < theoretical_factor < 1.0:
        raise ParameterError(
            f"theoretical_factor must be in (0, 1), got {theoretical_factor}"
        )
    return DecaySummary(fit=fit_decay_rate(trajectory),
                        theoretical_factor=theoretical_factor)
