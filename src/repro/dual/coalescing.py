"""Coalescing random walks — the classical dual the paper generalises.

Footnote 2 of the paper recalls the well-known duality between the voter
model and *coalescing random walks*: one walk starts on each node, walks
that meet merge, and the coalescence time has the same distribution as
the voter model's consensus time.  The paper's Diffusion/Random-Walk
duality (Section 5) is the averaging generalisation of exactly this
construction, so we implement the classical object too — both for
completeness and because it gives an independent statistical check of
the voter baseline.

The walks move in the NodeModel's asynchronous schedule: at each step a
uniform random node is selected and, with probability ``1 - alpha``, all
walks currently sitting there jump *together* to a uniform random
neighbour (they are already coalesced — walks on the same node are one
walk).  For ``alpha = 0`` this is the standard asynchronous coalescing
walk dual to pull voting.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class CoalescingWalks:
    """Coalescing random walks under asynchronous node activation.

    ``cluster_of[u]`` maps the walk started at ``u`` to its current
    cluster representative; ``position_of`` maps representatives to
    nodes.  Walks that land on an occupied node merge.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        alpha: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.alpha = float(alpha)
        self.rng = as_generator(seed)
        self.t = 0
        n = self.adjacency.n
        # walk u starts at node u; every walk is its own cluster.
        self._parent = np.arange(n, dtype=np.int64)  # union-find forest
        self._cluster_node = np.arange(n, dtype=np.int64)
        # occupancy: node -> cluster representative (or -1).
        self._occupant = np.arange(n, dtype=np.int64)
        self.num_clusters = n

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------
    def _find(self, walk: int) -> int:
        root = walk
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[walk] != root:  # path compression
            parent[walk], walk = root, parent[walk]
        return int(root)

    def cluster_of(self, walk: int) -> int:
        """Representative of the cluster containing ``walk``."""
        if not 0 <= walk < self.adjacency.n:
            raise ParameterError(f"walk index {walk} out of range")
        return self._find(walk)

    def position_of(self, walk: int) -> int:
        """Current node of the (coalesced) walk containing ``walk``."""
        return int(self._cluster_node[self._find(walk)])

    def positions(self) -> np.ndarray:
        """Node of every original walk (coalesced walks share positions)."""
        return np.array(
            [self.position_of(w) for w in range(self.adjacency.n)], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One asynchronous step: select a node; its occupant may move."""
        self.t += 1
        adj = self.adjacency
        node = int(self.rng.integers(adj.n))
        cluster = int(self._occupant[node])
        if cluster == -1:
            return
        if self.alpha > 0.0 and self.rng.random() < self.alpha:
            return
        start = adj.offsets[node]
        degree = int(adj.offsets[node + 1] - start)
        target = int(adj.neighbors[start + int(self.rng.integers(degree))])
        self._occupant[node] = -1
        resident = int(self._occupant[target])
        if resident == -1:
            self._occupant[target] = cluster
            self._cluster_node[cluster] = target
        else:
            # Merge: attach the moving cluster under the resident.
            self._parent[cluster] = resident
            self.num_clusters -= 1

    def run_to_coalescence(self, max_steps: int = 100_000_000) -> int:
        """Run until one walk remains; return the coalescence time."""
        start = self.t
        while self.num_clusters > 1:
            if self.t - start >= max_steps:
                raise ConvergenceError(
                    f"{self.num_clusters} walks remain after {max_steps} steps"
                )
            self.step()
        return self.t - start


def meeting_time_estimate(
    graph: nx.Graph | Adjacency,
    replicas: int = 100,
    seed: SeedLike = None,
    max_steps: int = 100_000_000,
) -> float:
    """Mean coalescence time of the full system over ``replicas`` runs.

    [33] bounds voter consensus time by ``O(t_meet log n)``; this estimate
    is the empirical anchor for that comparison in the voter experiments.
    """
    if replicas < 1:
        raise ParameterError(f"replicas must be positive, got {replicas}")
    rng = as_generator(seed)
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    total = 0
    for _ in range(replicas):
        walks = CoalescingWalks(adjacency, alpha=0.0, seed=rng)
        total += walks.run_to_coalescence(max_steps=max_steps)
    return total / replicas
