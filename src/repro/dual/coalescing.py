"""Coalescing random walks — the classical dual the paper generalises.

Footnote 2 of the paper recalls the well-known duality between the voter
model and *coalescing random walks*: one walk starts on each node, walks
that meet merge, and the coalescence time has the same distribution as
the voter model's consensus time.  The paper's Diffusion/Random-Walk
duality (Section 5) is the averaging generalisation of exactly this
construction, so we implement the classical object too — both for
completeness and because it gives an independent statistical check of
the voter baseline.

The walks move in the NodeModel's asynchronous schedule: at each step a
uniform random node is selected and, with probability ``1 - alpha``, all
walks currently sitting there jump *together* to a uniform random
neighbour (they are already coalesced — walks on the same node are one
walk).  For ``alpha = 0`` this is the standard asynchronous coalescing
walk dual to pull voting.

Since the dual-engine PR this class is a thin scalar facade over
:class:`repro.engine.dual.BatchCoalescing` (a single-replica batch):
co-located walks share a position, so a walk's *position* doubles as
its cluster label and no union-find forest is needed.
:func:`meeting_time_estimate` samples all of its replicas as one batch.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.engine.dual import BatchCoalescing
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike


class CoalescingWalks:
    """Coalescing random walks under asynchronous node activation.

    Walks on the same node are one walk, so the cluster of walk ``u``
    is identified by its current position: :meth:`cluster_of` and
    :meth:`position_of` coincide, and :attr:`num_clusters` counts the
    occupied nodes.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        alpha: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        self._batch = BatchCoalescing(
            graph, alpha=alpha, replicas=1, seed=seed, track_positions=True
        )
        self.rng = self._batch.rng

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> Adjacency:
        return self._batch.adjacency

    @property
    def alpha(self) -> float:
        return self._batch.alpha

    @property
    def t(self) -> int:
        return self._batch.t

    @property
    def num_clusters(self) -> int:
        return int(self._batch.num_clusters[0])

    def cluster_of(self, walk: int) -> int:
        """Representative of the cluster containing ``walk``.

        Clusters are identified by the node they occupy (all co-located
        walks are one walk), so this equals :meth:`position_of`.
        """
        if not 0 <= walk < self.adjacency.n:
            raise ParameterError(f"walk index {walk} out of range")
        return int(self._batch.positions[0, walk])

    def position_of(self, walk: int) -> int:
        """Current node of the (coalesced) walk containing ``walk``."""
        return self.cluster_of(walk)

    def positions(self) -> np.ndarray:
        """Node of every original walk (coalesced walks share positions)."""
        return self._batch.positions[0].copy()

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One asynchronous step: select a node; its occupant may move."""
        self._batch.run(1)

    def run_to_coalescence(self, max_steps: int = 100_000_000) -> int:
        """Run until one walk remains; return the coalescence time."""
        return int(self._batch.run_to_coalescence(max_steps=max_steps)[0])


def meeting_time_estimate(
    graph: nx.Graph | Adjacency,
    replicas: int = 100,
    seed: SeedLike = None,
    max_steps: int = 100_000_000,
) -> float:
    """Mean coalescence time of the full system over ``replicas`` runs.

    [33] bounds voter consensus time by ``O(t_meet log n)``; this estimate
    is the empirical anchor for that comparison in the voter experiments.
    The replicas run as one :class:`~repro.engine.dual.BatchCoalescing`
    batch (label tracking off — only the cluster counts matter here).
    """
    if replicas < 1:
        raise ParameterError(f"replicas must be positive, got {replicas}")
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    walks = BatchCoalescing(
        adjacency, alpha=0.0, replicas=replicas, seed=seed,
        track_positions=False,
    )
    times = walks.run_to_coalescence(max_steps=max_steps)
    return float(times.mean())
