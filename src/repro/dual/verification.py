"""Statistical verification of the Section 5 duality chain.

The proof of Theorem 2.2(2) rests on three identities:

* Lemma 5.3:    ``E[W~(u)(t) | chi] = W(u)(t)``          (first moments)
* Prop. 5.4:    ``E[W~(u) W~(v)] = E[W(u) W(v)]``        (second moments)
* Lemma 5.5:    ``E[W~(a)(T) W~(b)(T)] -> sum mu(u,v) xi_u xi_v``

This module estimates each side by Monte Carlo and reports the
discrepancies with standard errors, turning the lemmas into executable
checks (used by the test suite and available for user graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule
from repro.dual.diffusion import DiffusionProcess
from repro.dual.qchain import QChain
from repro.dual.walks import RandomWalkProcess
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator, spawn


@dataclass(frozen=True)
class MomentCheck:
    """Comparison of a Monte-Carlo estimate against a reference value."""

    estimate: float
    reference: float
    standard_error: float

    @property
    def z_score(self) -> float:
        if self.standard_error == 0:
            return 0.0 if self.estimate == self.reference else float("inf")
        return (self.estimate - self.reference) / self.standard_error

    @property
    def consistent(self) -> bool:
        """Within four standard errors plus a float-noise allowance.

        The absolute term matters when the sampled quantity is
        deterministic under the fixed schedule (SE collapses to ~1e-18
        while the estimate carries ~1e-16 rounding noise).
        """
        tolerance = 4.0 * self.standard_error + 1e-9 * max(1.0, abs(self.reference))
        return abs(self.estimate - self.reference) <= tolerance


def check_lemma_53(
    graph: nx.Graph | Adjacency,
    cost: np.ndarray,
    alpha: float,
    k: int,
    schedule: Schedule,
    walk: int,
    replicas: int = 20_000,
    seed: SeedLike = None,
) -> MomentCheck:
    """Lemma 5.3: conditional mean walk cost equals the diffusion cost.

    Fixes ``schedule`` (= ``chi``), replays it through ``replicas``
    independent walk systems, and compares the empirical mean cost of
    ``walk`` with the deterministic diffusion cost ``W(walk)``.
    """
    if replicas < 2:
        raise ParameterError("replicas must be at least 2")
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    cost = np.asarray(cost, dtype=np.float64)
    diffusion = DiffusionProcess(adjacency, cost=cost, alpha=alpha, k=k)
    diffusion.replay(schedule)
    reference = float(diffusion.costs[walk])

    rng = as_generator(seed)
    samples = np.empty(replicas)
    walks = RandomWalkProcess(adjacency, cost=cost, alpha=alpha, k=k, seed=rng)
    for i in range(replicas):
        walks.positions[:] = np.arange(adjacency.n)
        walks.replay(schedule)
        samples[i] = walks.costs[walk]
    return MomentCheck(
        estimate=float(samples.mean()),
        reference=reference,
        standard_error=float(samples.std(ddof=1) / np.sqrt(replicas)),
    )


def check_proposition_54(
    graph: nx.Graph | Adjacency,
    cost: np.ndarray,
    alpha: float,
    k: int,
    steps: int,
    pair: tuple[int, int],
    replicas: int = 4_000,
    seed: SeedLike = None,
) -> MomentCheck:
    """Prop. 5.4: E[W~(u) W~(v)] = E[W(u) W(v)] over random schedules.

    Each replica draws a fresh schedule, runs the diffusion on it (giving
    ``W(u) W(v)`` exactly, by Lemma 5.3's conditional argument) and *two
    independent* walk systems on the same schedule, taking walk ``u``
    from the first and walk ``v`` from the second.  Given the schedule
    the two tagged walks are independent — the exact setting of Eq. (11)
    in the proposition's proof — and this remains correct on the
    diagonal ``u == v``, where the proposition concerns two distinct
    walks launched from the same node (the Q-chain's ``S_0`` states),
    not one walk squared.  The per-replica product differences then have
    mean 0 under the proposition.
    """
    if replicas < 2:
        raise ParameterError("replicas must be at least 2")
    u, v = pair
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    cost = np.asarray(cost, dtype=np.float64)
    differences = np.empty(replicas)
    for i, rng in enumerate(spawn(seed, replicas)):
        diffusion = DiffusionProcess(adjacency, cost=cost, alpha=alpha, k=k, seed=rng)
        schedule = Schedule()
        for _ in range(steps):
            selection = diffusion.step()
            schedule.append(selection.node, selection.sample)
        walks_a = RandomWalkProcess(adjacency, cost=cost, alpha=alpha, k=k, seed=rng)
        walks_a.replay(schedule)
        walks_b = RandomWalkProcess(adjacency, cost=cost, alpha=alpha, k=k, seed=rng)
        walks_b.replay(schedule)
        w_product = float(diffusion.costs[u] * diffusion.costs[v])
        walk_product = float(walks_a.costs[u] * walks_b.costs[v])
        differences[i] = walk_product - w_product
    return MomentCheck(
        estimate=float(differences.mean()),
        reference=0.0,
        standard_error=float(differences.std(ddof=1) / np.sqrt(replicas)),
    )


def check_lemma_55(
    graph: nx.Graph | Adjacency,
    cost: np.ndarray,
    alpha: float,
    k: int,
    pair: tuple[int, int],
    horizon: int,
    replicas: int = 4_000,
    seed: SeedLike = None,
) -> MomentCheck:
    """Lemma 5.5: the long-run pair-cost moment equals the mu-quadratic form.

    Runs two tagged walks for ``horizon`` steps per replica and compares
    ``E[W~(a)(T) W~(b)(T)]`` with ``sum_{u,v} mu(u,v) xi_u xi_v`` from the
    Lemma 5.7 closed form.  ``horizon`` must exceed the Q-chain's mixing
    time for the reference to be exact up to ``1/n^5``.

    The two tagged walks live in two walk systems driven by the *same*
    selection sequence (walks never interact directly — only through the
    schedule — so this preserves the Q-chain's joint law and also makes
    diagonal pairs ``a == b`` meaningful: two distinct walks launched
    from one node, the chain's ``S_0`` states).
    """
    if replicas < 2:
        raise ParameterError("replicas must be at least 2")
    a, b = pair
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    cost = np.asarray(cost, dtype=np.float64)
    chain = QChain(adjacency, alpha=alpha, k=k)
    mu = chain.stationary_closed_form()
    reference = float(np.sum(mu * np.outer(cost, cost).reshape(-1)))

    samples = np.empty(replicas)
    for i, rng in enumerate(spawn(seed, replicas)):
        child_a, child_b = spawn(rng, 2)
        walks_a = RandomWalkProcess(
            adjacency, cost=cost, alpha=alpha, k=k, seed=child_a
        )
        walks_b = RandomWalkProcess(
            adjacency, cost=cost, alpha=alpha, k=k, seed=child_b
        )
        for _ in range(horizon):
            selection = walks_a.step()
            walks_b.step_with(selection)
        samples[i] = walks_a.costs[a] * walks_b.costs[b]
    return MomentCheck(
        estimate=float(samples.mean()),
        reference=reference,
        standard_error=float(samples.std(ddof=1) / np.sqrt(replicas)),
    )
