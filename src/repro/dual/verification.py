"""Verification of the Section 5 duality chain, at engine scale.

The proof of Theorem 2.2(2) rests on these identities:

* Lemma 5.2:    ``W(T) = xi(T)^T``  per selection sequence  (exact)
* Lemma 5.3:    ``E[W~(u)(t) | chi] = W(u)(t)``          (first moments)
* Prop. 5.4:    ``E[W~(u) W~(v)] = E[W(u) W(v)]``        (second moments)
* Lemma 5.5:    ``E[W~(a)(T) W~(b)(T)] -> sum mu(u,v) xi_u xi_v``

:func:`check_lemma_52` runs the *exact* identity as an engine-scale
conformance harness — primal batch forward, batch diffusion on the
reversed recorded selection stream, every replica checked to machine
precision, under every kernel (see
:func:`repro.engine.dual.run_duality_batch`).  The statistical checks
estimate each side by Monte Carlo and report discrepancies with
standard errors; with ``engine="batch"`` (the default) their replica
loops run as single :class:`~repro.engine.dual.BatchWalks` /
:class:`~repro.engine.dual.BatchDiffusion` batches — the same
quantities at 1–2 orders of magnitude more replicas per second —
while ``engine="loop"`` keeps the original per-replica facade loops
as the correctness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule
from repro.dual.diffusion import DiffusionProcess
from repro.dual.qchain import QChain
from repro.dual.walks import RandomWalkProcess
from repro.engine.dual import (
    BatchDiffusion,
    BatchDualityReport,
    BatchWalks,
    run_duality_batch,
)
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator, spawn
from repro.sim.montecarlo import validate_engine as _validate_engine


@dataclass(frozen=True)
class MomentCheck:
    """Comparison of a Monte-Carlo estimate against a reference value."""

    estimate: float
    reference: float
    standard_error: float

    @property
    def z_score(self) -> float:
        if self.standard_error == 0:
            return 0.0 if self.estimate == self.reference else float("inf")
        return (self.estimate - self.reference) / self.standard_error

    @property
    def consistent(self) -> bool:
        """Within four standard errors plus a float-noise allowance.

        The absolute term matters when the sampled quantity is
        deterministic under the fixed schedule (SE collapses to ~1e-18
        while the estimate carries ~1e-16 rounding noise).
        """
        tolerance = 4.0 * self.standard_error + 1e-9 * max(1.0, abs(self.reference))
        return abs(self.estimate - self.reference) <= tolerance


def check_lemma_52(
    graph: nx.Graph | Adjacency,
    initial_values: np.ndarray,
    alpha: float,
    k: int = 1,
    steps: int = 256,
    replicas: int = 64,
    seed: SeedLike = None,
    kind: str = "node",
    lazy: bool = False,
    backend: str = "auto",
    kernel: str = "auto",
) -> BatchDualityReport:
    """Lemma 5.2 at engine scale: the exact reversed-sequence identity.

    Runs ``replicas`` primal trajectories forward through the batch
    engine (under the requested ``kernel``), records every replica's
    selection stream, replays the reversed streams through one
    :class:`~repro.engine.dual.BatchDiffusion`, and returns the
    per-replica residual report — ``report.verified()`` asserts
    ``max_b max_u |W_b(T) - xi_b(T)| <= 1e-9``.
    """
    return run_duality_batch(
        graph,
        initial_values,
        alpha,
        k=k,
        steps=steps,
        replicas=replicas,
        seed=seed,
        kind=kind,
        lazy=lazy,
        backend=backend,
        kernel=kernel,
    )


def check_lemma_53(
    graph: nx.Graph | Adjacency,
    cost: np.ndarray,
    alpha: float,
    k: int,
    schedule: Schedule,
    walk: int,
    replicas: int = 20_000,
    seed: SeedLike = None,
    engine: str = "batch",
) -> MomentCheck:
    """Lemma 5.3: conditional mean walk cost equals the diffusion cost.

    Fixes ``schedule`` (= ``chi``), replays it through ``replicas``
    independent walk systems, and compares the empirical mean cost of
    ``walk`` with the deterministic diffusion cost ``W(walk)``.  With
    ``engine="batch"`` all walk systems replay as one ``(B, n)``
    position matrix.
    """
    if replicas < 2:
        raise ParameterError("replicas must be at least 2")
    _validate_engine(engine)
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    cost = np.asarray(cost, dtype=np.float64)
    diffusion = DiffusionProcess(adjacency, cost=cost, alpha=alpha, k=k)
    diffusion.replay(schedule)
    reference = float(diffusion.costs[walk])

    if engine == "batch":
        batch = BatchWalks(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas,
            seed=seed,
        )
        batch.replay(schedule)
        samples = batch.costs[:, walk].astype(np.float64)
    else:
        rng = as_generator(seed)
        samples = np.empty(replicas)
        walks = RandomWalkProcess(adjacency, cost=cost, alpha=alpha, k=k, seed=rng)
        for i in range(replicas):
            walks.positions[:] = np.arange(adjacency.n)
            walks.replay(schedule)
            samples[i] = walks.costs[walk]
    return MomentCheck(
        estimate=float(samples.mean()),
        reference=reference,
        standard_error=float(samples.std(ddof=1) / np.sqrt(replicas)),
    )


def check_proposition_54(
    graph: nx.Graph | Adjacency,
    cost: np.ndarray,
    alpha: float,
    k: int,
    steps: int,
    pair: tuple[int, int],
    replicas: int = 4_000,
    seed: SeedLike = None,
    engine: str = "batch",
) -> MomentCheck:
    """Prop. 5.4: E[W~(u) W~(v)] = E[W(u) W(v)] over random schedules.

    Each replica draws a fresh schedule, runs the diffusion on it (giving
    ``W(u) W(v)`` exactly, by Lemma 5.3's conditional argument) and *two
    independent* walk systems on the same schedule, taking walk ``u``
    from the first and walk ``v`` from the second.  Given the schedule
    the two tagged walks are independent — the exact setting of Eq. (11)
    in the proposition's proof — and this remains correct on the
    diagonal ``u == v``, where the proposition concerns two distinct
    walks launched from the same node (the Q-chain's ``S_0`` states),
    not one walk squared.  The per-replica product differences then have
    mean 0 under the proposition.

    With ``engine="batch"`` the per-replica schedules are one recorded
    :class:`~repro.engine.selection.RecordedSelections` stream drawn by
    a free-running :class:`~repro.engine.dual.BatchDiffusion` (whose
    selection draws are the primal block contract), consumed by two
    :class:`~repro.engine.dual.BatchWalks` batches.
    """
    if replicas < 2:
        raise ParameterError("replicas must be at least 2")
    _validate_engine(engine)
    u, v = pair
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    cost = np.asarray(cost, dtype=np.float64)
    if engine == "batch":
        seed_d, seed_a, seed_b = spawn(seed, 3)
        diffusion = BatchDiffusion(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas,
            seed=seed_d,
        )
        diffusion.record_selections()
        diffusion.run(steps)
        selections = diffusion.recorded_selections()
        walks_a = BatchWalks(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas,
            seed=seed_a,
        )
        walks_a.apply_selections(selections)
        walks_b = BatchWalks(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas,
            seed=seed_b,
        )
        walks_b.apply_selections(selections)
        w_costs = diffusion.costs
        differences = (
            walks_a.costs[:, u] * walks_b.costs[:, v]
            - w_costs[:, u] * w_costs[:, v]
        )
    else:
        differences = np.empty(replicas)
        for i, rng in enumerate(spawn(seed, replicas)):
            scalar = DiffusionProcess(
                adjacency, cost=cost, alpha=alpha, k=k, seed=rng
            )
            schedule = Schedule()
            for _ in range(steps):
                selection = scalar.step()
                schedule.append(selection.node, selection.sample)
            walks_a = RandomWalkProcess(
                adjacency, cost=cost, alpha=alpha, k=k, seed=rng
            )
            walks_a.replay(schedule)
            walks_b = RandomWalkProcess(
                adjacency, cost=cost, alpha=alpha, k=k, seed=rng
            )
            walks_b.replay(schedule)
            w_product = float(scalar.costs[u] * scalar.costs[v])
            walk_product = float(walks_a.costs[u] * walks_b.costs[v])
            differences[i] = walk_product - w_product
    return MomentCheck(
        estimate=float(differences.mean()),
        reference=0.0,
        standard_error=float(differences.std(ddof=1) / np.sqrt(replicas)),
    )


def check_coalescence_exact(
    graph: nx.Graph | Adjacency,
    alpha: float = 0.5,
    replicas: int = 2_000,
    seed: SeedLike = None,
    engine: str = "batch",
    max_steps: int = 100_000_000,
) -> MomentCheck:
    """Monte-Carlo coalescence time against the absorbing-chain solve.

    Samples full-coalescence times with the requested Monte-Carlo
    ``engine`` and compares the empirical mean to
    :func:`repro.theory.absorbing.exact_coalescence_time` — the
    analytic backend acting as correctness oracle for the batch dual
    engine (and vice versa).  Only meaningful where the exact solve is
    feasible (:func:`repro.theory.absorbing.exact_coalescence_feasible`).
    """
    if replicas < 2:
        raise ParameterError("replicas must be at least 2")
    _validate_engine(engine)
    from repro.sim.montecarlo import sample_meeting_times
    from repro.theory.absorbing import exact_coalescence_time

    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    reference = exact_coalescence_time(adjacency, alpha=alpha)
    samples = sample_meeting_times(
        adjacency, replicas, seed=seed, alpha=alpha, max_steps=max_steps,
        engine=engine,
    )
    return MomentCheck(
        estimate=float(samples.mean()),
        reference=reference,
        standard_error=float(samples.std(ddof=1) / np.sqrt(replicas)),
    )


def check_lemma_55(
    graph: nx.Graph | Adjacency,
    cost: np.ndarray,
    alpha: float,
    k: int,
    pair: tuple[int, int],
    horizon: int,
    replicas: int = 4_000,
    seed: SeedLike = None,
    engine: str = "batch",
) -> MomentCheck:
    """Lemma 5.5: the long-run pair-cost moment equals the mu-quadratic form.

    Runs two tagged walks for ``horizon`` steps per replica and compares
    ``E[W~(a)(T) W~(b)(T)]`` with ``sum_{u,v} mu(u,v) xi_u xi_v`` from the
    Lemma 5.7 closed form.  ``horizon`` must exceed the Q-chain's mixing
    time for the reference to be exact up to ``1/n^5``.

    The two tagged walks live in two walk systems driven by the *same*
    selection sequence (walks never interact directly — only through the
    schedule — so this preserves the Q-chain's joint law and also makes
    diagonal pairs ``a == b`` meaningful: two distinct walks launched
    from one node, the chain's ``S_0`` states).  With ``engine="batch"``
    the first walk batch free-runs with selection recording on and the
    second consumes the recorded stream.
    """
    if replicas < 2:
        raise ParameterError("replicas must be at least 2")
    _validate_engine(engine)
    a, b = pair
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    cost = np.asarray(cost, dtype=np.float64)
    chain = QChain(adjacency, alpha=alpha, k=k)
    mu = chain.stationary_closed_form()
    reference = float(np.sum(mu * np.outer(cost, cost).reshape(-1)))

    if engine == "batch":
        seed_a, seed_b = spawn(seed, 2)
        walks_a = BatchWalks(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas,
            seed=seed_a,
        )
        walks_a.record_selections()
        walks_a.run(horizon)
        walks_b = BatchWalks(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=replicas,
            seed=seed_b,
        )
        walks_b.apply_selections(walks_a.recorded_selections())
        samples = walks_a.costs[:, a] * walks_b.costs[:, b]
    else:
        samples = np.empty(replicas)
        for i, rng in enumerate(spawn(seed, replicas)):
            child_a, child_b = spawn(rng, 2)
            loop_a = RandomWalkProcess(
                adjacency, cost=cost, alpha=alpha, k=k, seed=child_a
            )
            loop_b = RandomWalkProcess(
                adjacency, cost=cost, alpha=alpha, k=k, seed=child_b
            )
            for _ in range(horizon):
                selection = loop_a.step()
                loop_b.step_with(selection)
            samples[i] = loop_a.costs[a] * loop_b.costs[b]
    return MomentCheck(
        estimate=float(samples.mean()),
        reference=reference,
        standard_error=float(samples.std(ddof=1) / np.sqrt(replicas)),
    )
