"""The Random Walk Process (Section 5.2).

With the Diffusion Process the paper associates ``n`` *correlated* random
walks, one starting on each node.  All walks are driven by the *same*
selection sequence: when the selection at step ``t`` is ``(u, S)``, every
walk currently sitting on ``u`` moves, independently, to a uniform member
of ``S`` with probability ``(1 - alpha)`` and stays put otherwise; walks
elsewhere do not move.  Conditioned on the selection sequence the walks
are independent (the paper uses this in Proposition 5.4), but
unconditionally they are correlated through the shared selections.

The cost of walk ``u`` is ``W~^(u)(t) = xi_{position_u(t)}(0)``; Lemma 5.3
shows its conditional expectation equals the diffusion cost ``W^(u)(t)``,
and Proposition 5.4 lifts this to second moments — both are verified
empirically by the test suite.

Since the dual-engine PR this class is a thin scalar facade over
:class:`repro.engine.dual.BatchWalks` (a single-replica batch): each
non-noop step consumes one ``(n,)`` plane of movement uniforms whose
entries encode both the move/stay coin and the target slot, which is
exactly the ``B = 1`` column of the batch engine's vectorized law.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import (
    SelectionReplayMixin,
    SelectionStep,
    draw_node_selection,
)
from repro.engine.dual import BatchWalks
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike


class RandomWalkProcess(SelectionReplayMixin):
    """``n`` correlated walks driven by shared NodeModel selections.

    Parameters
    ----------
    graph:
        Connected undirected graph (``networkx.Graph`` or pre-frozen
        :class:`Adjacency`, reused as is).
    cost:
        The vector ``xi(0)`` defining walk costs.
    alpha, k:
        Model parameters (the walk law embeds both).
    positions:
        Optional initial positions; defaults to walk ``u`` starting at
        node ``u`` (``q~^(u)(0) = e^(u)``).
    seed:
        Randomness for both standalone selection draws and the walks' own
        movement coins.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        cost: Sequence[float],
        alpha: float,
        k: int = 1,
        positions: Sequence[int] | None = None,
        seed: SeedLike = None,
    ) -> None:
        self._batch = BatchWalks(
            graph, cost=cost, alpha=alpha, k=k, replicas=1,
            positions=positions, seed=seed,
        )
        self.rng = self._batch.rng

    # ------------------------------------------------------------------
    # Shape and state
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> Adjacency:
        return self._batch.adjacency

    @property
    def alpha(self) -> float:
        return self._batch.alpha

    @property
    def k(self) -> int:
        return self._batch.k

    @property
    def n(self) -> int:
        return self._batch.n

    @property
    def t(self) -> int:
        return self._batch.t

    @property
    def cost(self) -> np.ndarray:
        return self._batch.cost

    @property
    def positions(self) -> np.ndarray:
        """Current walk positions (a live, writable view)."""
        return self._batch.positions[0]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_with(self, step: SelectionStep) -> None:
        """Move all walks sitting on ``step.node`` per the shared selection."""
        self._batch.step_with(step)

    def step(self) -> SelectionStep:
        """Draw a fresh NodeModel-law selection, apply it, and return it."""
        selection = draw_node_selection(self.adjacency, self.k, self.rng)
        self.step_with(selection)
        return selection

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def costs(self) -> np.ndarray:
        """Per-walk costs ``W~^(u)(t) = xi_{position_u(t)}(0)``."""
        return self._batch.costs[0]

    def occupancy(self) -> np.ndarray:
        """Number of walks on each node (sums to ``n``)."""
        return self._batch.occupancy()[0]
