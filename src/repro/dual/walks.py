"""The Random Walk Process (Section 5.2).

With the Diffusion Process the paper associates ``n`` *correlated* random
walks, one starting on each node.  All walks are driven by the *same*
selection sequence: when the selection at step ``t`` is ``(u, S)``, every
walk currently sitting on ``u`` moves, independently, to a uniform member
of ``S`` with probability ``(1 - alpha)`` and stays put otherwise; walks
elsewhere do not move.  Conditioned on the selection sequence the walks
are independent (the paper uses this in Proposition 5.4), but
unconditionally they are correlated through the shared selections.

The cost of walk ``u`` is ``W~^(u)(t) = xi_{position_u(t)}(0)``; Lemma 5.3
shows its conditional expectation equals the diffusion cost ``W^(u)(t)``,
and Proposition 5.4 lifts this to second moments — both are verified
empirically by the test suite.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule, SelectionStep
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class RandomWalkProcess:
    """``n`` correlated walks driven by shared NodeModel selections.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    cost:
        The vector ``xi(0)`` defining walk costs.
    alpha, k:
        Model parameters (the walk law embeds both).
    positions:
        Optional initial positions; defaults to walk ``u`` starting at
        node ``u`` (``q~^(u)(0) = e^(u)``).
    seed:
        Randomness for both standalone selection draws and the walks' own
        movement coins.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        cost: Sequence[float],
        alpha: float,
        k: int = 1,
        positions: Sequence[int] | None = None,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        n = self.adjacency.n
        self.cost = np.asarray(cost, dtype=np.float64).reshape(-1)
        if self.cost.shape != (n,):
            raise ParameterError(f"cost must have shape ({n},), got {self.cost.shape}")
        if int(k) != k or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k}")
        k = int(k)
        if k > self.adjacency.d_min:
            raise ParameterError(
                f"k = {k} exceeds the minimum degree {self.adjacency.d_min}"
            )
        self.alpha = float(alpha)
        self.k = k
        if positions is None:
            positions = np.arange(n, dtype=np.int64)
        self.positions = np.asarray(positions, dtype=np.int64).copy()
        if self.positions.shape != (n,):
            raise ParameterError(
                f"positions must have shape ({n},), got {self.positions.shape}"
            )
        if np.any((self.positions < 0) | (self.positions >= n)):
            raise ParameterError("positions must be valid node indices")
        self.rng = as_generator(seed)
        self.t = 0

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.adjacency.n

    def step_with(self, step: SelectionStep) -> None:
        """Move all walks sitting on ``step.node`` per the shared selection."""
        self.t += 1
        if step.is_noop:
            return
        at_node = np.flatnonzero(self.positions == step.node)
        if len(at_node) == 0:
            return
        sample = np.asarray(step.sample, dtype=np.int64)
        moves = self.rng.random(len(at_node)) < (1.0 - self.alpha)
        movers = at_node[moves]
        if len(movers):
            targets = sample[self.rng.integers(len(sample), size=len(movers))]
            self.positions[movers] = targets

    def step(self) -> SelectionStep:
        """Draw a fresh NodeModel-law selection, apply it, and return it."""
        adj = self.adjacency
        node = int(self.rng.integers(adj.n))
        start = adj.offsets[node]
        degree = int(adj.offsets[node + 1] - start)
        if self.k == 1:
            sample: tuple[int, ...] = (
                int(adj.neighbors[start + int(self.rng.integers(degree))]),
            )
        elif self.k == degree:
            sample = tuple(int(v) for v in adj.neighbors[start : start + degree])
        else:
            pool = adj.neighbors[start : start + degree]
            sample = tuple(
                int(v) for v in self.rng.choice(pool, size=self.k, replace=False)
            )
        selection = SelectionStep(node, sample)
        self.step_with(selection)
        return selection

    def replay(self, schedule: Schedule) -> None:
        """Drive the walks through an entire selection sequence."""
        for step in schedule:
            self.step_with(step)

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def costs(self) -> np.ndarray:
        """Per-walk costs ``W~^(u)(t) = xi_{position_u(t)}(0)``."""
        return self.cost[self.positions]

    def occupancy(self) -> np.ndarray:
        """Number of walks on each node (sums to ``n``)."""
        return np.bincount(self.positions, minlength=self.n)
