"""Step matrices of the Averaging and Diffusion Processes.

Equation (4) of the paper defines the diffusion step matrix ``B(t)`` for a
selection ``(u, S)`` with ``|S| = k``:

    B[i, j] = 1            if i = j != u
              alpha        if i = j = u
              (1-alpha)/k  if i in S and j = u
              0            otherwise,

i.e. column ``u`` spreads a ``(1 - alpha)`` fraction of ``u``'s load evenly
over ``S``.  The Averaging Process applies the transpose:
``xi(t) = F(t) xi(t-1)`` with ``F(t) = B'(t)^T`` for the selection used at
step ``t`` (Lemma 5.2).  ``R(t) = B(t) B(t-1) ... B(1)`` (Eq. 5) accumulates
a whole run.

These dense matrices exist for exactness, not speed: the simulators use
O(k) sparse updates; the matrices back the duality *proofs-by-execution*
and the worked examples of Figures 1 and 4.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.schedule import Schedule, SelectionStep
from repro.exceptions import ParameterError


def diffusion_step_matrix(n: int, step: SelectionStep, alpha: float) -> np.ndarray:
    """The matrix ``B`` of Eq. (4) for selection ``step`` on ``n`` nodes.

    A lazy no-op step yields the identity.
    """
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    if not 0 <= step.node < n:
        raise ParameterError(f"node {step.node} out of range for n = {n}")
    matrix = np.eye(n)
    if step.is_noop:
        return matrix
    k = len(step.sample)
    u = step.node
    matrix[u, u] = alpha
    share = (1.0 - alpha) / k
    for v in step.sample:
        if not 0 <= v < n:
            raise ParameterError(f"sampled node {v} out of range for n = {n}")
        matrix[v, u] += share
    return matrix


def averaging_step_matrix(n: int, step: SelectionStep, alpha: float) -> np.ndarray:
    """The matrix ``F = B^T`` applying one Averaging Process step.

    Row ``u`` becomes ``alpha`` on the diagonal and ``(1-alpha)/k`` on the
    sampled neighbours; all other rows are identity — exactly the
    unilateral update of Definitions 2.1/2.3.
    """
    return diffusion_step_matrix(n, step, alpha).T


def product_matrix(
    n: int, steps: Iterable[SelectionStep] | Schedule, alpha: float
) -> np.ndarray:
    """``R = B(t_last) ... B(t_first)`` over the given steps (Eq. 5).

    Steps are consumed in iteration order as times ``1..T``, and the
    product is accumulated as ``R <- B R``, matching
    ``R(t) = B(t) R(t-1)``.
    """
    result = np.eye(n)
    for step in steps:
        result = diffusion_step_matrix(n, step, alpha) @ result
    return result


def averaging_product_matrix(
    n: int, steps: Iterable[SelectionStep] | Schedule, alpha: float
) -> np.ndarray:
    """``F(T) ... F(1)`` mapping ``xi(0)`` to ``xi(T)`` in one matrix."""
    result = np.eye(n)
    for step in steps:
        result = averaging_step_matrix(n, step, alpha) @ result
    return result


def is_stochastic(matrix: np.ndarray, axis: int = 1, atol: float = 1e-12) -> bool:
    """Whether ``matrix`` is (row- by default) stochastic.

    The paper stresses that the update matrices are stochastic but *not*
    doubly stochastic (Section 1): rows of ``F`` sum to one, columns
    generally do not.
    """
    if np.any(matrix < -atol):
        return False
    sums = matrix.sum(axis=axis)
    return bool(np.allclose(sums, 1.0, atol=atol))
