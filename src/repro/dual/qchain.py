"""The two-walk Q-chain (Section 5.3) and Lemma 5.7's stationary law.

Two of the correlated random walks of Section 5.2 form a Markov chain on
``V x V`` with transition matrix ``Q``.  On a ``d``-regular graph the
paper computes ``Q``'s entries case by case (Eqs. 14–21) and proves
(Lemma 5.7) that its unique stationary distribution takes only *three*
values, indexed by the graph distance between the two walks:

    mu_0  on S_0 = {(u, u)}                 mu_0 = 2 k (d - 1) * ell
    mu_1  on S_1 = {(u, v) : {u,v} in E}    mu_1 = (d - 1) * gamma * ell
    mu_+  on S_+ = {dis(u, v) >= 2}         mu_+ = (d gamma - 2 alpha k) * ell

with ``gamma = k (1 + alpha) - (1 - alpha)`` and
``ell = 1 / (n (n (d gamma - 2 alpha k) + 2 (1 - alpha) (d - k)))``.

This module builds ``Q`` two independent ways — from the paper's case
formulas and by exact enumeration of the model's joint one-step law — and
solves for the stationary distribution numerically, so the closed form can
be validated to machine precision (it is; see ``tests/test_qchain.py``).
Note the chain is *not* reversible for ``k > 1`` (the paper's example:
``S_0 -> S_+`` transitions exist but not their reverses), so detailed
balance is useless here and the numeric solver works with ``mu Q = mu``
directly.
"""

from __future__ import annotations

import itertools
import math
from typing import Union

import networkx as nx
import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.properties import require_regular

GraphLike = Union[nx.Graph, Adjacency]


def mu_closed_form(n: int, d: int, k: int, alpha: float) -> tuple[float, float, float]:
    """Lemma 5.7's ``(mu_0, mu_1, mu_+)`` for a ``d``-regular graph.

    The normalisation constant is the Lemma 5.7 form of ``ell``; it
    satisfies Eq. (56), ``n mu_0 + n d mu_1 + n (n - d - 1) mu_+ = 1``,
    exactly (verified symbolically in the tests).
    """
    if n < 2 or d < 1 or not 1 <= k <= d:
        raise ParameterError(f"invalid (n, d, k) = ({n}, {d}, {k})")
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    gamma = k * (1.0 + alpha) - (1.0 - alpha)
    ell = 1.0 / (n * (n * (d * gamma - 2.0 * alpha * k) + 2.0 * (1.0 - alpha) * (d - k)))
    mu0 = 2.0 * k * (d - 1.0) * ell
    mu1 = (d - 1.0) * gamma * ell
    mu_plus = (d * gamma - 2.0 * alpha * k) * ell
    return mu0, mu1, mu_plus


class QChain:
    """Transition structure of two correlated walks on a regular graph.

    States are ordered pairs ``(x, y)`` flattened as ``x * n + y``.
    """

    def __init__(self, graph: GraphLike, alpha: float, k: int = 1) -> None:
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.d = require_regular(self.adjacency, context="Q-chain, Section 5.3")
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        if int(k) != k or not 1 <= k <= self.d:
            raise ParameterError(f"k must be in [1, {self.d}], got {k}")
        self.alpha = float(alpha)
        self.k = int(k)

    @property
    def n(self) -> int:
        return self.adjacency.n

    def state_index(self, x: int, y: int) -> int:
        """Flat index of state ``(x, y)``."""
        return x * self.n + y

    # ------------------------------------------------------------------
    # Construction from the paper's case formulas (Eqs. 14-21)
    # ------------------------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """``Q`` from the closed-form cases of Section 5.3.

        Uses ``pi_x = 1/n`` (uniform node selection on a regular graph).
        """
        n, d, k, alpha = self.n, self.d, self.k, self.alpha
        size = n * n
        q = np.zeros((size, size))
        pi = 1.0 / n
        adj = self.adjacency

        for x in range(n):
            neighbours = adj.neighbors_of(x)
            # Case 1: both walks at x.
            src = self.state_index(x, x)
            # Eq. (18): self loop.
            q[src, src] += alpha**2 * pi + (1.0 - pi)
            for u in neighbours:
                # Eq. (15): both move to the same neighbour u.
                q[src, self.state_index(u, u)] += (1.0 - alpha) ** 2 * pi / (k * d)
                # Eqs. (16)-(17): exactly one walk moves.
                q[src, self.state_index(x, u)] += alpha * (1.0 - alpha) * pi / d
                q[src, self.state_index(u, x)] += alpha * (1.0 - alpha) * pi / d
            if k > 1:
                # Eq. (14): both move, to distinct neighbours u != v.
                weight = (1.0 - alpha) ** 2 * pi * (k - 1.0) / (k * d * (d - 1.0))
                for u in neighbours:
                    for v in neighbours:
                        if u != v:
                            q[src, self.state_index(u, v)] += weight

            # Case 2: walks at distinct nodes x != y.
            for y in range(n):
                if y == x:
                    continue
                src = self.state_index(x, y)
                # Eq. (21): self loop.
                q[src, src] += (1.0 - 2.0 * pi) + 2.0 * pi * alpha
                # Eq. (20): first walk moves off x.
                for u in neighbours:
                    q[src, self.state_index(u, y)] += (1.0 - alpha) * pi / d
                # Eq. (19): second walk moves off y.
                for v in adj.neighbors_of(y):
                    q[src, self.state_index(x, v)] += (1.0 - alpha) * pi / d
        return q

    # ------------------------------------------------------------------
    # Construction by brute-force enumeration of the one-step law
    # ------------------------------------------------------------------
    def transition_matrix_enumerated(self) -> np.ndarray:
        """``Q`` by enumerating every selection ``(w, S)`` and walk outcome.

        Independent of the paper's case analysis; exponential in ``k`` via
        ``C(d, k)`` subsets, so intended for the small validation graphs.
        """
        n, d, k, alpha = self.n, self.d, self.k, self.alpha
        size = n * n
        q = np.zeros((size, size))
        adj = self.adjacency
        subsets_cache = {
            w: list(itertools.combinations(adj.neighbors_of(w).tolist(), k))
            for w in range(n)
        }
        node_prob = 1.0 / n

        for x in range(n):
            for y in range(n):
                src = self.state_index(x, y)
                for w in range(n):
                    subsets = subsets_cache[w]
                    subset_prob = node_prob / len(subsets)
                    if x != w and y != w:
                        q[src, src] += node_prob
                        continue
                    for subset in subsets:
                        move_prob = (1.0 - alpha) / k
                        # Outcomes for walk 1.
                        outcomes_x = (
                            [(x, alpha)] + [(v, move_prob) for v in subset]
                            if x == w
                            else [(x, 1.0)]
                        )
                        outcomes_y = (
                            [(y, alpha)] + [(v, move_prob) for v in subset]
                            if y == w
                            else [(y, 1.0)]
                        )
                        for u, p_u in outcomes_x:
                            for v, p_v in outcomes_y:
                                q[src, self.state_index(u, v)] += (
                                    subset_prob * p_u * p_v
                                )
        return q

    # ------------------------------------------------------------------
    # Stationary distributions
    # ------------------------------------------------------------------
    def stationary_numeric(self) -> np.ndarray:
        """Solve ``mu Q = mu, sum(mu) = 1`` numerically (ground truth)."""
        return stationary_distribution_numeric(self.transition_matrix())

    def stationary_closed_form(self) -> np.ndarray:
        """Lemma 5.7's stationary vector expanded over all ``n^2`` states."""
        mu0, mu1, mu_plus = mu_closed_form(self.n, self.d, self.k, self.alpha)
        graph = self.adjacency.to_networkx()
        mu = np.full(self.n * self.n, mu_plus)
        for x in range(self.n):
            mu[self.state_index(x, x)] = mu0
        for x, y in graph.edges():
            mu[self.state_index(x, y)] = mu1
            mu[self.state_index(y, x)] = mu1
        return mu

    def is_reversible(self, atol: float = 1e-12) -> bool:
        """Whether detailed balance ``mu_i Q_ij = mu_j Q_ji`` holds.

        The paper notes the chain is not reversible for ``k > 1``; for
        ``k = 1`` on vertex-transitive graphs it can be.
        """
        q = self.transition_matrix()
        mu = stationary_distribution_numeric(q)
        flow = mu[:, None] * q
        return bool(np.allclose(flow, flow.T, atol=atol))


def stationary_distribution_numeric(q: np.ndarray, atol: float = 1e-10) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix ``q``.

    Solves the linear system ``mu (Q - I) = 0`` with the normalisation
    ``sum(mu) = 1`` appended, which is robust even for non-reversible
    chains.  Raises if ``q`` is not row-stochastic.
    """
    size = q.shape[0]
    if q.shape != (size, size):
        raise ParameterError(f"q must be square, got {q.shape}")
    if not np.allclose(q.sum(axis=1), 1.0, atol=atol) or np.any(q < -atol):
        raise ParameterError("q is not row-stochastic")
    # (Q^T - I) mu^T = 0 with sum constraint: overdetermined least squares.
    a = np.vstack([q.T - np.eye(size), np.ones((1, size))])
    b = np.zeros(size + 1)
    b[-1] = 1.0
    mu, *_ = np.linalg.lstsq(a, b, rcond=None)
    if np.any(mu < -1e-8):
        raise ParameterError("numeric stationary distribution has negative mass")
    mu = np.clip(mu, 0.0, None)
    return mu / mu.sum()
