"""Dual machinery of Section 5.

* :mod:`repro.dual.matrices` — the step matrices ``B(t)`` (Eq. 4) and
  ``F(t) = B(t)^T`` and their products ``R(t)`` (Eq. 5),
* :mod:`repro.dual.diffusion` — the multi-commodity Diffusion Process,
* :mod:`repro.dual.walks` — the ``n`` correlated random walks driven by the
  same transition matrices (Section 5.2),
* :mod:`repro.dual.qchain` — the two-walk Q-chain (Section 5.3) and the
  closed-form stationary distribution of Lemma 5.7,
* :mod:`repro.dual.duality` — the executable coupling of Proposition 5.1 /
  Lemma 5.2 plus the worked examples of Figure 1 and Figure 4.

The process classes are thin single-replica facades over the vectorized
dual batch engine (:mod:`repro.engine.dual`), which advances ``B``
replicas of the diffusion loads, the correlated walks or the coalescing
walks per round and drives the shared-schedule duality at engine scale
(:func:`repro.dual.check_lemma_52`).
"""

from repro.dual.coalescing import CoalescingWalks, meeting_time_estimate
from repro.dual.diffusion import DiffusionProcess
from repro.dual.duality import (
    DualityTrace,
    figure1_trace,
    figure4_trace,
    run_coupled,
    verify_duality,
)
from repro.dual.matrices import (
    averaging_step_matrix,
    diffusion_step_matrix,
    product_matrix,
)
from repro.dual.qchain import (
    QChain,
    mu_closed_form,
    stationary_distribution_numeric,
)
from repro.dual.verification import (
    MomentCheck,
    check_coalescence_exact,
    check_lemma_52,
    check_lemma_53,
    check_lemma_55,
    check_proposition_54,
)
from repro.dual.walks import RandomWalkProcess

__all__ = [
    "CoalescingWalks",
    "DiffusionProcess",
    "DualityTrace",
    "MomentCheck",
    "QChain",
    "RandomWalkProcess",
    "averaging_step_matrix",
    "check_coalescence_exact",
    "check_lemma_52",
    "check_lemma_53",
    "check_lemma_55",
    "check_proposition_54",
    "diffusion_step_matrix",
    "figure1_trace",
    "meeting_time_estimate",
    "figure4_trace",
    "mu_closed_form",
    "product_matrix",
    "run_coupled",
    "stationary_distribution_numeric",
    "verify_duality",
]
