"""Executable duality (Proposition 5.1 / Lemma 5.2) and the worked figures.

Lemma 5.2 is an exact statement: run the Averaging Process forward on a
selection sequence ``chi`` and the Diffusion Process on the *reversed*
sequence ``chi^R`` (with cost ``c = xi(0)^T`` and identity initial loads),
and ``W(T) = xi(T)^T`` holds deterministically.  :func:`run_coupled`
performs the coupling and :func:`verify_duality` checks the identity to
machine precision.

:func:`figure1_trace` and :func:`figure4_trace` regenerate the paper's two
worked examples (triangle graph, ``xi(0) = [6, 8, 9]``, ``alpha = 1/2``,
``k = 1`` resp. ``k = 2``) including every intermediate matrix, so the
benchmark harness can print the exact numbers shown in the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.node_model import NodeModel
from repro.core.schedule import Schedule, SelectionStep
from repro.dual.diffusion import DiffusionProcess
from repro.dual.matrices import averaging_step_matrix, product_matrix
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike


@dataclass(frozen=True)
class DualityTrace:
    """Everything produced by one coupled run.

    ``xi`` has shape ``(T+1, n)`` (states of the Averaging Process),
    ``w_final`` is the diffusion cost vector ``W(T)``, ``r_final`` the
    accumulated product ``R(T)`` of the reversed run, and ``schedule`` the
    forward selection sequence ``chi``.
    """

    xi: np.ndarray
    w_final: np.ndarray
    r_final: np.ndarray
    schedule: Schedule

    @property
    def max_error(self) -> float:
        """``max |W(T) - xi(T)|`` — zero up to floating point by Lemma 5.2."""
        return float(np.abs(self.w_final - self.xi[-1]).max())


def run_coupled(
    graph: nx.Graph | Adjacency,
    initial_values: Sequence[float],
    alpha: float,
    k: int = 1,
    steps: int = 10,
    seed: SeedLike = None,
    schedule: Schedule | None = None,
) -> DualityTrace:
    """Couple an Averaging run with its time-reversed Diffusion run.

    When ``schedule`` is given it is replayed deterministically; otherwise
    the NodeModel draws ``steps`` fresh selections (recorded).
    """
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    initial = np.asarray(initial_values, dtype=np.float64)

    process = NodeModel(
        adjacency, initial, alpha=alpha, k=k, seed=seed, record_schedule=True
    )
    states = [process.values.copy()]
    if schedule is None:
        for _ in range(steps):
            process.step()
            states.append(process.values.copy())
        schedule = process.schedule
    else:
        for step in schedule:
            process.replay(Schedule([step]))
            states.append(process.values.copy())

    assert schedule is not None
    diffusion = DiffusionProcess(adjacency, cost=initial, alpha=alpha, k=k)
    diffusion.replay(schedule.reversed())
    r_final = product_matrix(adjacency.n, schedule.reversed(), alpha)

    return DualityTrace(
        xi=np.vstack(states),
        w_final=diffusion.costs.copy(),
        r_final=r_final,
        schedule=schedule,
    )


def verify_duality(trace: DualityTrace, atol: float = 1e-9) -> bool:
    """Whether ``W(T) == xi(T)^T`` within ``atol`` (Lemma 5.2)."""
    return trace.max_error <= atol


# ----------------------------------------------------------------------
# Worked examples: Figure 1 (k = 1) and Figure 4 (k = 2)
# ----------------------------------------------------------------------
def _triangle() -> nx.Graph:
    """The 3-node graph of the figures (u1, u2, u3 pairwise adjacent)."""
    return nx.complete_graph(3)


@dataclass(frozen=True)
class FigureTrace:
    """A worked figure: states, step matrices, diffusion products, costs.

    All entries are exact rationals rendered as floats; ``expected_xi``
    holds the paper's printed values for cross-checking.
    """

    trace: DualityTrace
    f_matrices: list[np.ndarray]
    expected_xi: np.ndarray


def _figure_trace(k: int, schedule_pairs: list[tuple[int, tuple[int, ...]]],
                  expected_rows: list[list[Fraction]]) -> FigureTrace:
    graph = _triangle()
    initial = np.array([6.0, 8.0, 9.0])
    schedule = Schedule.from_pairs(schedule_pairs)
    trace = run_coupled(graph, initial, alpha=0.5, k=k, schedule=schedule)
    f_matrices = [
        averaging_step_matrix(3, step, alpha=0.5) for step in schedule
    ]
    expected = np.array([[float(x) for x in row] for row in expected_rows])
    return FigureTrace(trace=trace, f_matrices=f_matrices, expected_xi=expected)


def figure1_trace() -> FigureTrace:
    """Figure 1: ``alpha = 1/2, k = 1``.

    Step 1: ``u1`` averages with ``u2``; step 2: ``u2`` averages with
    ``u1``.  The paper reports ``xi(1) = [7, 8, 9]`` and
    ``xi(2) = W(2) = [7, 15/2, 9]``.
    """
    return _figure_trace(
        k=1,
        schedule_pairs=[(0, (1,)), (1, (0,))],
        expected_rows=[
            [Fraction(6), Fraction(8), Fraction(9)],
            [Fraction(7), Fraction(8), Fraction(9)],
            [Fraction(7), Fraction(15, 2), Fraction(9)],
        ],
    )


def figure4_trace() -> FigureTrace:
    """Figure 4 (Appendix F): ``alpha = 1/2, k = 2``.

    Step 1: ``u1`` averages with ``{u2, u3}``; step 2: ``u2`` averages with
    ``{u1, u3}``.  The paper reports ``xi(1) = [29/4, 8, 9]`` and
    ``xi(2) = W(2) = [29/4, 129/16, 9]``.
    """
    return _figure_trace(
        k=2,
        schedule_pairs=[(0, (1, 2)), (1, (0, 2))],
        expected_rows=[
            [Fraction(6), Fraction(8), Fraction(9)],
            [Fraction(29, 4), Fraction(8), Fraction(9)],
            [Fraction(29, 4), Fraction(129, 16), Fraction(9)],
        ],
    )
