"""The Diffusion Process (Section 5.1).

``n`` commodities start with unit load on their home nodes (load matrix
``Q(0) = I``); each step a node ``u`` and a ``k``-sample ``S`` of its
neighbours are selected and, *for every commodity*, a ``(1 - alpha)``
fraction of the load at ``u`` is moved in equal parts onto ``S``:

    q(t) = B(t) q(t-1),        W(t) = c q(t) = c R(t) q(0),

with ``B(t)`` from Eq. (4) and cost vector ``c = xi(0)^T``.  Proposition
5.1 states that ``W(T)`` run on the *reversed* selection sequence has the
same distribution as ``xi(T)`` — and Lemma 5.2 makes this an exact per-
sequence identity, which :mod:`repro.dual.duality` verifies to machine
precision.

Since the dual-engine PR this class is a thin scalar facade over
:class:`repro.engine.dual.BatchDiffusion` — a single-replica batch —
so the diffusion runs through the same vectorized pipeline (shared
:class:`~repro.engine.backend.SamplingBackend`, reused padded
neighbour tables and content hashes of a pre-built
:class:`~repro.graphs.adjacency.Adjacency`) as everything else, and
``B``-replica dual runs are the same code with ``replicas > 1``.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import (
    SelectionReplayMixin,
    SelectionStep,
    draw_node_selection,
)
from repro.engine.dual import BatchDiffusion
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike


class DiffusionProcess(SelectionReplayMixin):
    """Multi-commodity load diffusion dual to the NodeModel.

    Parameters
    ----------
    graph:
        Connected undirected graph (``networkx.Graph`` or pre-frozen
        :class:`Adjacency`, reused as is).
    cost:
        Cost row vector ``c`` (Proposition 5.1 uses ``c = xi(0)^T``).
    alpha, k:
        Model parameters, matching the Averaging Process being dualised.
    loads:
        Initial load matrix of shape ``(n, r)`` — column ``j`` is commodity
        ``j``'s load vector ``q^(j)(0)``.  Defaults to the identity
        (one unit of commodity ``u`` on node ``u``).
    seed:
        Randomness for standalone (non-replay) stepping.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        cost: Sequence[float],
        alpha: float,
        k: int = 1,
        loads: np.ndarray | None = None,
        seed: SeedLike = None,
    ) -> None:
        if loads is not None:
            loads = np.asarray(loads, dtype=np.float64)
        self._batch = BatchDiffusion(
            graph, cost=cost, alpha=alpha, k=k, replicas=1, loads=loads,
            seed=seed,
        )
        self.rng = self._batch.rng

    # ------------------------------------------------------------------
    # Shape and state
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> Adjacency:
        return self._batch.adjacency

    @property
    def alpha(self) -> float:
        return self._batch.alpha

    @property
    def k(self) -> int:
        return self._batch.k

    @property
    def n(self) -> int:
        return self._batch.n

    @property
    def t(self) -> int:
        return self._batch.t

    @property
    def num_commodities(self) -> int:
        return self._batch.num_commodities

    @property
    def cost(self) -> np.ndarray:
        return self._batch.cost

    @property
    def loads(self) -> np.ndarray:
        """The ``(n, r)`` load matrix ``q(t)`` (a live view)."""
        return self._batch.loads[0]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_with(self, step: SelectionStep) -> None:
        """Apply one diffusion step for the given selection ``(u, S)``.

        Equivalent to ``loads <- B loads`` with ``B`` from Eq. (4), but in
        O(k * r) instead of O(n^2 * r).
        """
        self._batch.step_with(step)

    def step(self) -> SelectionStep:
        """Draw a fresh NodeModel-law selection, apply it, and return it."""
        selection = draw_node_selection(self.adjacency, self.k, self.rng)
        self.step_with(selection)
        return selection

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def costs(self) -> np.ndarray:
        """Cost vector ``W(t) = c q(t)``, one entry per commodity."""
        return self._batch.costs[0]

    def commodity_load(self, commodity: int) -> np.ndarray:
        """Load vector ``q^(commodity)(t)`` (a copy)."""
        return self._batch.loads[0, :, commodity].copy()

    def total_mass(self) -> np.ndarray:
        """Per-commodity total load — invariant 1 for unit commodities.

        Each ``B(t)`` is column-stochastic on column ``u`` (mass moves, it
        is never created or destroyed), so this is conserved exactly.
        """
        return self._batch.total_mass()[0]
