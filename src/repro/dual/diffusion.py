"""The Diffusion Process (Section 5.1).

``n`` commodities start with unit load on their home nodes (load matrix
``Q(0) = I``); each step a node ``u`` and a ``k``-sample ``S`` of its
neighbours are selected and, *for every commodity*, a ``(1 - alpha)``
fraction of the load at ``u`` is moved in equal parts onto ``S``:

    q(t) = B(t) q(t-1),        W(t) = c q(t) = c R(t) q(0),

with ``B(t)`` from Eq. (4) and cost vector ``c = xi(0)^T``.  Proposition
5.1 states that ``W(T)`` run on the *reversed* selection sequence has the
same distribution as ``xi(T)`` — and Lemma 5.2 makes this an exact per-
sequence identity, which :mod:`repro.dual.duality` verifies to machine
precision.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule, SelectionStep
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class DiffusionProcess:
    """Multi-commodity load diffusion dual to the NodeModel.

    Parameters
    ----------
    graph:
        Connected undirected graph.
    cost:
        Cost row vector ``c`` (Proposition 5.1 uses ``c = xi(0)^T``).
    alpha, k:
        Model parameters, matching the Averaging Process being dualised.
    loads:
        Initial load matrix of shape ``(n, r)`` — column ``j`` is commodity
        ``j``'s load vector ``q^(j)(0)``.  Defaults to the identity
        (one unit of commodity ``u`` on node ``u``).
    seed:
        Randomness for standalone (non-replay) stepping.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        cost: Sequence[float],
        alpha: float,
        k: int = 1,
        loads: np.ndarray | None = None,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        n = self.adjacency.n
        self.cost = np.asarray(cost, dtype=np.float64).reshape(-1)
        if self.cost.shape != (n,):
            raise ParameterError(f"cost must have shape ({n},), got {self.cost.shape}")
        if int(k) != k or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k}")
        k = int(k)
        if k > self.adjacency.d_min:
            raise ParameterError(
                f"k = {k} exceeds the minimum degree {self.adjacency.d_min}"
            )
        self.alpha = float(alpha)
        self.k = k
        if loads is None:
            loads = np.eye(n)
        loads = np.asarray(loads, dtype=np.float64).copy()
        if loads.ndim == 1:
            loads = loads[:, None]
        if loads.shape[0] != n:
            raise ParameterError(
                f"loads must have {n} rows, got shape {loads.shape}"
            )
        self.loads = loads
        self.rng = as_generator(seed)
        self.t = 0

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def num_commodities(self) -> int:
        return self.loads.shape[1]

    def step_with(self, step: SelectionStep) -> None:
        """Apply one diffusion step for the given selection ``(u, S)``.

        Equivalent to ``loads <- B loads`` with ``B`` from Eq. (4), but in
        O(k * r) instead of O(n^2 * r).
        """
        self.t += 1
        if step.is_noop:
            return
        u = step.node
        moving = (1.0 - self.alpha) * self.loads[u]
        share = moving / len(step.sample)
        self.loads[u] -= moving
        for v in step.sample:
            self.loads[v] += share

    def step(self) -> SelectionStep:
        """Draw a fresh NodeModel-law selection, apply it, and return it."""
        adj = self.adjacency
        node = int(self.rng.integers(adj.n))
        start = adj.offsets[node]
        degree = int(adj.offsets[node + 1] - start)
        if self.k == 1:
            sample: tuple[int, ...] = (
                int(adj.neighbors[start + int(self.rng.integers(degree))]),
            )
        elif self.k == degree:
            sample = tuple(int(v) for v in adj.neighbors[start : start + degree])
        else:
            pool = adj.neighbors[start : start + degree]
            sample = tuple(
                int(v) for v in self.rng.choice(pool, size=self.k, replace=False)
            )
        selection = SelectionStep(node, sample)
        self.step_with(selection)
        return selection

    def replay(self, schedule: Schedule) -> None:
        """Apply an entire selection sequence in order."""
        for step in schedule:
            self.step_with(step)

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def costs(self) -> np.ndarray:
        """Cost vector ``W(t) = c q(t)``, one entry per commodity."""
        return self.cost @ self.loads

    def commodity_load(self, commodity: int) -> np.ndarray:
        """Load vector ``q^(commodity)(t)`` (a copy)."""
        return self.loads[:, commodity].copy()

    def total_mass(self) -> np.ndarray:
        """Per-commodity total load — invariant 1 for unit commodities.

        Each ``B(t)`` is column-stochastic on column ``u`` (mass moves, it
        is never created or destroyed), so this is conserved exactly.
        """
        return self.loads.sum(axis=0)
