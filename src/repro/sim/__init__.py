"""Monte-Carlo harness: seeded replication, estimators, sweeps.

The variance experiments need i.i.d. samples of the random convergence
value ``F``; the convergence-time experiments need i.i.d. samples of
``T_eps``.  :mod:`repro.sim.montecarlo` provides both with reproducible
seed fan-out, and :mod:`repro.sim.results` collects printed rows so CLI,
benchmarks and EXPERIMENTS.md all render the same tables.
"""

from repro.sim.montecarlo import (
    MomentEstimate,
    estimate_moments,
    replicate,
    sample_f_values,
    sample_meeting_times,
    sample_t_eps,
)
from repro.sim.results import ResultTable
from repro.sim.sweep import grid, sweep

__all__ = [
    "MomentEstimate",
    "ResultTable",
    "estimate_moments",
    "grid",
    "replicate",
    "sample_f_values",
    "sample_meeting_times",
    "sample_t_eps",
    "sweep",
]
