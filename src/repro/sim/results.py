"""Result tables: the single rendering path for experiments.

Every experiment produces a :class:`ResultTable`; the CLI prints it, the
benchmark harness prints it, and EXPERIMENTS.md embeds it — one format,
no drift.  Cells hold raw Python values; formatting is applied at render
time (floats in engineering-friendly ``%.4g``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of experiment rows."""

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"table {self.title!r}: expected {len(self.columns)} values "
                f"(columns {list(self.columns)}), got {len(values)}"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """Extract one column by name."""
        columns = list(self.columns)
        if name not in columns:
            raise ValueError(
                f"table {self.title!r} has no column {name!r}; "
                f"available columns: {', '.join(map(repr, columns))}"
            )
        index = columns.index(name)
        return [row[index] for row in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Fixed-width text rendering."""
        header = [str(c) for c in self.columns]
        body = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        header = "| " + " | ".join(str(c) for c in self.columns) + " |"
        rule = "|" + "|".join("---" for _ in self.columns) + "|"
        lines = [f"**{self.title}**", "", header, rule]
        for row in self.rows:
            lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n_note: {note}_")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-ready dict; inverse of :meth:`from_payload`."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ResultTable":
        """Rebuild a table from :meth:`to_payload` output."""
        return cls(
            title=payload["title"],
            columns=list(payload["columns"]),
            rows=[list(row) for row in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )

    def to_json(self) -> str:
        """JSON serialisation for archival."""
        return json.dumps(self.to_payload(), default=str, indent=2)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
