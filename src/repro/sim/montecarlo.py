"""Replicated simulation and moment estimation.

``sample_f_values`` draws i.i.d. realisations of the convergence value
``F`` (one full run to consensus per replica); ``sample_t_eps`` draws
realisations of the convergence time.  Both spawn independent child RNGs
from a single experiment seed, so results are reproducible and replicas
are statistically independent.  ``estimate_moments`` turns a sample into
point estimates with bootstrap confidence intervals — the variance CI is
what EXP-T222 compares against the Proposition 5.8 envelope.

Both samplers accept ``engine="batch"`` (the default) to route the
replica budget through :mod:`repro.engine`, which simulates the whole
batch as one vectorized ``(B, n)`` matrix — 1–2 orders of magnitude
faster per replica.  ``engine="loop"`` keeps the original one-process-
per-replica path, which remains the correctness oracle; the batch path
silently falls back to it when ``make_process`` builds something the
engine cannot describe (a custom process subclass, or per-replica
variation beyond the seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.base import AveragingProcess
from repro.core.convergence import measure_t_eps, run_to_consensus
from repro.engine.kernels import validate_kernel
from repro.exceptions import ParameterError
from repro.rng import SeedLike, as_generator, spawn


def validate_engine(engine: str, allow_exact: bool = False) -> str:
    """Check an ``engine=`` selection.

    The single home of the validation every engine-switchable sampler
    and verification check shares.  ``"batch"`` and ``"loop"`` are the
    Monte-Carlo engines; samplers with an analytic backend (currently
    :func:`sample_meeting_times`) additionally accept ``"exact"`` and
    pass ``allow_exact=True``.
    """
    choices = ("batch", "loop", "exact") if allow_exact else ("batch", "loop")
    if engine not in choices:
        raise ParameterError(
            f"engine must be one of {', '.join(map(repr, choices))}, "
            f"got {engine!r}"
        )
    return engine


def replicate(
    make_process: Callable[[np.random.Generator], AveragingProcess],
    run_one: Callable[[AveragingProcess], float],
    replicas: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Run ``replicas`` independent simulations; return their statistics.

    ``make_process`` receives a fresh child generator per replica;
    ``run_one`` maps a process to a scalar outcome.
    """
    if replicas < 1:
        raise ParameterError(f"replicas must be positive, got {replicas}")
    outcomes = np.empty(replicas)
    for i, rng in enumerate(spawn(seed, replicas)):
        outcomes[i] = run_one(make_process(rng))
    return outcomes


def _derive_spec(
    make_process: Callable[[np.random.Generator], AveragingProcess],
    seed: SeedLike,
):
    """Derive a batch :class:`~repro.engine.driver.EngineSpec` or ``None``.

    The factory is probed twice with distinct child generators; if the
    two processes disagree on anything but their seed (different initial
    vectors, graphs or parameters — e.g. randomised per-replica starts),
    the configuration is not batchable and the caller falls back to the
    loop engine.
    """
    from repro.engine.driver import EngineSpec

    probe_a, probe_b = (make_process(rng) for rng in spawn(seed, 2))
    try:
        spec_a = EngineSpec.from_process(probe_a)
        spec_b = EngineSpec.from_process(probe_b)
    except ParameterError:
        return None
    return spec_a if spec_a == spec_b else None


def _resolve_engine(
    make_process: Callable[[np.random.Generator], AveragingProcess],
    seed: SeedLike,
    engine: str,
    cache_dir: Optional[str],
    kernel: str = "auto",
    threads: Optional[int] = None,
):
    """Validate ``engine``/``kernel`` and resolve the batch route, if any.

    Returns ``(spec, cache)`` when the batch engine applies, or
    ``(None, None)`` when the loop engine was requested or the factory
    is not batchable.  ``kernel`` selects the stepping kernel of the
    batch engine (:mod:`repro.engine.kernels`) and ``threads`` the
    thread budget of the threaded kernels; the loop engine ignores
    both.
    """
    validate_engine(engine)
    validate_kernel(kernel)
    if engine != "batch":
        return None, None
    spec = _derive_spec(make_process, seed)
    if spec is None:
        return None, None
    if kernel != spec.kernel or threads != spec.threads:
        from dataclasses import replace

        spec = replace(spec, kernel=kernel, threads=threads)
    from repro.engine.cache import ResultCache

    return spec, ResultCache(cache_dir) if cache_dir else None


def sample_f_values(
    make_process: Callable[[np.random.Generator], AveragingProcess],
    replicas: int,
    seed: SeedLike = None,
    discrepancy_tol: float = 1e-8,
    max_steps: int = 50_000_000,
    engine: str = "batch",
    processes: int = 1,
    cache_dir: Optional[str] = None,
    kernel: str = "auto",
    threads: Optional[int] = None,
) -> np.ndarray:
    """I.i.d. samples of the convergence value ``F``.

    ``engine="batch"`` (default) vectorises the whole replica set;
    ``engine="loop"`` runs one process per replica.  ``kernel``,
    ``threads``, ``processes`` and ``cache_dir`` apply to the batch
    engine only: the first selects the stepping kernel (fused
    multi-round blocks, the optional serial/threaded numba JITs, the
    array-API device backend, or the legacy per-round path — see
    :mod:`repro.engine.kernels`), the second bounds the threaded
    kernels' thread count, the third fans replica shards across worker
    processes, the fourth memoises finished sample arrays on disk (see
    :class:`repro.engine.cache.ResultCache`).
    """
    spec, cache = _resolve_engine(
        make_process, seed, engine, cache_dir, kernel, threads
    )
    if spec is not None:
        from repro.engine.driver import sample_f_batch

        return sample_f_batch(
            spec,
            replicas,
            seed=seed,
            discrepancy_tol=discrepancy_tol,
            max_steps=max_steps,
            processes=processes,
            cache=cache,
        )

    def run_one(process: AveragingProcess) -> float:
        return run_to_consensus(
            process, discrepancy_tol=discrepancy_tol, max_steps=max_steps
        ).value

    return replicate(make_process, run_one, replicas, seed)


def sample_t_eps(
    make_process: Callable[[np.random.Generator], AveragingProcess],
    epsilon: float,
    replicas: int,
    seed: SeedLike = None,
    max_steps: int = 50_000_000,
    engine: str = "batch",
    processes: int = 1,
    cache_dir: Optional[str] = None,
    kernel: str = "auto",
    threads: Optional[int] = None,
) -> np.ndarray:
    """I.i.d. samples of the convergence time ``T_eps``.

    Engine, kernel and threads selection work exactly as in
    :func:`sample_f_values`.
    """
    spec, cache = _resolve_engine(
        make_process, seed, engine, cache_dir, kernel, threads
    )
    if spec is not None:
        from repro.engine.driver import sample_t_eps_batch

        return sample_t_eps_batch(
            spec,
            epsilon,
            replicas,
            seed=seed,
            max_steps=max_steps,
            processes=processes,
            cache=cache,
        )

    def run_one(process: AveragingProcess) -> float:
        return float(measure_t_eps(process, epsilon, max_steps))

    return replicate(make_process, run_one, replicas, seed)


def sample_meeting_times(
    graph,
    replicas: int,
    seed: SeedLike = None,
    alpha: float = 0.0,
    max_steps: int = 100_000_000,
    engine: str = "batch",
    processes: int = 1,
    cache_dir: Optional[str] = None,
    shard_size: Optional[int] = None,
) -> np.ndarray:
    """I.i.d. samples of the coalescing walks' full coalescence time.

    The dual-side sampler: one walk starts on every node, walks that
    meet merge (laziness ``alpha``), and each replica reports the time
    until one walk remains — the classical voter-dual quantity the
    Section-5 machinery generalises.  ``engine="batch"`` runs all
    replicas as one :class:`~repro.engine.dual.BatchCoalescing` batch,
    sharded / multiprocessed / disk-cached exactly like
    :func:`sample_f_values`; ``engine="loop"`` runs one scalar
    :class:`~repro.dual.CoalescingWalks` per replica (the oracle);
    ``engine="exact"`` skips sampling entirely and returns the
    absorbing-chain expectation
    (:func:`repro.theory.absorbing.exact_coalescence_time`) repeated
    ``replicas`` times, so downstream moment code sees a constant
    column (zero-variance) at the true mean.

    ``alpha == 0`` on a bipartite graph is rejected with a
    :class:`~repro.exceptions.ParameterError` for every engine: the
    non-lazy coupling inherits the product chain's two-colour parity
    obstruction, which voids the meeting-time guarantees the sampler
    exists to measure (and the synchronous variants deadlock outright,
    burning the whole ``max_steps`` budget before dying in
    ``run_to_coalescence``).  Pass any ``alpha > 0`` to restore
    aperiodicity.
    """
    validate_engine(engine, allow_exact=True)
    if replicas < 1:
        raise ParameterError(f"replicas must be positive, got {replicas}")
    from repro.graphs.adjacency import Adjacency
    from repro.graphs.properties import is_bipartite

    adjacency = (
        graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    )
    if alpha == 0.0 and is_bipartite(adjacency):
        raise ParameterError(
            "alpha=0.0 on a bipartite graph parity-locks walk pairs that "
            "start at odd distance (the two-colour invariant of the "
            "non-lazy coupling) — meeting times are not well-defined; "
            "use alpha > 0 (any laziness restores aperiodicity)"
        )
    if engine == "exact":
        from repro.theory.absorbing import exact_coalescence_time

        expectation = exact_coalescence_time(adjacency, alpha=alpha)
        return np.full(replicas, expectation)
    if engine == "batch":
        from repro.engine.cache import ResultCache
        from repro.engine.dual import DualSpec, sample_coalescence_times

        spec = DualSpec(kind="coalescing", adjacency=adjacency, alpha=alpha)
        cache = ResultCache(cache_dir) if cache_dir else None
        return sample_coalescence_times(
            spec,
            replicas,
            seed=seed,
            max_steps=max_steps,
            shard_size=shard_size,
            processes=processes,
            cache=cache,
        )

    from repro.dual.coalescing import CoalescingWalks

    times = np.empty(replicas)
    for i, rng in enumerate(spawn(seed, replicas)):
        walks = CoalescingWalks(adjacency, alpha=alpha, seed=rng)
        times[i] = walks.run_to_coalescence(max_steps=max_steps)
    return times


@dataclass(frozen=True)
class MomentEstimate:
    """Point estimates with bootstrap confidence intervals.

    ``variance`` is the unbiased sample variance; the CI endpoints come
    from a percentile bootstrap with ``bootstrap_samples`` resamples.
    ``skewness``/``kurtosis_excess`` support the higher-moment future-work
    experiment (EXP-MOM).
    """

    count: int
    mean: float
    mean_ci: tuple[float, float]
    variance: float
    variance_ci: tuple[float, float]
    skewness: float
    kurtosis_excess: float

    def variance_within(self, lower: float, upper: float) -> bool:
        """Whether the variance CI intersects ``[lower, upper]``."""
        lo, hi = self.variance_ci
        return hi >= lower and lo <= upper


def estimate_moments(
    sample: Sequence[float] | np.ndarray,
    confidence: float = 0.95,
    bootstrap_samples: int = 2_000,
    seed: SeedLike = None,
) -> MomentEstimate:
    """Estimate mean/variance/skewness/kurtosis with bootstrap CIs."""
    data = np.asarray(sample, dtype=np.float64)
    if data.ndim != 1 or len(data) < 2:
        raise ParameterError("sample must be 1-D with at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise ParameterError(f"confidence must be in (0, 1), got {confidence}")
    rng = as_generator(seed)
    n = len(data)

    mean = float(data.mean())
    variance = float(data.var(ddof=1))
    centered = data - mean
    std = float(data.std(ddof=0))
    if std > 0:
        skewness = float(np.mean(centered**3) / std**3)
        kurtosis_excess = float(np.mean(centered**4) / std**4 - 3.0)
    else:
        skewness = 0.0
        kurtosis_excess = 0.0

    indices = rng.integers(0, n, size=(bootstrap_samples, n))
    resamples = data[indices]
    boot_means = resamples.mean(axis=1)
    boot_vars = resamples.var(axis=1, ddof=1)
    tail = (1.0 - confidence) / 2.0
    mean_ci = (
        float(np.quantile(boot_means, tail)),
        float(np.quantile(boot_means, 1.0 - tail)),
    )
    variance_ci = (
        float(np.quantile(boot_vars, tail)),
        float(np.quantile(boot_vars, 1.0 - tail)),
    )
    return MomentEstimate(
        count=n,
        mean=mean,
        mean_ci=mean_ci,
        variance=variance,
        variance_ci=variance_ci,
        skewness=skewness,
        kurtosis_excess=kurtosis_excess,
    )
