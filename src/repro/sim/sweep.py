"""Generic parameter sweeps over experiment configurations.

A sweep is a cartesian product of named parameter axes evaluated by a
callable; results land in a :class:`~repro.sim.results.ResultTable` whose
columns are the axes plus the measurement names.  The convergence-time
experiments use this to express "for each family x size x alpha" grids
without bespoke loop nests.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.exceptions import ParameterError
from repro.obs.metrics import METRICS
from repro.obs.trace import active_tracer
from repro.sim.results import ResultTable


def grid(axes: Mapping[str, Sequence[Any]]) -> Iterator[dict]:
    """Yield one ``{axis: value}`` dict per point of the cartesian product.

    Points appear in lexicographic axis order (last axis fastest), the
    same order :func:`sweep` emits rows in.  Shared by :func:`sweep` and
    the run API's :func:`repro.api.expand_grid`, so a CLI ``repro sweep``
    and an in-process ``sweep()`` enumerate identically.
    """
    if not axes:
        raise ParameterError("at least one axis is required")
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, combo))


def sweep(
    title: str,
    axes: Mapping[str, Sequence[Any]],
    evaluate: Callable[..., Mapping[str, Any]],
    measurements: Sequence[str],
    common: Mapping[str, Any] | None = None,
) -> ResultTable:
    """Evaluate ``evaluate(**point)`` over the cartesian product of ``axes``.

    ``evaluate`` receives one keyword per axis and must return a mapping
    containing every name in ``measurements``.  Rows appear in
    lexicographic axis order, axes first, measurements after.

    ``common`` holds extra keywords passed unchanged to *every* point —
    the way experiments thread run-wide options (``engine="batch"``, a
    cache directory, a worker count) through a grid without widening it.
    """
    if not axes:
        raise ParameterError("at least one axis is required")
    if not measurements:
        raise ParameterError("at least one measurement is required")
    names = list(axes)
    common = dict(common or {})
    overlap = [name for name in names if name in common]
    if overlap:
        raise ParameterError(f"common keys {overlap} collide with axes")
    table = ResultTable(title, columns=[*names, *measurements])
    tracer = active_tracer()
    for point in grid(axes):
        attrs = {name: str(point[name]) for name in names}
        started = time.perf_counter()
        with tracer.span("sweep.cell", **attrs):
            outcome = evaluate(**point, **common)
        METRICS.count("sweep.cells")
        METRICS.gauge("sweep.cell_seconds", time.perf_counter() - started)
        missing = [m for m in measurements if m not in outcome]
        if missing:
            raise ParameterError(
                f"evaluate() did not return measurements {missing} "
                f"for point {point}"
            )
        table.add_row(*(point[name] for name in names),
                      *(outcome[m] for m in measurements))
    return table


def sweep_size(axes: Mapping[str, Sequence[Any]]) -> int:
    """Number of points in the sweep (for progress estimation)."""
    size = 1
    for values in axes.values():
        size *= len(values)
    return size
