"""Hegselmann–Krause bounded-confidence dynamics [34].

Synchronous dynamics in which agent ``u`` averages only over neighbours
whose current opinion lies within a confidence radius ``eps_c``:

    N_u(t) = { v in N(u) ∪ {u} : |xi_v(t) - xi_u(t)| <= eps_c }
    xi_u(t+1) = mean_{v in N_u(t)} xi_v(t).

Unlike the paper's processes, the effective influence graph co-evolves
with the opinions, and the dynamics can fragment into several clusters
instead of reaching consensus.  Included as the classical example (cited
in Section 3) of opinion dynamics *without* the convergence-to-a-single-
value guarantee the averaging processes enjoy.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency


class HegselmannKrauseModel:
    """Bounded-confidence averaging on a fixed social graph."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
        confidence: float,
    ) -> None:
        adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.adjacency = adjacency
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (adjacency.n,):
            raise ParameterError(
                f"initial_values must have shape ({adjacency.n},), "
                f"got {values.shape}"
            )
        if confidence <= 0:
            raise ParameterError(f"confidence must be positive, got {confidence}")
        self.values = values
        self.confidence = float(confidence)
        self.t = 0

    @property
    def n(self) -> int:
        return self.adjacency.n

    def step(self) -> bool:
        """One synchronous round; returns whether any opinion moved."""
        self.t += 1
        adj = self.adjacency
        old = self.values
        new = old.copy()
        for u in range(adj.n):
            neighbours = adj.neighbors_of(u)
            pool_values = old[neighbours]
            close = np.abs(pool_values - old[u]) <= self.confidence
            total = old[u] + float(pool_values[close].sum())
            count = 1 + int(close.sum())
            new[u] = total / count
        moved = bool(np.any(np.abs(new - old) > 1e-15))
        self.values = new
        return moved

    def run_until_stable(self, max_rounds: int = 10_000, tol: float = 1e-12) -> int:
        """Iterate until no opinion moves more than ``tol``; return rounds."""
        start = self.t
        for _ in range(max_rounds):
            old = self.values.copy()
            self.step()
            if np.abs(self.values - old).max() <= tol:
                return self.t - start
        return self.t - start

    def clusters(self, gap: float | None = None) -> list[np.ndarray]:
        """Group nodes into opinion clusters separated by more than ``gap``.

        Defaults to the confidence radius.  Returns node-index arrays in
        increasing opinion order — HK's signature fragmentation.
        """
        gap = self.confidence if gap is None else gap
        order = np.argsort(self.values)
        sorted_values = self.values[order]
        boundaries = np.flatnonzero(np.diff(sorted_values) > gap)
        groups = np.split(order, boundaries + 1)
        return [np.sort(g) for g in groups]
