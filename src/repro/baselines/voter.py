"""The (pull) voter model.

At each step a uniform random node adopts the opinion of a uniform random
neighbour.  This is the discrete ancestor of the paper's NodeModel
(Definition 2.1 with ``k = 1, alpha = 0``); consensus lands on one of the
*initial* opinions, with P(opinion of node u wins) = ``d_u / 2m`` — the
same degree weighting that shows up as the NodeModel's ``E[F]``.

Used by EXP-PRICE to contrast the averaging process's concentrated ``F``
with the voter model's two-point (or worse) limit law.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class VoterModel:
    """Asynchronous pull voting with arbitrary hashable opinions.

    Opinions are stored as an integer array; callers map semantic opinions
    to integers.  :meth:`run_to_consensus` returns the winning opinion and
    the consensus time.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        opinions: Sequence[int],
        seed: SeedLike = None,
    ) -> None:
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        opinions = np.asarray(opinions, dtype=np.int64).copy()
        if opinions.shape != (self.adjacency.n,):
            raise ParameterError(
                f"opinions must have shape ({self.adjacency.n},), got {opinions.shape}"
            )
        self.opinions = opinions
        self.rng = as_generator(seed)
        self.t = 0
        # Count of distinct opinions, maintained incrementally.
        self._counts: dict[int, int] = {}
        for opinion in opinions.tolist():
            self._counts[opinion] = self._counts.get(opinion, 0) + 1

    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def num_distinct(self) -> int:
        """Number of opinions still alive."""
        return len(self._counts)

    def step(self) -> None:
        """One pull-voting step: uniform node copies a uniform neighbour."""
        self.t += 1
        adj = self.adjacency
        node = int(self.rng.integers(adj.n))
        start = adj.offsets[node]
        degree = int(adj.offsets[node + 1] - start)
        neighbour = int(adj.neighbors[start + int(self.rng.integers(degree))])
        old = int(self.opinions[node])
        new = int(self.opinions[neighbour])
        if old == new:
            return
        self.opinions[node] = new
        self._counts[new] += 1
        self._counts[old] -= 1
        if self._counts[old] == 0:
            del self._counts[old]

    def has_consensus(self) -> bool:
        """Whether all nodes share one opinion."""
        return self.num_distinct == 1

    def run_to_consensus(self, max_steps: int = 50_000_000) -> tuple[int, int]:
        """Run until consensus; return ``(winning_opinion, steps_taken)``."""
        start = self.t
        while not self.has_consensus():
            if self.t - start >= max_steps:
                raise ConvergenceError(
                    f"{self.num_distinct} opinions remain after {max_steps} steps"
                )
            self.step()
        return int(self.opinions[0]), self.t - start


def win_probabilities(graph: nx.Graph | Adjacency) -> np.ndarray:
    """Exact P(node u's initial opinion wins) = ``pi_u = d_u / 2m``.

    Classic duality with coalescing random walks; mirrors the NodeModel's
    ``E[F] = sum_u pi_u xi_u(0)`` (Lemma 4.1) in the discrete world.
    """
    adjacency = graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    return adjacency.stationary_pi()
