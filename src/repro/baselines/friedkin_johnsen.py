"""Friedkin–Johnsen dynamics [29] and the limited-information variant [27].

FJ extends DeGroot with *stubbornness*: each agent ``u`` keeps an
immutable private opinion ``s_u`` and expresses

    xi(t+1) = lambda W xi(t) + (1 - lambda) s,

converging to the unique fixed point
``xi* = (1 - lambda) (I - lambda W)^{-1} s`` for ``lambda in [0, 1)``.

The randomized *limited-information* variant of Fotakis et al. [27] —
explicitly cited by the paper as the closest relative of its NodeModel —
updates one uniform node per step using only ``k`` sampled neighbours:

    xi_u <- (1 - lambda) s_u + lambda / k * sum_i xi_{v_i}.

With full stubbornness removed (``lambda -> 1``) this *is* the NodeModel
with ``alpha = 0``; with ``s = xi(0)`` it anchors opinions near their
origins.  Including it lets EXP-PRICE show where the paper's model sits
between DeGroot-style full communication and FJ-style anchored dynamics.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.spectral import simple_walk_matrix
from repro.rng import SeedLike, as_generator


class FriedkinJohnsenModel:
    """Synchronous FJ dynamics with susceptibility ``lambda``."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        private_opinions: Sequence[float],
        susceptibility: float = 0.5,
        weights: np.ndarray | None = None,
    ) -> None:
        adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.adjacency = adjacency
        n = adjacency.n
        private = np.asarray(private_opinions, dtype=np.float64).copy()
        if private.shape != (n,):
            raise ParameterError(
                f"private_opinions must have shape ({n},), got {private.shape}"
            )
        if not 0.0 <= susceptibility < 1.0:
            raise ParameterError(
                f"susceptibility must be in [0, 1), got {susceptibility}"
            )
        if weights is None:
            weights = simple_walk_matrix(adjacency)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n, n):
            raise ParameterError(f"weights must have shape ({n}, {n})")
        self.private = private
        self.susceptibility = float(susceptibility)
        self.weights = weights
        self.values = private.copy()
        self.t = 0

    @property
    def n(self) -> int:
        return self.adjacency.n

    def step(self) -> None:
        """One synchronous FJ round."""
        self.t += 1
        lam = self.susceptibility
        self.values = lam * (self.weights @ self.values) + (1.0 - lam) * self.private

    def run(self, rounds: int) -> None:
        if rounds < 0:
            raise ParameterError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def fixed_point(self) -> np.ndarray:
        """Exact equilibrium ``(1-lambda)(I - lambda W)^{-1} s``."""
        n = self.n
        lam = self.susceptibility
        return (1.0 - lam) * np.linalg.solve(
            np.eye(n) - lam * self.weights, self.private
        )

    def distance_to_fixed_point(self) -> float:
        """Sup-norm distance of the current state from the equilibrium."""
        return float(np.abs(self.values - self.fixed_point()).max())


class LimitedInfoFriedkinJohnsen:
    """Asynchronous, k-sample FJ updates (Fotakis et al. [27]).

    Each step: a uniform node ``u`` samples ``k`` distinct neighbours and
    sets ``xi_u <- (1 - lambda) s_u + lambda * mean(sampled values)``.
    In expectation this contracts towards the FJ fixed point; it is the
    NodeModel's closest published relative.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        private_opinions: Sequence[float],
        susceptibility: float = 0.5,
        k: int = 1,
        seed: SeedLike = None,
    ) -> None:
        adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.adjacency = adjacency
        n = adjacency.n
        private = np.asarray(private_opinions, dtype=np.float64).copy()
        if private.shape != (n,):
            raise ParameterError(
                f"private_opinions must have shape ({n},), got {private.shape}"
            )
        if not 0.0 <= susceptibility < 1.0:
            raise ParameterError(
                f"susceptibility must be in [0, 1), got {susceptibility}"
            )
        if int(k) != k or not 1 <= k <= adjacency.d_min:
            raise ParameterError(
                f"k must be in [1, {adjacency.d_min}], got {k}"
            )
        self.private = private
        self.susceptibility = float(susceptibility)
        self.k = int(k)
        self.values = private.copy()
        self.rng = as_generator(seed)
        self.t = 0

    @property
    def n(self) -> int:
        return self.adjacency.n

    def step(self) -> None:
        """One limited-information update."""
        self.t += 1
        adj = self.adjacency
        node = int(self.rng.integers(adj.n))
        start = adj.offsets[node]
        degree = int(adj.offsets[node + 1] - start)
        if self.k == 1:
            sample_mean = float(
                self.values[adj.neighbors[start + int(self.rng.integers(degree))]]
            )
        else:
            pool = adj.neighbors[start : start + degree]
            chosen = self.rng.choice(pool, size=self.k, replace=False)
            sample_mean = float(self.values[chosen].mean())
        lam = self.susceptibility
        self.values[node] = (1.0 - lam) * self.private[node] + lam * sample_mean

    def run(self, steps: int) -> None:
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()

    def expected_fixed_point(self) -> np.ndarray:
        """Fixed point of the *expected* dynamics = the synchronous FJ one."""
        synchronous = FriedkinJohnsenModel(
            self.adjacency, self.private, susceptibility=self.susceptibility
        )
        return synchronous.fixed_point()
