"""Synchronous DeGroot opinion dynamics [23].

Every round, *all* nodes simultaneously move to a weighted average of
their neighbourhood:

    xi(t+1) = W xi(t),

with ``W`` row-stochastic.  The default weighting is the lazy walk matrix
``W = (I + D^{-1} A) / 2`` whose fixed point is the degree-weighted
average — the synchronous, deterministic analogue of the NodeModel.  The
paper's Section 3 discusses this lineage; we include it as the
deterministic baseline whose convergence rate ``~ log(1/eps) /
(1 - lambda_2)`` the asynchronous processes pay an extra factor ``n``
for (one update per step instead of ``n``).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.spectral import lazy_walk_matrix, simple_walk_matrix


class DeGrootModel:
    """Deterministic synchronous averaging ``xi <- W xi``."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
        lazy: bool = True,
        weights: np.ndarray | None = None,
    ) -> None:
        adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.adjacency = adjacency
        n = adjacency.n
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (n,):
            raise ParameterError(
                f"initial_values must have shape ({n},), got {values.shape}"
            )
        if weights is None:
            weights = lazy_walk_matrix(adjacency) if lazy else simple_walk_matrix(adjacency)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n, n):
            raise ParameterError(f"weights must have shape ({n}, {n})")
        if np.any(weights < 0) or not np.allclose(weights.sum(axis=1), 1.0):
            raise ParameterError("weights must be row-stochastic")
        self.weights = weights
        self.values = values
        self.t = 0

    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def discrepancy(self) -> float:
        return float(self.values.max() - self.values.min())

    def fixed_point(self) -> float:
        """The limit value: left-Perron-weighted initial average.

        For walk-matrix weights this is the degree-weighted average
        ``sum_u pi_u xi_u(0)`` — the same ``E[F]`` as the NodeModel's.
        """
        eigenvalues, vectors = np.linalg.eig(self.weights.T)
        index = int(np.argmin(np.abs(eigenvalues - 1.0)))
        left = np.real(vectors[:, index])
        left = left / left.sum()
        return float(left @ self.values)

    def step(self) -> None:
        """One synchronous round."""
        self.t += 1
        self.values = self.weights @ self.values

    def run(self, rounds: int) -> None:
        if rounds < 0:
            raise ParameterError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def run_to_consensus(
        self, discrepancy_tol: float = 1e-9, max_rounds: int = 1_000_000
    ) -> tuple[float, int]:
        """Iterate until spread <= tol; return ``(value, rounds)``."""
        start = self.t
        while self.discrepancy > discrepancy_tol:
            if self.t - start >= max_rounds:
                raise ConvergenceError(
                    f"discrepancy {self.discrepancy:.3e} after {max_rounds} rounds"
                )
            self.step()
        return float(self.values.mean()), self.t - start
