"""Baseline opinion/averaging dynamics the paper positions itself against.

* :mod:`repro.baselines.voter` — the discrete voter model ([33], [18]);
  the NodeModel with ``k = 1, alpha = 0`` degenerates to it,
* :mod:`repro.baselines.gossip` — randomized pairwise gossip averaging
  (Boyd et al. [14]): the *coordinated* update the introduction contrasts
  with, which preserves the average exactly (``Var(F) = 0``),
* :mod:`repro.baselines.degroot` — synchronous DeGroot dynamics [23],
* :mod:`repro.baselines.friedkin_johnsen` — FJ dynamics with stubborn
  private opinions [29] plus the limited-information randomized variant
  of [27] that motivates the NodeModel,
* :mod:`repro.baselines.hegselmann_krause` — bounded-confidence dynamics
  [34],
* :mod:`repro.baselines.load_balancing` — synchronous neighbourhood
  diffusion (doubly stochastic; [22], [38]),
* :mod:`repro.baselines.pushsum` — push-sum ratio consensus for
  sum/average computation (Kempe et al. [35]).
"""

from repro.baselines.degroot import DeGrootModel
from repro.baselines.friedkin_johnsen import (
    FriedkinJohnsenModel,
    LimitedInfoFriedkinJohnsen,
)
from repro.baselines.gossip import PairwiseGossip
from repro.baselines.hegselmann_krause import HegselmannKrauseModel
from repro.baselines.load_balancing import SynchronousDiffusion
from repro.baselines.pushsum import PushSum
from repro.baselines.voter import VoterModel

__all__ = [
    "DeGrootModel",
    "FriedkinJohnsenModel",
    "HegselmannKrauseModel",
    "LimitedInfoFriedkinJohnsen",
    "PairwiseGossip",
    "PushSum",
    "SynchronousDiffusion",
    "VoterModel",
]
