"""Randomized pairwise gossip averaging (Boyd, Ghosh, Prabhakar, Shah).

At each step a uniform random edge ``{u, v}`` is selected and *both*
endpoints move to their midpoint:

    xi_u, xi_v  <-  (xi_u + xi_v) / 2.

This is the "stronger communication model" of the paper's introduction:
the update matrix is doubly stochastic, so the simple average is
*invariant* (not merely a martingale) and the process converges to the
exact initial average with ``Var(F) = 0``.  The price is coordination —
two nodes must update simultaneously.  EXP-PRICE quantifies what the
paper calls the *price of simplicity* by comparing the spread of ``F``
under the NodeModel/EdgeModel against this zero-variance baseline.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.potentials import PotentialTracker, discrepancy
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class PairwiseGossip:
    """Coordinated pairwise averaging on a connected graph."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
        seed: SeedLike = None,
    ) -> None:
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (self.adjacency.n,):
            raise ParameterError(
                f"initial_values must have shape ({self.adjacency.n},), "
                f"got {values.shape}"
            )
        self.values = values
        self.rng = as_generator(seed)
        self.t = 0
        # Uniform pi: phi tracker measures the uniform potential phi_V / n.
        self._pi = np.full(self.adjacency.n, 1.0 / self.adjacency.n)
        self._tracker = PotentialTracker(self._pi, self.values)
        # Undirected edge endpoints (one orientation suffices).
        mask = self.adjacency.edge_tails < self.adjacency.edge_heads
        self._u = self.adjacency.edge_tails[mask]
        self._v = self.adjacency.edge_heads[mask]

    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def average(self) -> float:
        """The invariant simple average."""
        return float(self.values.mean())

    @property
    def phi(self) -> float:
        """Uniform-weight potential ``<xi,xi>_u - <1,xi>_u^2`` (= phi_V / n)."""
        return self._tracker.phi

    @property
    def discrepancy(self) -> float:
        return discrepancy(self.values)

    def step(self) -> None:
        """Average a uniform random adjacent pair."""
        self.t += 1
        index = int(self.rng.integers(len(self._u)))
        u, v = int(self._u[index]), int(self._v[index])
        old_u, old_v = float(self.values[u]), float(self.values[v])
        mid = 0.5 * (old_u + old_v)
        self.values[u] = mid
        self.values[v] = mid
        self._tracker.update(u, old_u, mid, self.values)
        self._tracker.update(v, old_v, mid, self.values)

    def run(self, steps: int) -> None:
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()

    def run_to_consensus(
        self, discrepancy_tol: float = 1e-9, max_steps: int = 50_000_000
    ) -> tuple[float, int]:
        """Run until spread <= tol; return ``(consensus_value, steps)``.

        The consensus value equals the initial average exactly (up to
        floating point) — that is the point of this baseline.
        """
        start = self.t
        while self.discrepancy > discrepancy_tol:
            if self.t - start >= max_steps:
                raise ConvergenceError(
                    f"discrepancy {self.discrepancy:.3e} > {discrepancy_tol:.3e} "
                    f"after {max_steps} steps"
                )
            self.run(min(64, max_steps - (self.t - start)))
        return self.average, self.t - start
