"""Push-sum (ratio) consensus of Kempe, Dobra and Gehrke [35].

Every node maintains a pair ``(s_u, w_u)`` initialised to
``(xi_u(0), 1)``.  Each asynchronous step, a uniform node halves its pair
and pushes the other half to a uniform neighbour:

    (s_u, w_u) <- (s_u/2, w_u/2);   (s_v, w_v) <- (s_v + s_u/2, w_v + w_u/2).

Both the total sum and the total weight are invariant, and every local
ratio ``s_u / w_u`` converges to the exact initial average — even though
the *individual* coordinates do not.  Push-sum thus achieves exact
averaging with unilateral *push* communication, complementing the
paper's pull-based processes: the coordination is hidden in tracking the
weight, not in simultaneous updates.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class PushSum:
    """Asynchronous push-sum averaging."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
        seed: SeedLike = None,
    ) -> None:
        adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.adjacency = adjacency
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (adjacency.n,):
            raise ParameterError(
                f"initial_values must have shape ({adjacency.n},), "
                f"got {values.shape}"
            )
        self.sums = values
        self.weights = np.ones(adjacency.n)
        self.rng = as_generator(seed)
        self.t = 0

    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def estimates(self) -> np.ndarray:
        """Per-node average estimates ``s_u / w_u``."""
        return self.sums / self.weights

    @property
    def true_average(self) -> float:
        """The conserved target ``sum(s) / sum(w)``."""
        return float(self.sums.sum() / self.weights.sum())

    @property
    def max_error(self) -> float:
        """Sup-norm error of the estimates against the true average."""
        return float(np.abs(self.estimates - self.true_average).max())

    def step(self) -> None:
        """One push from a uniform node to a uniform neighbour."""
        self.t += 1
        adj = self.adjacency
        node = int(self.rng.integers(adj.n))
        start = adj.offsets[node]
        degree = int(adj.offsets[node + 1] - start)
        target = int(adj.neighbors[start + int(self.rng.integers(degree))])
        half_s = 0.5 * self.sums[node]
        half_w = 0.5 * self.weights[node]
        self.sums[node] = half_s
        self.weights[node] = half_w
        self.sums[target] += half_s
        self.weights[target] += half_w

    def run(self, steps: int) -> None:
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()

    def run_to_accuracy(
        self, tol: float = 1e-9, max_steps: int = 50_000_000
    ) -> tuple[float, int]:
        """Run until every estimate is within ``tol``; return (avg, steps)."""
        if tol <= 0:
            raise ParameterError(f"tol must be positive, got {tol}")
        start = self.t
        while self.max_error > tol:
            if self.t - start >= max_steps:
                raise ConvergenceError(
                    f"max estimate error {self.max_error:.3e} > {tol:.3e} "
                    f"after {max_steps} steps"
                )
            self.run(min(64, max_steps - (self.t - start)))
        return self.true_average, self.t - start
