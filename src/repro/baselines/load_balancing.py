"""Synchronous neighbourhood diffusion load balancing ([22], [38], [44]).

Every round, every node simultaneously averages with its whole
neighbourhood through the doubly stochastic diffusion matrix

    P_diff[i, j] = 1/(d_max + 1)   for {i, j} in E
    P_diff[i, i] = 1 - d_i/(d_max + 1),

so the total (and thus average) load is conserved *exactly*.  The paper's
Section 2 compares its asynchronous bounds with this synchronous process:
the extra factor ``n`` in Theorem 2.2(1) is precisely the price of
activating one node per step instead of all ``n``.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.spectral import adjacency_matrix


def diffusion_matrix(graph: nx.Graph | Adjacency) -> np.ndarray:
    """The doubly stochastic diffusion matrix with uniform edge weight
    ``1/(d_max + 1)`` (the classic choice of [44] generalised to
    irregular graphs)."""
    a = adjacency_matrix(graph)
    degrees = a.sum(axis=1)
    d_max = float(degrees.max())
    p = a / (d_max + 1.0)
    np.fill_diagonal(p, 1.0 - degrees / (d_max + 1.0))
    return p


class SynchronousDiffusion:
    """Average-preserving synchronous diffusion ``xi <- P_diff xi``."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
    ) -> None:
        adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.adjacency = adjacency
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (adjacency.n,):
            raise ParameterError(
                f"initial_values must have shape ({adjacency.n},), "
                f"got {values.shape}"
            )
        self.values = values
        self.matrix = diffusion_matrix(adjacency)
        self.t = 0

    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def average(self) -> float:
        """The exactly conserved average load."""
        return float(self.values.mean())

    @property
    def discrepancy(self) -> float:
        return float(self.values.max() - self.values.min())

    def step(self) -> None:
        """One synchronous diffusion round."""
        self.t += 1
        self.values = self.matrix @ self.values

    def run(self, rounds: int) -> None:
        if rounds < 0:
            raise ParameterError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def run_to_consensus(
        self, discrepancy_tol: float = 1e-9, max_rounds: int = 1_000_000
    ) -> tuple[float, int]:
        """Iterate until spread <= tol; return ``(average, rounds)``."""
        start = self.t
        while self.discrepancy > discrepancy_tol:
            if self.t - start >= max_rounds:
                raise ConvergenceError(
                    f"discrepancy {self.discrepancy:.3e} after {max_rounds} rounds"
                )
            self.step()
        return self.average, self.t - start

    def convergence_rate_bound(self) -> float:
        """Second-largest |eigenvalue| of the diffusion matrix ([44]'s rate)."""
        eigenvalues = np.linalg.eigvalsh(self.matrix)
        magnitudes = np.sort(np.abs(eigenvalues))[::-1]
        return float(magnitudes[1])
