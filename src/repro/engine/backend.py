"""Pluggable batched neighbour-sampling backends.

The batch engine advances ``B`` independent replicas per vectorized round;
the only model-specific inner operation is "for each active replica ``b``
with selected node ``u_b``, average ``k`` uniformly chosen distinct
neighbours of ``u_b``".  A :class:`SamplingBackend` performs that for a
whole batch at once.  Two implementations trade memory for gather speed:

* :class:`DenseBackend` precomputes the padded ``(n, d_max)`` neighbour
  table of :meth:`~repro.graphs.adjacency.Adjacency.padded_neighbors` —
  O(n * d_max) memory, fastest gathers; the default for the graph sizes
  of the paper experiments.
* :class:`CSRBackend` keeps only the frozen CSR arrays (O(E) memory) and
  materialises the needed ``(B, d_max)`` rows per call — the choice for
  huge, skew-degree graphs where the dense table would not fit.

Both consume the *same* random variates in the same order, so a fixed
seed yields bit-identical trajectories across backends (asserted in
``tests/test_engine.py``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency

#: Above this many dense-table entries, ``backend="auto"`` switches to CSR.
_DENSE_TABLE_LIMIT = 32_000_000


class SamplingBackend(abc.ABC):
    """Batched k-neighbour sampling over one frozen :class:`Adjacency`.

    ``k`` is fixed per backend instance (it is a model parameter); the
    per-call inputs are the batch ``values`` matrix, the active replica
    rows, and the selected node per row.
    """

    def __init__(self, adjacency: Adjacency, k: int) -> None:
        if int(k) != k or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k}")
        if k > adjacency.d_min:
            raise ParameterError(
                f"k = {k} exceeds the minimum degree {adjacency.d_min}"
            )
        self.adjacency = adjacency
        self.k = int(k)
        self._degrees = adjacency.degrees
        # Regular graphs skip the per-node degree gather in the hot path.
        self._common_degree = (
            float(adjacency.d_min) if adjacency.is_regular else None
        )

    def _slots(self, frac: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Neighbour slot ``floor(frac * degree)`` per row.

        Shared by both backends' ``pick_one`` so their consumption of
        the caller-supplied variate — and hence their RNG streams —
        stays identical by construction.
        """
        if self._common_degree is not None:
            return (frac * self._common_degree).astype(np.int64)
        return (frac * self._degrees[nodes]).astype(np.int64)

    @abc.abstractmethod
    def neighbour_means(
        self,
        values: np.ndarray,
        rows: np.ndarray,
        row_offsets: np.ndarray,
        nodes: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mean over a uniform ``k``-subset of neighbours, one per row.

        ``values`` is the ``(B, n)`` batch state, ``rows`` the active
        replica indices, ``row_offsets`` their flat bases ``rows * n``,
        and ``nodes`` the selected node per row (same length as
        ``rows``).  Returns the per-row neighbour mean.
        """

    @abc.abstractmethod
    def pick_one(
        self,
        values: np.ndarray,
        row_offsets: np.ndarray,
        nodes: np.ndarray,
        frac: np.ndarray,
    ) -> np.ndarray:
        """The ``k = 1`` hot path: one uniform neighbour per row.

        ``frac`` is a per-row uniform variate in ``[0, 1)`` supplied by
        the caller (who extracts it for free from the node draw); the
        slot is ``floor(frac * degree)``.  Consumes no RNG itself, so
        dense and CSR backends stay stream-identical.
        """

    def _subset_columns(
        self,
        deg: np.ndarray,
        d_max: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Uniform ``k``-subset of column slots ``[0, deg)`` per row.

        Assigns i.i.d. uniform keys to each row's valid slots and takes
        the ``k`` smallest — a uniform random ``k``-subset, fully
        vectorized (shared by both backends so their RNG streams agree).
        """
        keys = rng.random((len(deg), d_max))
        keys[np.arange(d_max)[None, :] >= deg[:, None]] = np.inf
        return np.argpartition(keys, self.k - 1, axis=1)[:, : self.k]


class DenseBackend(SamplingBackend):
    """Sampling against the precomputed padded neighbour table."""

    def __init__(self, adjacency: Adjacency, k: int) -> None:
        super().__init__(adjacency, k)
        self._table = adjacency.padded_neighbors()
        self._table_flat = np.ascontiguousarray(self._table).reshape(-1)
        self._d_max = self._table.shape[1]

    def pick_one(self, values, row_offsets, nodes, frac):
        picked = self._table_flat[nodes * self._d_max + self._slots(frac, nodes)]
        return values.reshape(-1)[row_offsets + picked]

    def neighbour_means(self, values, rows, row_offsets, nodes, rng):
        deg = self._degrees[nodes]
        if self.k == 1:
            return self.pick_one(values, row_offsets, nodes, rng.random(len(nodes)))
        if self.k == self.adjacency.d_min == self.adjacency.d_max:
            # Full-neighbourhood average on a regular graph: no sampling.
            gathered = values[rows[:, None], self._table[nodes]]
            return gathered.mean(axis=1)
        slots = self._subset_columns(deg, self._d_max, rng)
        picked = self._table[nodes[:, None], slots]
        return values[rows[:, None], picked].mean(axis=1)


class CSRBackend(SamplingBackend):
    """Sampling straight off the CSR arrays (no dense table).

    ``k = 1`` needs a single O(B) gather; ``k > 1`` materialises the
    required neighbour rows on the fly (O(B * d_max) transient memory
    instead of the dense backend's persistent O(n * d_max) table).
    """

    def __init__(self, adjacency: Adjacency, k: int) -> None:
        super().__init__(adjacency, k)
        self._neighbors = adjacency.neighbors
        self._offsets = adjacency.offsets

    def pick_one(self, values, row_offsets, nodes, frac):
        picked = self._neighbors[self._offsets[nodes] + self._slots(frac, nodes)]
        return values.reshape(-1)[row_offsets + picked]

    def neighbour_means(self, values, rows, row_offsets, nodes, rng):
        deg = self._degrees[nodes]
        if self.k == 1:
            return self.pick_one(values, row_offsets, nodes, rng.random(len(nodes)))
        starts = self._offsets[nodes]
        d_max = int(self.adjacency.d_max)
        if self.k == self.adjacency.d_min == self.adjacency.d_max:
            span = starts[:, None] + np.arange(d_max)[None, :]
            return values[rows[:, None], self._neighbors[span]].mean(axis=1)
        slots = self._subset_columns(deg, d_max, rng)
        picked = self._neighbors[starts[:, None] + slots]
        return values[rows[:, None], picked].mean(axis=1)


def select_backend(
    adjacency: Adjacency, k: int, name: str = "auto"
) -> SamplingBackend:
    """Resolve a backend by name (``"auto"``, ``"dense"`` or ``"csr"``)."""
    if name == "dense":
        return DenseBackend(adjacency, k)
    if name == "csr":
        return CSRBackend(adjacency, k)
    if name == "auto":
        if adjacency.n * adjacency.d_max <= _DENSE_TABLE_LIMIT:
            return DenseBackend(adjacency, k)
        return CSRBackend(adjacency, k)
    raise ParameterError(
        f"unknown backend {name!r}; expected 'auto', 'dense' or 'csr'"
    )
