"""Pluggable batched neighbour-sampling backends.

The batch engine advances ``B`` independent replicas per vectorized round;
the only model-specific inner operation is "for each active replica ``b``
with selected node ``u_b``, average ``k`` uniformly chosen distinct
neighbours of ``u_b``".  A :class:`SamplingBackend` performs that for a
whole batch at once.  Two implementations trade memory for gather speed:

* :class:`DenseBackend` precomputes the padded ``(n, d_max)`` neighbour
  table of :meth:`~repro.graphs.adjacency.Adjacency.padded_neighbors` —
  O(n * d_max) memory, fastest gathers; the default for the graph sizes
  of the paper experiments.
* :class:`CSRBackend` keeps only the frozen CSR arrays (O(E) memory) and
  materialises the needed neighbour rows per call — the choice for
  huge, skew-degree graphs where the dense table would not fit.

Both consume the *same* random variates in the same order, so a fixed
seed yields bit-identical trajectories across backends (asserted in
``tests/test_engine.py``).  The index-level primitives
(:meth:`~SamplingBackend.pick_block`, :meth:`~SamplingBackend._pick_slots`)
accept arrays of any shape, so the fused block kernels
(:mod:`repro.engine.kernels`) can precompute a whole ``(R, B)`` block
of selections through the same code paths the per-round engine uses.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency

#: Above this many dense-table entries, ``backend="auto"`` switches to CSR.
_DENSE_TABLE_LIMIT = 32_000_000

#: Largest ``d_max`` for which k-subsets are drawn with the full-key
#: strategy (one uniform key per neighbour slot).  Above it, and when
#: ``k*k <= d_min`` keeps collisions rare, rejection sampling draws only
#: ``k`` variates per row instead of ``d_max`` — the difference matters
#: on high-degree graphs where a ``(B, d_max)`` key matrix per round
#: would dwarf the actual update work.
_FULL_KEY_DMAX = 64


class SamplingBackend(abc.ABC):
    """Batched k-neighbour sampling over one frozen :class:`Adjacency`.

    ``k`` is fixed per backend instance (it is a model parameter); the
    per-call inputs are the batch's flat value view, the active replica
    rows, and the selected node per row.

    ``d_max`` optionally widens the neighbour-slot axis beyond this
    snapshot's own maximum degree: the multi-snapshot form
    (:class:`SnapshotBackends`) pads every snapshot's table to the
    *schedule-wide* maximum so all snapshots share one stacked layout
    (and one ``k > 2`` key-matrix width).  Padded slots beyond a node's
    degree are never selected — the subset sampler masks them even on
    regular snapshots narrower than the table.
    """

    def __init__(
        self, adjacency: Adjacency, k: int, d_max: int | None = None
    ) -> None:
        if int(k) != k or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k}")
        if k > adjacency.d_min:
            raise ParameterError(
                f"k = {k} exceeds the minimum degree {adjacency.d_min}"
            )
        self.adjacency = adjacency
        self.k = int(k)
        self._degrees = adjacency.degrees
        self._d_max = int(adjacency.d_max if d_max is None else d_max)
        if self._d_max < adjacency.d_max:
            raise ParameterError(
                f"d_max = {self._d_max} is below the snapshot's maximum "
                f"degree {adjacency.d_max}"
            )
        # Regular graphs skip the per-node degree gather in the hot path.
        self._common_degree = (
            float(adjacency.d_min) if adjacency.is_regular else None
        )
        # Full-neighbourhood averaging on a regular graph needs no keys.
        self._full_neighbourhood = (
            self.k == adjacency.d_min == adjacency.d_max
        )
        self._rejection_subsets = (
            not self._full_neighbourhood
            and self._d_max > _FULL_KEY_DMAX
            and self.k * self.k <= adjacency.d_min
        )

    @property
    def d_max(self) -> int:
        """Width of the neighbour-slot axis (the key-matrix width for
        ``k > 2``): this snapshot's maximum degree, or the schedule-wide
        envelope under :class:`SnapshotBackends`."""
        return self._d_max

    @property
    def uses_subset_keys(self) -> bool:
        """Whether ``k > 1`` sampling consumes a pre-drawn key matrix.

        True for the full-key strategy (the caller supplies one uniform
        key per neighbour slot); False for the full-neighbourhood and
        rejection-sampled regimes.
        """
        return (
            self.k > 1
            and not self._full_neighbourhood
            and not self._rejection_subsets
        )

    def _slots(self, frac: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Neighbour slot ``floor(frac * degree)`` per entry (any shape).

        Shared by both backends' ``pick_block`` so their consumption of
        the caller-supplied variate — and hence their RNG streams —
        stays identical by construction.  ``frac`` is consumed (scaled
        in place); callers pass owned scratch.
        """
        if self._common_degree is not None:
            np.multiply(frac, self._common_degree, out=frac)
        else:
            np.multiply(frac, self._degrees[nodes], out=frac)
        return frac.astype(np.int64)

    @abc.abstractmethod
    def _pick_slots(self, nodes: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Neighbour ids for per-node slot indices (broadcasting shapes).

        ``nodes`` has any shape; ``slots`` has the same shape plus an
        optional trailing subset axis.  Slot ``s`` of node ``u`` is its
        ``s``-th neighbour in the frozen adjacency order.
        """

    def pick_block(self, nodes: np.ndarray, frac: np.ndarray) -> np.ndarray:
        """One uniform neighbour per entry, for arrays of any shape.

        ``frac`` is a uniform variate in ``[0, 1)`` supplied by the
        caller (extracted for free from the node draw); the slot is
        ``floor(frac * degree)``.  Consumes no RNG itself, so dense and
        CSR backends stay stream-identical.
        """
        return self._pick_slots(nodes, self._slots(frac, nodes))

    def pick_one(
        self,
        flat: np.ndarray,
        row_offsets: np.ndarray,
        nodes: np.ndarray,
        frac: np.ndarray,
    ) -> np.ndarray:
        """The ``k = 1`` hot path: one uniform neighbour value per row.

        ``flat`` is the batch's cached flat value view (see
        ``BatchAveragingProcess._flat``) and ``row_offsets`` the active
        rows' flat bases ``rows * n``.
        """
        return flat[row_offsets + self.pick_block(nodes, frac)]

    def _subset_slots(
        self,
        deg: np.ndarray,
        keys: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Uniform ``k``-subset of column slots ``[0, deg)`` per entry.

        Two strategies, gated once per (graph, k) at construction so
        dense and CSR backends — which share this method — consume
        identical RNG streams on the same graph:

        * **full-key** (``d_max <= 64`` or large ``k``): ``keys`` holds
          one i.i.d. uniform per neighbour slot (pre-drawn by the
          caller, shape ``deg.shape + (d_max,)``, consumed in place);
          invalid slots are masked to ``inf`` and the ``k`` smallest
          keys win — a uniform k-subset, fully vectorized.  Cost:
          ``d_max`` variates and an O(d_max) partition per entry,
          regardless of ``k`` — cheap on the paper's bounded-degree
          graphs, wasteful when ``d_max`` is in the hundreds.
        * **rejection** (``d_max > 64`` and ``k*k <= d_min``): draw
          ``k`` slots directly and redraw the (rare, probability
          <= k^2/deg) rows with duplicates.  ``keys`` must be ``None``;
          the variate count is data-dependent, which is why this is the
          one sampling regime whose streams are not block-size
          invariant (see :mod:`repro.engine.kernels`).
        """
        if not self._rejection_subsets:
            # ``keys`` is consumed: invalid padded slots are masked in
            # place (a no-op on regular graphs whose degree fills the
            # table; a regular snapshot narrower than a stacked table
            # still needs the mask) before the k-smallest partition.
            if self._common_degree is None or self._common_degree < self._d_max:
                keys[np.arange(self._d_max) >= deg[..., None]] = np.inf
            return np.argpartition(keys, self.k - 1, axis=-1)[..., : self.k]
        if keys is not None:  # pragma: no cover - defensive
            raise ParameterError("rejection subset sampling pre-draws no keys")
        k = self.k
        slots = (rng.random(deg.shape + (k,)) * deg[..., None]).astype(np.int64)
        flat_slots = slots.reshape(-1, k)
        flat_deg = deg.reshape(-1)
        while True:
            ordered = np.sort(flat_slots, axis=1)
            dupes = np.flatnonzero(
                (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
            )
            if not dupes.size:
                return slots
            redraw = rng.random((dupes.size, k)) * flat_deg[dupes, None]
            flat_slots[dupes] = redraw.astype(np.int64)

    def pick_subsets(
        self,
        nodes: np.ndarray,
        keys: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Neighbour ids of a uniform ``k``-subset per entry.

        Returns shape ``nodes.shape + (k,)``.  ``keys`` follows the
        :meth:`_subset_slots` contract (required iff
        :attr:`uses_subset_keys`); the full-neighbourhood regular case
        consumes no randomness at all.
        """
        if self._full_neighbourhood:
            slots = np.broadcast_to(
                np.arange(self.k, dtype=np.int64), nodes.shape + (self.k,)
            )
            return self._pick_slots(nodes, slots)
        deg = self._degrees[nodes]
        return self._pick_slots(nodes, self._subset_slots(deg, keys, rng))

    def neighbour_means(
        self,
        values: np.ndarray,
        flat: np.ndarray,
        rows: np.ndarray,
        row_offsets: np.ndarray,
        nodes: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mean over a uniform ``k``-subset of neighbours, one per row.

        ``values`` is the ``(B, n)`` batch state and ``flat`` its cached
        flat view; ``rows`` are the active replica indices,
        ``row_offsets`` their flat bases ``rows * n``, and ``nodes`` the
        selected node per row.
        """
        if self.k == 1:
            return self.pick_one(flat, row_offsets, nodes, rng.random(len(nodes)))
        keys = None
        if self.uses_subset_keys:
            keys = rng.random((len(nodes), self._d_max))
        picked = self.pick_subsets(nodes, keys, rng)
        return values[rows[:, None], picked].mean(axis=1)


class DenseBackend(SamplingBackend):
    """Sampling against the precomputed padded neighbour table.

    ``table`` optionally injects a prebuilt ``(n, d_max)`` table — the
    stacked multi-snapshot form passes per-snapshot views of one
    ``(S, n, d_max)`` array, so snapshot selection costs one extra
    leading index instead of a table rebuild.
    """

    def __init__(
        self,
        adjacency: Adjacency,
        k: int,
        d_max: int | None = None,
        table: np.ndarray | None = None,
    ) -> None:
        super().__init__(adjacency, k, d_max=d_max)
        if table is None:
            table = adjacency.padded_neighbors()
        if table.shape != (adjacency.n, self._d_max):
            raise ParameterError(
                f"neighbour table shape {table.shape} does not match "
                f"(n, d_max) = ({adjacency.n}, {self._d_max}); widened "
                "tables come stacked from SnapshotBackends"
            )
        self._table = table
        self._table_flat = np.ascontiguousarray(self._table).reshape(-1)

    def _pick_slots(self, nodes, slots):
        if slots.ndim == nodes.ndim:
            idx = nodes * self._d_max
            idx += slots
            return self._table_flat[idx]
        return self._table[nodes[..., None], slots]


class CSRBackend(SamplingBackend):
    """Sampling straight off the CSR arrays (no dense table).

    ``k = 1`` needs a single O(B) gather; ``k > 1`` materialises the
    required neighbour ids on the fly (O(B * k) transient memory
    instead of the dense backend's persistent O(n * d_max) table).
    """

    def __init__(
        self, adjacency: Adjacency, k: int, d_max: int | None = None
    ) -> None:
        super().__init__(adjacency, k, d_max=d_max)
        self._neighbors = adjacency.neighbors
        self._offsets = adjacency.offsets

    def _pick_slots(self, nodes, slots):
        if slots.ndim == nodes.ndim:
            idx = self._offsets[nodes]
            idx += slots
            return self._neighbors[idx]
        return self._neighbors[self._offsets[nodes][..., None] + slots]


def select_backend(
    adjacency: Adjacency, k: int, name: str = "auto"
) -> SamplingBackend:
    """Resolve a backend by name (``"auto"``, ``"dense"`` or ``"csr"``)."""
    if name == "dense":
        return DenseBackend(adjacency, k)
    if name == "csr":
        return CSRBackend(adjacency, k)
    if name == "auto":
        if adjacency.n * adjacency.d_max <= _DENSE_TABLE_LIMIT:
            return DenseBackend(adjacency, k)
        return CSRBackend(adjacency, k)
    raise ParameterError(
        f"unknown backend {name!r}; expected 'auto', 'dense' or 'csr'"
    )


class SnapshotBackends:
    """One sampling backend per snapshot, sharing a stacked layout.

    The dynamic engine's counterpart of :func:`select_backend`: for a
    :class:`~repro.engine.dynamic.GraphSchedule`'s snapshots it builds
    either

    * the **stacked dense form** — every snapshot's padded neighbour
      table stacked into one ``(S, n, d_max)`` array (``d_max`` the
      schedule-wide maximum), each snapshot's :class:`DenseBackend`
      indexing its own ``(n, d_max)`` view, so per-segment snapshot
      selection is one extra leading gather index; or
    * **per-snapshot CSR** — O(E) memory per snapshot for huge graphs,
      sharing the same ``d_max`` envelope so the ``k > 2`` key-matrix
      width (and hence the RNG draw shape) is uniform across snapshots.

    All backends share ``k``; building them validates ``k`` against
    every snapshot's minimum degree.
    """

    def __init__(
        self,
        adjacencies: Sequence[Adjacency],
        k: int,
        name: str = "auto",
    ) -> None:
        if not adjacencies:
            raise ParameterError("at least one snapshot is required")
        n = adjacencies[0].n
        d_max = max(a.d_max for a in adjacencies)
        if name not in ("auto", "dense", "csr"):
            raise ParameterError(
                f"unknown backend {name!r}; expected 'auto', 'dense' or 'csr'"
            )
        dense = name == "dense" or (
            name == "auto"
            and len(adjacencies) * n * d_max <= _DENSE_TABLE_LIMIT
        )
        self.d_max = d_max
        if dense:
            stack = np.zeros((len(adjacencies), n, d_max), dtype=np.int64)
            for s, adjacency in enumerate(adjacencies):
                padded = adjacency.padded_neighbors()
                stack[s, :, : padded.shape[1]] = padded
            stack.setflags(write=False)
            self.table = stack
            self.backends = [
                DenseBackend(adjacency, k, d_max=d_max, table=stack[s])
                for s, adjacency in enumerate(adjacencies)
            ]
        else:
            self.table = None
            self.backends = [
                CSRBackend(adjacency, k, d_max=d_max)
                for adjacency in adjacencies
            ]
        self.k = self.backends[0].k

    def __len__(self) -> int:
        return len(self.backends)

    def __getitem__(self, snapshot_id: int) -> SamplingBackend:
        return self.backends[snapshot_id]
