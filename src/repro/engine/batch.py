"""Batched replicas of the averaging processes as a ``(B, n)`` matrix.

A :class:`BatchAveragingProcess` holds ``B`` statistically independent
copies of one averaging process and advances *all* of them one time step
per vectorized round: one RNG draw of shape ``(B,)`` selects the acting
node (or directed edge) of every replica, one fancy-indexed gather reads
the old values, and one scatter writes the unilateral updates

    xi[b, u_b] = alpha * xi[b, u_b] + (1 - alpha)/k * sum_i xi[b, v_i]

The per-replica potential ``phi`` is tracked incrementally exactly as the
scalar :class:`~repro.core.base.AveragingProcess` does (pi-weighted first
and second moments, periodically resynchronised), so convergence masking
is O(B) per round: replicas whose ``phi`` crossed the threshold are
*frozen* — they stop being selected, stop consuming RNG draws and stop
contributing work, while the rest of the batch keeps stepping.

In law each replica's trajectory is identical to the scalar process (the
equivalence tests replay a shared :class:`~repro.core.schedule.Schedule`
through both and compare step for step); the speed comes purely from
amortising the Python interpreter over the batch dimension.
"""

from __future__ import annotations

import abc
from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule
from repro.engine.backend import SamplingBackend, select_backend
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator

#: Rounds between exact moment recomputations (kills float drift).
_RESYNC_EVERY = 4096


class BatchAveragingProcess(abc.ABC):
    """``B`` independent replicas of one averaging process.

    Parameters
    ----------
    graph:
        Connected undirected graph (``networkx.Graph`` or frozen
        :class:`Adjacency`).
    initial_values:
        Either one vector of length ``n`` (broadcast to every replica)
        or a ``(B, n)`` matrix giving each replica its own start.
    alpha:
        Self-weight in ``[0, 1)``.
    replicas:
        Batch size ``B``; required when ``initial_values`` is 1-D.
    seed:
        Seed / generator driving the whole batch.
    lazy:
        Lazy variant (Section 4): each replica flips a fair coin per
        step and performs no update on tails.
    backend:
        ``"auto"`` | ``"dense"`` | ``"csr"`` — see
        :mod:`repro.engine.backend`.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float] | np.ndarray,
        alpha: float,
        replicas: int | None = None,
        seed: SeedLike = None,
        lazy: bool = False,
        backend: str = "auto",
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        n = self.adjacency.n
        values = np.asarray(initial_values, dtype=np.float64)
        if values.ndim == 1:
            if replicas is None or replicas < 1:
                raise ParameterError(
                    "replicas must be a positive integer when initial_values is 1-D"
                )
            if values.shape != (n,):
                raise ParameterError(
                    f"initial_values must have shape ({n},), got {values.shape}"
                )
            values = np.broadcast_to(values, (replicas, n)).copy()
        elif values.ndim == 2:
            if values.shape[1] != n:
                raise ParameterError(
                    f"initial_values must have {n} columns, got {values.shape[1]}"
                )
            if replicas is not None and replicas != values.shape[0]:
                raise ParameterError(
                    f"replicas = {replicas} contradicts initial_values with "
                    f"{values.shape[0]} rows"
                )
            values = values.copy()
        else:
            raise ParameterError("initial_values must be 1-D or 2-D")

        if backend not in ("auto", "dense", "csr"):
            raise ParameterError(
                f"unknown backend {backend!r}; expected 'auto', 'dense' or 'csr'"
            )
        self.alpha = float(alpha)
        self.lazy = bool(lazy)
        self.rng = as_generator(seed)
        self.values = values
        self.t = 0
        self._pi = self.adjacency.stationary_pi()
        # Regular graphs have constant pi; skip the per-round gather.
        self._pi_common = (
            float(self._pi[0]) if self.adjacency.is_regular else None
        )
        self._backend_name = backend
        self._active = np.ones(self.replicas, dtype=bool)
        self._active_rows = np.arange(self.replicas)
        self._row_offsets = self._active_rows * n
        self._rounds_since_resync = 0
        self.resync_moments()

    # ------------------------------------------------------------------
    # Shape and activity
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def replicas(self) -> int:
        return self.values.shape[0]

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of replicas still being stepped (read-only copy)."""
        return self._active.copy()

    @property
    def num_active(self) -> int:
        return len(self._active_rows)

    def freeze(self, rows: np.ndarray | Sequence[int]) -> None:
        """Stop stepping the given replicas (idempotent).

        Frozen replicas keep their state; the driver freezes a replica
        the moment it converges so the rest of the batch no longer pays
        for it.
        """
        self._active[np.asarray(rows, dtype=np.int64)] = False
        self._active_rows = np.flatnonzero(self._active)
        self._row_offsets = self._active_rows * self.n

    # ------------------------------------------------------------------
    # Selection: the only model-specific ingredient
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _select_batch(
        self, rows: np.ndarray, row_offsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``(nodes, neighbour_means)`` for the given replica rows.

        ``row_offsets`` is ``rows * n``, the flat-index base of each
        row into ``values.reshape(-1)`` — precomputed so the hot path
        can use cheap 1-D gathers instead of 2-D fancy indexing.
        """

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_batch(self) -> None:
        """Advance every active replica by one time step."""
        self.t += 1
        rows = self._active_rows
        if rows.size == 0:
            return
        offsets = self._row_offsets
        if self.lazy:
            keep = self.rng.random(rows.size) >= 0.5
            rows = rows[keep]
            offsets = offsets[keep]
            if rows.size == 0:
                return
        nodes, means = self._select_batch(rows, offsets)
        self._apply_rows(rows, offsets, nodes, means)
        self._rounds_since_resync += 1
        if self._rounds_since_resync >= _RESYNC_EVERY:
            self.resync_moments()

    def _apply_rows(
        self,
        rows: np.ndarray,
        row_offsets: np.ndarray,
        nodes: np.ndarray,
        means: np.ndarray,
    ) -> None:
        """The unilateral update plus incremental moment bookkeeping."""
        flat = self.values.reshape(-1)
        idx = row_offsets + nodes
        old = flat[idx]
        new = self.alpha * old + (1.0 - self.alpha) * means
        flat[idx] = new
        weights = (
            self._pi_common if self._pi_common is not None else self._pi[nodes]
        )
        delta1 = weights * (new - old)
        delta2 = delta1 * (new + old)  # == weights * (new^2 - old^2)
        if rows.size == self.replicas:
            self._s1 += delta1
            self._s2 += delta2
        else:
            self._s1[rows] += delta1
            self._s2[rows] += delta2

    def run(self, steps: int) -> None:
        """Execute ``steps`` rounds (one time step per active replica each)."""
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step_batch()

    def run_until_phi(
        self, epsilon: float, max_steps: int
    ) -> np.ndarray:
        """Per-replica ``T_eps``: step until every replica has ``phi <= eps``.

        Returns an int array with each replica's hitting time counted
        from the current state, or ``-1`` where ``max_steps`` rounds
        elapsed first.  Convergence is checked every round (two O(B)
        vector operations), so hitting times are exact, matching
        :func:`repro.core.convergence.measure_t_eps`.  Replicas freeze
        as they converge.  Already-frozen replicas report ``0`` when
        their ``phi`` is within ``epsilon`` and ``-1`` otherwise (frozen
        means they will never be stepped again).
        """
        if epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {epsilon}")
        if max_steps < 0:
            raise ParameterError(f"max_steps must be non-negative, got {max_steps}")
        hit = np.full(self.replicas, -1, dtype=np.int64)
        start = self.t
        converged = self.phi <= epsilon
        hit[converged] = 0
        self.freeze(np.flatnonzero(converged))
        while self.num_active and self.t - start < max_steps:
            self.step_batch()
            rows = self._active_rows
            phi = np.maximum(self._s2[rows] - self._s1[rows] ** 2, 0.0)
            done = rows[phi <= epsilon]
            if len(done):
                hit[done] = self.t - start
                self.freeze(done)
        return hit

    def replay(self, schedule: Schedule) -> None:
        """Apply a recorded selection sequence to every replica.

        All replicas follow the *same* ``chi``; with identical initial
        rows this reproduces the scalar process bit for bit — the
        equivalence tests' coupling.
        """
        for step in schedule:
            self.apply_selection(step.node, step.sample)

    def apply_selection(self, node: int, sample: Sequence[int]) -> None:
        """Apply one shared ``(u, S)`` selection to every active replica.

        An empty ``sample`` is a lazy no-op (time still advances).
        """
        self.t += 1
        if len(sample) == 0:
            return
        rows = self._active_rows
        if len(rows) == 0:
            return
        sample = np.asarray(sample, dtype=np.int64)
        means = self.values[np.ix_(rows, sample)].mean(axis=1)
        nodes = np.full(len(rows), int(node), dtype=np.int64)
        self._apply_rows(rows, self._row_offsets, nodes, means)

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    def resync_moments(self) -> None:
        """Recompute the pi-weighted moments exactly from the state."""
        self._s1 = self.values @ self._pi
        self._s2 = (self.values * self.values) @ self._pi
        self._rounds_since_resync = 0

    @property
    def phi(self) -> np.ndarray:
        """Per-replica potential ``phi(xi_b(t))`` (Eq. 3)."""
        return np.maximum(self._s2 - self._s1 * self._s1, 0.0)

    @property
    def weighted_average(self) -> np.ndarray:
        """Per-replica martingale ``M_b(t) = <1, xi_b>_pi``."""
        return self._s1.copy()

    @property
    def simple_average(self) -> np.ndarray:
        """Per-replica simple average ``Avg_b(t)``."""
        return self.values.mean(axis=1)

    @property
    def discrepancy(self) -> np.ndarray:
        """Per-replica spread ``K_b = max_u xi_b,u - min_u xi_b,u``."""
        return self.values.max(axis=1) - self.values.min(axis=1)

    @property
    def pi(self) -> np.ndarray:
        return self._pi.copy()


class BatchNodeModel(BatchAveragingProcess):
    """Batched NodeModel (Definition 2.1): uniform node, uniform k-subset."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float] | np.ndarray,
        alpha: float,
        k: int = 1,
        replicas: int | None = None,
        seed: SeedLike = None,
        lazy: bool = False,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            graph,
            initial_values,
            alpha,
            replicas=replicas,
            seed=seed,
            lazy=lazy,
            backend=backend,
        )
        self._sampler: SamplingBackend = select_backend(
            self.adjacency, k, self._backend_name
        )
        self.k = self._sampler.k

    def _select_batch(self, rows, row_offsets):
        if self.k == 1:
            # One uniform draw yields both the node (integer part of
            # r * n) and the neighbour slot (fractional part), which are
            # independent — halving the RNG traffic of the hot path.
            scaled = self.rng.random(rows.size) * self.n
            nodes = scaled.astype(np.int64)
            means = self._sampler.pick_one(
                self.values, row_offsets, nodes, scaled - nodes
            )
            return nodes, means
        nodes = self.rng.integers(self.n, size=rows.size)
        means = self._sampler.neighbour_means(
            self.values, rows, row_offsets, nodes, self.rng
        )
        return nodes, means

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchNodeModel(B={self.replicas}, n={self.n}, alpha={self.alpha}, "
            f"k={self.k}, lazy={self.lazy}, t={self.t})"
        )


class BatchEdgeModel(BatchAveragingProcess):
    """Batched EdgeModel (Definition 2.3): uniform directed edge."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float] | np.ndarray,
        alpha: float,
        replicas: int | None = None,
        seed: SeedLike = None,
        lazy: bool = False,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            graph,
            initial_values,
            alpha,
            replicas=replicas,
            seed=seed,
            lazy=lazy,
            backend=backend,
        )
        self._tails = self.adjacency.edge_tails
        self._heads = self.adjacency.edge_heads

    def _select_batch(self, rows, row_offsets):
        edges = self.rng.integers(len(self._tails), size=rows.size)
        nodes = self._tails[edges]
        means = self.values.reshape(-1)[row_offsets + self._heads[edges]]
        return nodes, means

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchEdgeModel(B={self.replicas}, n={self.n}, m={self.adjacency.m}, "
            f"alpha={self.alpha}, lazy={self.lazy}, t={self.t})"
        )
