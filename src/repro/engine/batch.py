"""Batched replicas of the averaging processes as a ``(B, n)`` matrix.

A :class:`BatchAveragingProcess` holds ``B`` statistically independent
copies of one averaging process and advances *all* of them per
vectorized call: one RNG draw selects the acting node (or directed
edge) of every replica, one fancy-indexed gather reads the old values,
and one scatter writes the unilateral updates

    xi[b, u_b] = alpha * xi[b, u_b] + (1 - alpha)/k * sum_i xi[b, v_i]

Stepping is delegated to a pluggable *kernel*
(:mod:`repro.engine.kernels`): ``"numpy"`` is the original per-round
path (one RNG call plus a dozen NumPy dispatches per time step, kept as
the bit-compatible PR-1 reference), while the block kernels
(``"fused"``, ``"jit"``, the threaded ``"jit-par"``, and the array-API
``"cupy"`` backend) advance the batch by blocks of :attr:`block_rounds`
rounds per Python call — all block randomness pre-drawn in one C-order
call, all value-independent index arithmetic hoisted out of the round
loop, and (for the numba kernels) the whole block executed by one
compiled loop over the same variates, so fused, jit and jit-par
trajectories are bit-identical at a fixed seed (the device backend
promises statistical parity instead; see
:mod:`repro.engine.kernels`).

The per-replica potential ``phi`` is tracked via pi-weighted first and
second moments exactly as the scalar
:class:`~repro.core.base.AveragingProcess` does.  The block kernels
record per-round moment increments, so :meth:`run_until_phi` checks
convergence once per block, reconstructs the within-block phi
trajectory, and *backdates* each replica's hitting time to the exact
crossing round — per-round-exact semantics at per-block cost.
Converged replicas are *frozen*: they stop being stepped and stop
contributing work (block kernels still draw their variate columns and
discard them, which keeps every replica's trajectory independent of
the freeze pattern and of the block size).

In law each replica's trajectory is identical to the scalar process
(the equivalence tests replay a shared
:class:`~repro.core.schedule.Schedule` through both and compare step
for step); the speed comes purely from amortising the Python
interpreter over the batch and block dimensions.
"""

from __future__ import annotations

import abc
from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule
from repro.engine.backend import (
    SamplingBackend,
    SnapshotBackends,
    select_backend,
)
from repro.engine.dynamic import GraphSchedule
from repro.engine.kernels import (
    DEFAULT_BLOCK_ROUNDS,
    BlockPlan,
    autopick_kernel,
    configure_threads,
    make_block_executor,
    resolve_kernel,
)
from repro.engine.selection import (
    RecordedSelections,
    draw_edge_block,
    draw_node_block,
    normalise_picked,
)
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.obs.metrics import METRICS
from repro.obs.trace import active_tracer
from repro.rng import SeedLike, as_generator

#: Rounds between exact moment recomputations (kills float drift).
_RESYNC_EVERY = 4096

#: Per-array element budget of one block's scratch matrices; blocks are
#: shortened so huge batches do not allocate unbounded (R, B) planes.
_BLOCK_BUDGET = 2_097_152


class BatchAveragingProcess(abc.ABC):
    """``B`` independent replicas of one averaging process.

    Parameters
    ----------
    graph:
        Connected undirected graph (``networkx.Graph`` or frozen
        :class:`Adjacency`), or a
        :class:`~repro.engine.dynamic.GraphSchedule` for a time-varying
        topology.  With a schedule, round ``t`` runs on
        ``schedule.adjacency_at(t)``: kernel blocks are clamped so they
        never straddle a switch boundary (the same discipline as the
        periodic exact resync), the pi-weighted moments are resynced
        exactly whenever a switch changes ``pi`` (a no-op for
        regular-equal-degree snapshot sets, whose uniform ``pi`` keeps
        the simple average a martingale across switches), and chunked
        convergence detection stays exact and ``block_rounds``-invariant.
    initial_values:
        Either one vector of length ``n`` (broadcast to every replica)
        or a ``(B, n)`` matrix giving each replica its own start.
    alpha:
        Self-weight in ``[0, 1)``.
    replicas:
        Batch size ``B``; required when ``initial_values`` is 1-D.
    seed:
        Seed / generator driving the whole batch.
    lazy:
        Lazy variant (Section 4): each replica flips a fair coin per
        step and performs no update on tails.
    backend:
        ``"auto"`` | ``"dense"`` | ``"csr"`` — see
        :mod:`repro.engine.backend`.
    kernel:
        One of :data:`~repro.engine.kernels.KERNEL_CHOICES`.
        ``"auto"`` (default) resolves via the measured regime picker
        (:func:`~repro.engine.kernels.autopick_kernel`): the persisted
        calibration table keyed on ``(kind, k, n, B)`` when one exists,
        else the jit-if-numba heuristic.  The resolved name, the pick
        reason (``calibrated`` / ``heuristic`` / ``explicit`` /
        ``fallback``) and the effective thread count are exposed as
        :attr:`kernel`, :attr:`kernel_reason` and
        :attr:`effective_threads`.
    threads:
        Thread budget of the ``"jit-par"`` kernel (``None`` = all
        available, as capped by the multiprocessing sharder); other
        kernels ignore it.
    """

    #: Calibration/workload kind; overridden by the edge model.
    _model_kind = "node"

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float] | np.ndarray,
        alpha: float,
        replicas: int | None = None,
        seed: SeedLike = None,
        lazy: bool = False,
        backend: str = "auto",
        kernel: str = "auto",
        threads: int | None = None,
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        if isinstance(graph, GraphSchedule):
            self.graph_schedule: GraphSchedule | None = graph
            self.adjacency = graph.snapshots[0]
        else:
            self.graph_schedule = None
            self.adjacency = (
                graph
                if isinstance(graph, Adjacency)
                else Adjacency.from_graph(graph)
            )
        n = self.adjacency.n
        values = np.asarray(initial_values, dtype=np.float64)
        if values.ndim == 1:
            if replicas is None or replicas < 1:
                raise ParameterError(
                    "replicas must be a positive integer when initial_values is 1-D"
                )
            if values.shape != (n,):
                raise ParameterError(
                    f"initial_values must have shape ({n},), got {values.shape}"
                )
            values = np.broadcast_to(values, (replicas, n)).copy()
        elif values.ndim == 2:
            if values.shape[1] != n:
                raise ParameterError(
                    f"initial_values must have {n} columns, got {values.shape[1]}"
                )
            if replicas is not None and replicas != values.shape[0]:
                raise ParameterError(
                    f"replicas = {replicas} contradicts initial_values with "
                    f"{values.shape[0]} rows"
                )
            values = values.copy()
        else:
            raise ParameterError("initial_values must be 1-D or 2-D")

        if backend not in ("auto", "dense", "csr"):
            raise ParameterError(
                f"unknown backend {backend!r}; expected 'auto', 'dense' or 'csr'"
            )
        self.alpha = float(alpha)
        self.lazy = bool(lazy)
        self.rng = as_generator(seed)
        self.values = values
        self.t = 0
        self._snapshot_id = 0
        if self.graph_schedule is not None:
            self._pis = [
                a.stationary_pi() for a in self.graph_schedule.snapshots
            ]
            self._pi_commons = [
                float(pi[0]) if a.is_regular else None
                for a, pi in zip(self.graph_schedule.snapshots, self._pis)
            ]
            self._pi = self._pis[0]
            self._pi_common = self._pi_commons[0]
        else:
            self._pi = self.adjacency.stationary_pi()
            # Regular graphs have constant pi; skip the per-round gather.
            self._pi_common = (
                float(self._pi[0]) if self.adjacency.is_regular else None
            )
        self._backend_name = backend
        self.kernel_requested = kernel
        self.threads = threads
        self._finalise_kernel()
        self.block_rounds = DEFAULT_BLOCK_ROUNDS
        self._block_exec = make_block_executor(self.kernel)
        # The flat view of `values` every gather/scatter indexes into.
        # `values` is allocated once and mutated in place, so the view
        # stays valid for the batch's lifetime; it is refreshed on
        # freeze/resync purely as a cheap invariant (satellite of the
        # kernels PR: never rebuild it per round).
        self._flat = self.values.reshape(-1)
        self._moments_dirty = False
        self._active = np.ones(self.replicas, dtype=bool)
        self._active_rows = np.arange(self.replicas)
        self._row_offsets = self._active_rows * n
        self._coef = None
        self._rounds_since_resync = 0
        self._recording: list | None = None
        self.resync_moments()
        # (B, n) value state plus the two (B,) moment accumulators: the
        # live footprint the adaptive governor will budget against.
        METRICS.peak(
            "engine.state_peak_bytes",
            self.values.nbytes + self._s1.nbytes + self._s2.nbytes,
        )

    def _finalise_kernel(self) -> None:
        """Resolve the requested kernel with full workload context.

        ``"auto"`` goes through the measured regime picker
        (:func:`~repro.engine.kernels.autopick_kernel`) keyed on this
        batch's ``(kind, k, n, B)``; the pick and its reason are
        counted on the ``engine.kernel_autopick`` counters so traced
        runs and sweeps can report which backend actually ran per cell.
        Explicit requests resolve as before (with the visible fused
        fallback for numba kernels in numba-less processes).  The
        thread budget is applied here, once per batch.
        """
        requested = self.kernel_requested
        if requested == "auto":
            picked, reason = autopick_kernel(
                self._model_kind,
                getattr(self, "k", 1),
                self.adjacency.n,
                self.values.shape[0],
            )
            METRICS.count("engine.kernel_autopick")
            METRICS.count(f"engine.kernel_autopick.{picked}.{reason}")
        else:
            picked = resolve_kernel(requested)
            reason = "explicit" if picked == requested else "fallback"
        self.kernel = picked
        self.kernel_reason = reason
        self.effective_threads = (
            configure_threads(self.threads) if picked == "jit-par" else 1
        )

    def _sync_kernel_state(self) -> None:
        """Download device-resident kernel state back into ``values``.

        A no-op for host-memory kernels; for the array-API backend this
        is the hand-back point after free-running blocks (see
        :class:`~repro.engine.kernels.ArrayApiBlockExecutor`).
        """
        sync = getattr(self._block_exec, "sync_host", None)
        if sync is not None:
            sync(self._flat)

    # ------------------------------------------------------------------
    # Shape and activity
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def replicas(self) -> int:
        return self.values.shape[0]

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of replicas still being stepped (read-only copy)."""
        return self._active.copy()

    @property
    def num_active(self) -> int:
        return len(self._active_rows)

    def freeze(self, rows: np.ndarray | Sequence[int]) -> None:
        """Stop stepping the given replicas (idempotent).

        Frozen replicas keep their state; the driver freezes a replica
        the moment it converges so the rest of the batch no longer pays
        for it.
        """
        self._active[np.asarray(rows, dtype=np.int64)] = False
        self._active_rows = np.flatnonzero(self._active)
        self._row_offsets = self._active_rows * self.n
        self._coef = None
        self._flat = self.values.reshape(-1)

    # ------------------------------------------------------------------
    # Selection recording (the dual coupling's input)
    # ------------------------------------------------------------------
    def record_selections(self, enable: bool = True) -> None:
        """Start (or stop) recording every subsequent selection.

        While enabled, each executed round's per-replica selections
        ``(node, neighbour sample)`` are kept — under every kernel, since
        both the per-round and the block paths record before applying —
        and :meth:`recorded_selections` returns them as one
        :class:`~repro.engine.selection.RecordedSelections` stream.  The
        dual engine replays that stream forwards (conformance) or
        reversed (the Lemma 5.2 coupling).  Frozen replicas' and lazy
        no-op rounds appear as ``keep = False`` entries.
        """
        self._recording = [] if enable else None

    def recorded_selections(self) -> RecordedSelections:
        """The selection stream recorded since :meth:`record_selections`."""
        if self._recording is None:
            raise ParameterError(
                "selection recording is not enabled; call "
                "record_selections() before stepping"
            )
        if not self._recording:
            raise ParameterError("no rounds executed while recording")
        return RecordedSelections.concatenate(self._recording)

    @property
    def _selection_width(self) -> int:
        """Sample size of one recorded selection (k for the node model)."""
        return getattr(self, "k", 1)

    def _record_block(self, nodes, picked, keep, rows) -> None:
        """Record one block's active-row selections in full-batch form."""
        picked = normalise_picked(picked)
        if rows.size == self.replicas:
            self._record_append(
                nodes.copy(), picked.copy(), None if keep is None else keep.copy()
            )
            return
        rounds = nodes.shape[0]
        full_nodes = np.zeros((rounds, self.replicas), dtype=np.int64)
        full_picked = np.zeros(
            (rounds, self.replicas, picked.shape[2]), dtype=np.int64
        )
        full_keep = np.zeros((rounds, self.replicas), dtype=bool)
        full_nodes[:, rows] = nodes
        full_picked[:, rows] = picked
        full_keep[:, rows] = True if keep is None else keep
        self._record_append(full_nodes, full_picked, full_keep)

    def _record_append(self, nodes, picked, keep) -> None:
        self._recording.append(RecordedSelections(nodes, picked, keep))

    def _record_noop_round(self) -> None:
        """Record a round in which no replica performed an update."""
        width = self._selection_width
        self._record_append(
            np.zeros((1, self.replicas), dtype=np.int64),
            np.zeros((1, self.replicas, width), dtype=np.int64),
            np.zeros((1, self.replicas), dtype=bool),
        )

    # ------------------------------------------------------------------
    # Dynamic topologies
    # ------------------------------------------------------------------
    def _activate_snapshot(self, snapshot_id: int) -> None:
        """Make the given schedule snapshot the active topology.

        Concrete models extend this with their own per-snapshot state
        (the sampling backend, the directed edge list).
        """
        self._snapshot_id = snapshot_id
        self.adjacency = self.graph_schedule.snapshots[snapshot_id]
        self._pi = self._pis[snapshot_id]
        self._pi_common = self._pi_commons[snapshot_id]

    def _sync_snapshot(self) -> None:
        """Align the active snapshot with the round about to execute.

        No-op on static graphs and within a segment.  Crossing a switch
        boundary that changes ``pi`` triggers an exact moment resync —
        the switch analogue of the periodic resync, and the reason phi
        at round ``t`` is always measured against the snapshot governing
        round ``t``, exactly as the scalar wrapper's rebuilt tracker
        does.  Regular-equal-degree snapshot sets share one ``pi``, so
        their moments (and the martingale ``<1, xi>_pi``) carry across
        switches untouched.
        """
        if self.graph_schedule is None:
            return
        snapshot_id = self.graph_schedule.snapshot_at(self.t)
        if snapshot_id == self._snapshot_id:
            return
        with active_tracer().span(
            "engine.snapshot_switch", t=self.t, snapshot=snapshot_id
        ):
            pi_changed = not np.array_equal(self._pis[snapshot_id], self._pi)
            self._activate_snapshot(snapshot_id)
            if pi_changed:
                self.resync_moments()
        METRICS.count("engine.snapshot_switches")

    # ------------------------------------------------------------------
    # Selection: the only model-specific ingredient
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _select_batch(
        self, rows: np.ndarray, row_offsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``(nodes, neighbour_means, picked)`` for the replica rows.

        ``row_offsets`` is ``rows * n``, the flat-index base of each
        row into the cached flat view — precomputed so the hot path
        can use cheap 1-D gathers instead of 2-D fancy indexing.
        ``picked`` holds the gathered neighbour ids (``(A,)`` or
        ``(A, k)``); selection recording consumes it, the update path
        only needs the means.
        """

    @abc.abstractmethod
    def _plan_block(self, block_rounds: int) -> BlockPlan:
        """Precompute one R-round block for the fused/jit kernels.

        Draws the block's randomness in one C-order call **for the full
        batch** (frozen replicas' columns are discarded), then computes
        every value-independent quantity — selections, neighbour picks,
        flat gather/scatter indices, pi weights, lazy coins — restricted
        to the active rows.  See :mod:`repro.engine.kernels` for the
        draw-order contract per shape.
        """

    def _plan_width(self) -> int:
        """Scratch elements per (round, replica) a block plan allocates."""
        return 1

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_batch(self) -> None:
        """Advance every active replica by one time step.

        This is the legacy per-round path — exactly the ``"numpy"``
        kernel.  Block kernels do not route through it (their RNG
        layout is block-shaped), but it remains valid to call on any
        batch.
        """
        self._sync_snapshot()
        self.t += 1
        rows = self._active_rows
        if rows.size == 0:
            if self._recording is not None:
                self._record_noop_round()
            return
        offsets = self._row_offsets
        if self.lazy:
            keep = self.rng.random(rows.size) >= 0.5
            rows = rows[keep]
            offsets = offsets[keep]
            if rows.size == 0:
                if self._recording is not None:
                    self._record_noop_round()
                return
        nodes, means, picked = self._select_batch(rows, offsets)
        if self._recording is not None:
            flat_picked = picked if picked.ndim == 2 else picked[:, None]
            self._record_block(
                nodes[None, :], flat_picked[None, :, :], None, rows
            )
        self._apply_rows(rows, offsets, nodes, means)
        self._rounds_since_resync += 1
        if self._rounds_since_resync >= _RESYNC_EVERY:
            self.resync_moments()

    def _apply_rows(
        self,
        rows: np.ndarray,
        row_offsets: np.ndarray,
        nodes: np.ndarray,
        means: np.ndarray,
    ) -> None:
        """The unilateral update plus incremental moment bookkeeping."""
        flat = self._flat
        idx = row_offsets + nodes
        old = flat[idx]
        new = self.alpha * old + (1.0 - self.alpha) * means
        flat[idx] = new
        if self._moments_dirty:
            # Moments will be resynchronised exactly on next read; do
            # not waste work maintaining a stale accumulator.
            return
        weights = (
            self._pi_common if self._pi_common is not None else self._pi[nodes]
        )
        delta1 = weights * (new - old)
        delta2 = delta1 * (new + old)  # == weights * (new^2 - old^2)
        if rows.size == self.replicas:
            self._s1 += delta1
            self._s2 += delta2
        else:
            self._s1[rows] += delta1
            self._s2[rows] += delta2

    def _block_size(self, remaining: int) -> int:
        """Rounds for the next block: configured size, memory-bounded,
        and never straddling a graph-schedule switch boundary (callers
        must have synced the active snapshot first)."""
        block = max(1, int(self.block_rounds))
        budget = max(1, _BLOCK_BUDGET // (self.replicas * self._plan_width()))
        block = min(block, remaining, budget)
        if self.graph_schedule is not None:
            block = min(block, self.graph_schedule.rounds_until_switch(self.t))
        return block

    def run(self, steps: int) -> None:
        """Execute ``steps`` rounds (one time step per active replica each).

        Block kernels mark the moment accumulators dirty and
        resynchronise them exactly, on demand, at the next observable
        read — cheaper and *more* accurate than per-round increments.
        """
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        if self._block_exec is None:
            # run() never freezes replicas, so the whole loop's work is
            # known up front — one counter update, not one per round.
            METRICS.count("engine.replica_steps", steps * self.num_active)
            if steps:
                METRICS.count("engine.rng_blocks", steps)
                METRICS.count("engine.blocks.numpy")
            for _ in range(steps):
                self.step_batch()
            return
        remaining = steps
        while remaining > 0:
            if self.num_active == 0:
                if self._recording is not None:
                    for _ in range(remaining):
                        self._record_noop_round()
                self.t += remaining
                break
            self._sync_snapshot()
            rounds = self._block_size(remaining)
            plan = self._plan_block(rounds)
            self._block_exec(self._flat, plan, self.alpha, False)
            self._count_block(rounds)
            self._moments_dirty = True
            self.t += rounds
            remaining -= rounds
        # Device-state kernels stay resident across the blocks above and
        # hand authority back to the host here, where callers may read.
        self._sync_kernel_state()

    def _count_block(self, rounds: int) -> None:
        """Per-block work accounting (amortised: never per round)."""
        METRICS.count("engine.replica_steps", rounds * self.num_active)
        METRICS.count("engine.rng_blocks")
        METRICS.count(f"engine.blocks.{self.kernel}")

    def run_until_phi(self, epsilon: float, max_steps: int) -> np.ndarray:
        """Per-replica ``T_eps``: step until every replica has ``phi <= eps``.

        Returns an int array with each replica's hitting time counted
        from the current state, or ``-1`` where ``max_steps`` rounds
        elapsed first.  Hitting times are exact, matching
        :func:`repro.core.convergence.measure_t_eps`: the ``"numpy"``
        kernel checks every round; block kernels check once per block
        against the reconstructed within-block phi trajectory and
        *backdate* each replica to its exact crossing round (see
        :meth:`_run_until_phi_blocked`).  Replicas freeze as they
        converge.  Already-frozen replicas report ``0`` when their
        ``phi`` is within ``epsilon`` and ``-1`` otherwise (frozen
        means they will never be stepped again).
        """
        if epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {epsilon}")
        if max_steps < 0:
            raise ParameterError(f"max_steps must be non-negative, got {max_steps}")
        self._ensure_moments()
        hit = np.full(self.replicas, -1, dtype=np.int64)
        converged = self.phi <= epsilon
        hit[converged] = 0
        self.freeze(np.flatnonzero(converged))
        if self._block_exec is None:
            return self._run_until_phi_perround(epsilon, max_steps, hit)
        return self._run_until_phi_blocked(epsilon, max_steps, hit)

    def _run_until_phi_perround(
        self, epsilon: float, max_steps: int, hit: np.ndarray
    ) -> np.ndarray:
        """The PR-1 per-round detection loop (``"numpy"`` kernel)."""
        start = self.t
        replica_steps = 0
        while self.num_active and self.t - start < max_steps:
            replica_steps += self.num_active
            self.step_batch()
            rows = self._active_rows
            phi = np.maximum(self._s2[rows] - self._s1[rows] ** 2, 0.0)
            done = rows[phi <= epsilon]
            if len(done):
                hit[done] = self.t - start
                self.freeze(done)
        if replica_steps:
            METRICS.count("engine.replica_steps", replica_steps)
            METRICS.count("engine.rng_blocks", self.t - start)
            METRICS.count("engine.blocks.numpy")
        return hit

    def _run_until_phi_blocked(
        self, epsilon: float, max_steps: int, hit: np.ndarray
    ) -> np.ndarray:
        """Chunked detection with exact backdating (block kernels).

        Each block records per-round moment increments ``(d1, d2)``
        derived from the written entries' old/new values.  The
        within-block moment trajectories are the left folds

            s1[r] = (((s1_0 + d1_1) + d1_2) + ... + d1_r)

        computed by one in-place ``cumsum`` seeded with the pre-block
        moments — the *same* floating-point fold the per-round check
        performs, so ``phi[r] = max(s2[r] - s1[r]^2, 0)`` reproduces
        the per-round sequence exactly and the first ``phi[r] <= eps``
        index is the exact hitting round.  A replica crossing mid-block
        is then *rewound* to its crossing-round state (each over-stepped
        round's old value was recorded, so undoing the writes in reverse
        order is exact) before it freezes, and its moments are set from
        the trajectory at the crossing.  Blocks never straddle the
        periodic exact-resync boundary, and when one ends on it the
        final round's phi is re-evaluated post-resync — again matching
        what per-round checking would have seen.  Hitting times *and*
        the frozen states are therefore invariant to ``block_rounds``
        (one realized trajectory, detected at different granularities),
        except under the rejection-sampled ``k > 2`` regime whose
        variate *count* is data-dependent (see
        :mod:`repro.engine.kernels`).
        """
        start = self.t
        tracer = active_tracer()
        while self.num_active and self.t - start < max_steps:
            self._sync_snapshot()
            rounds = self._block_size(max_steps - (self.t - start))
            rounds = min(rounds, _RESYNC_EVERY - self._rounds_since_resync)
            rows = self._active_rows
            plan = self._plan_block(rounds)
            old_blk, new_blk = self._block_exec(self._flat, plan, self.alpha, True)
            self._count_block(rounds)
            self.t += rounds
            self._rounds_since_resync += rounds

            d1 = plan.weights * (new_blk - old_blk)
            d2 = d1 * (new_blk + old_blk)
            traj1 = np.empty((rounds + 1, rows.size))
            traj1[0] = self._s1[rows]
            traj1[1:] = d1
            np.cumsum(traj1, axis=0, out=traj1)
            traj2 = np.empty((rounds + 1, rows.size))
            traj2[0] = self._s2[rows]
            traj2[1:] = d2
            np.cumsum(traj2, axis=0, out=traj2)
            self._s1[rows] = traj1[-1]
            self._s2[rows] = traj2[-1]
            phi = np.maximum(traj2[1:] - traj1[1:] ** 2, 0.0)
            resynced = self._rounds_since_resync >= _RESYNC_EVERY
            if resynced:
                self.resync_moments()
                phi[-1] = np.maximum(
                    self._s2[rows] - self._s1[rows] ** 2, 0.0
                )
            below = phi <= epsilon
            crossed = below.any(axis=0)
            if crossed.any():
                first = below.argmax(axis=0)
                done = rows[crossed]
                hit[done] = (self.t - rounds - start) + first[crossed] + 1
                self._rewind_crossed(
                    plan, old_blk, traj1, traj2, rows, crossed, first, resynced
                )
                self.freeze(done)
            if tracer.enabled:
                # Chunk-boundary stream samples: the block already ended
                # and phi was already computed, so recording reads what
                # exists — it cannot perturb the trajectory or the RNG.
                tracer.record("engine.phi_max", self.t, float(phi[-1].max()))
                tracer.record(
                    "engine.active_replicas", self.t, self.num_active
                )
        return hit

    def _rewind_crossed(
        self,
        plan: BlockPlan,
        old_blk: np.ndarray,
        traj1: np.ndarray,
        traj2: np.ndarray,
        rows: np.ndarray,
        crossed: np.ndarray,
        first: np.ndarray,
        resynced: bool,
    ) -> None:
        """Restore crossed replicas to their exact crossing-round state.

        ``first[j]`` indexes the phi row of column ``j``'s crossing, so
        rounds ``first[j]+1 .. R-1`` (0-based block rows) over-stepped
        it.  Each such round wrote exactly one entry whose prior value
        sits in ``old_blk``; assigning the old values back in *reverse*
        round order is an exact undo (on duplicate indices NumPy's
        fancy assignment lets the last — i.e. earliest-round — value
        win).  Moments are reset from the recorded trajectory at the
        crossing, except for a replica that crossed on a resync
        boundary's final round, whose exactly-resynchronised moments
        are already in place.
        """
        flat = self._flat
        rounds = old_blk.shape[0]
        keep = plan.keep
        for j in np.flatnonzero(crossed):
            cut = first[j] + 1
            if cut < rounds:
                undo = slice(rounds - 1, cut - 1, -1)
                write = plan.write_idx[undo, j]
                values = old_blk[undo, j]
                if keep is not None:
                    mask = keep[undo, j]
                    write = write[mask]
                    values = values[mask]
                flat[write] = values
            row = rows[j]
            if not (resynced and cut == rounds):
                self._s1[row] = traj1[cut, j]
                self._s2[row] = traj2[cut, j]

    def replay(self, schedule: Schedule) -> None:
        """Apply a recorded selection sequence to every replica.

        All replicas follow the *same* ``chi``; with identical initial
        rows this reproduces the scalar process bit for bit — the
        equivalence tests' coupling.  Replay is kernel-independent: it
        never draws RNG, so every kernel reproduces PR-1 trajectories
        bit for bit through this path.
        """
        for step in schedule:
            self.apply_selection(step.node, step.sample)

    def apply_selection(self, node: int, sample: Sequence[int]) -> None:
        """Apply one shared ``(u, S)`` selection to every active replica.

        An empty ``sample`` is a lazy no-op (time still advances).  On a
        dynamic topology the snapshot stream advances with ``t`` (the
        step's moment weights come from the snapshot governing it), so
        replaying a recorded dynamic schedule reproduces the scalar
        wrapper bit for bit.
        """
        self._sync_snapshot()
        self.t += 1
        if len(sample) == 0:
            return
        rows = self._active_rows
        if len(rows) == 0:
            return
        sample = np.asarray(sample, dtype=np.int64)
        means = self.values[np.ix_(rows, sample)].mean(axis=1)
        nodes = np.full(len(rows), int(node), dtype=np.int64)
        self._apply_rows(rows, self._row_offsets, nodes, means)

    # ------------------------------------------------------------------
    # Block-plan helpers shared by the concrete models
    # ------------------------------------------------------------------
    def _coef_vector(self, active: int, k: int) -> np.ndarray:
        """``[beta/k ... | alpha ...]`` matching a packed cat-index row."""
        if self._coef is None or self._coef.size != (k + 1) * active:
            self._coef = np.concatenate(
                [
                    np.full(k * active, (1.0 - self.alpha) / k),
                    np.full(active, self.alpha),
                ]
            )
        return self._coef

    def _pack_plan(
        self,
        nodes: np.ndarray,
        picked: np.ndarray | Sequence[np.ndarray],
        keep: np.ndarray | None,
    ) -> BlockPlan:
        """Assemble a kernel plan from selections for the active rows.

        ``nodes`` is the per-(round, active-row) written node and
        ``picked`` the gathered neighbour(s): one ``(R, A)`` matrix for
        single-gather shapes, or ``k`` of them (a sequence, or stacked
        as ``(R, A, k)``).  The non-lazy fast path packs all flat index
        matrices into one ``[neighbours... | write]`` block so the
        kernels' inner loop needs a single fused gather per round.
        """
        offsets = self._row_offsets
        weights: np.ndarray | float
        if self._pi_common is not None:
            weights = self._pi_common
        else:
            weights = self._pi[nodes]
        rounds, active = nodes.shape
        if isinstance(picked, np.ndarray) and picked.ndim == 2:
            groups = (picked,)
        elif isinstance(picked, np.ndarray):
            groups = tuple(picked[:, :, j] for j in range(picked.shape[2]))
        else:
            groups = tuple(picked)
        k = len(groups)
        if keep is None:
            cat = np.empty((rounds, (k + 1) * active), dtype=np.int64)
            for j, group in enumerate(groups):
                np.add(
                    offsets[None, :],
                    group,
                    out=cat[:, j * active:(j + 1) * active],
                )
            np.add(offsets[None, :], nodes, out=cat[:, k * active:])
            return BlockPlan(
                write_idx=cat[:, k * active:],
                cat_idx=cat,
                coef=self._coef_vector(active, k),
                weights=weights,
                k=k,
            )
        if k == 1:
            gather_idx = offsets[None, :] + groups[0]
        else:
            gather_idx = offsets[None, :, None] + np.stack(groups, axis=-1)
        return BlockPlan(
            write_idx=offsets[None, :] + nodes,
            gather_idx=gather_idx,
            weights=weights,
            keep=keep,
            k=k,
        )

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    def _ensure_moments(self) -> None:
        """Resynchronise the moment accumulators if a block left them stale.

        Also aligns the active snapshot first, so observables read at a
        switch boundary use the snapshot (and ``pi``) of the *next*
        round — matching the scalar wrapper, which rebuilds its tracker
        the moment a segment ends.
        """
        self._sync_snapshot()
        if self._moments_dirty:
            self.resync_moments()

    def resync_moments(self) -> None:
        """Recompute the pi-weighted moments exactly from the state."""
        self._sync_kernel_state()
        self._flat = self.values.reshape(-1)
        self._s1 = self.values @ self._pi
        self._s2 = (self.values * self.values) @ self._pi
        self._rounds_since_resync = 0
        self._moments_dirty = False

    @property
    def phi(self) -> np.ndarray:
        """Per-replica potential ``phi(xi_b(t))`` (Eq. 3)."""
        self._ensure_moments()
        return np.maximum(self._s2 - self._s1 * self._s1, 0.0)

    @property
    def weighted_average(self) -> np.ndarray:
        """Per-replica martingale ``M_b(t) = <1, xi_b>_pi``."""
        self._ensure_moments()
        return self._s1.copy()

    @property
    def simple_average(self) -> np.ndarray:
        """Per-replica simple average ``Avg_b(t)``."""
        return self.values.mean(axis=1)

    @property
    def discrepancy(self) -> np.ndarray:
        """Per-replica spread ``K_b = max_u xi_b,u - min_u xi_b,u``."""
        return self.values.max(axis=1) - self.values.min(axis=1)

    @property
    def pi(self) -> np.ndarray:
        return self._pi.copy()


class BatchNodeModel(BatchAveragingProcess):
    """Batched NodeModel (Definition 2.1): uniform node, uniform k-subset."""

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float] | np.ndarray,
        alpha: float,
        k: int = 1,
        replicas: int | None = None,
        seed: SeedLike = None,
        lazy: bool = False,
        backend: str = "auto",
        kernel: str = "auto",
        threads: int | None = None,
    ) -> None:
        # Set before base init so the kernel auto-pick keys on k.
        self.k = int(k)
        super().__init__(
            graph,
            initial_values,
            alpha,
            replicas=replicas,
            seed=seed,
            lazy=lazy,
            backend=backend,
            kernel=kernel,
            threads=threads,
        )
        if self.graph_schedule is not None:
            # Stacked multi-snapshot form: one (S, n, d_max) dense table
            # (or per-snapshot CSR) sharing the schedule-wide d_max, so
            # snapshot activation swaps a view, never rebuilds a table.
            self._samplers = SnapshotBackends(
                self.graph_schedule.snapshots, k, self._backend_name
            )
            self._sampler: SamplingBackend = self._samplers[0]
        else:
            self._samplers = None
            self._sampler = select_backend(
                self.adjacency, k, self._backend_name
            )
        self.k = self._sampler.k

    def _activate_snapshot(self, snapshot_id: int) -> None:
        super()._activate_snapshot(snapshot_id)
        self._sampler = self._samplers[snapshot_id]

    def _select_batch(self, rows, row_offsets):
        if self.k == 1:
            # One uniform draw yields both the node (integer part of
            # r * n) and the neighbour slot (fractional part), which are
            # independent — halving the RNG traffic of the hot path.
            scaled = self.rng.random(rows.size) * self.n
            nodes = scaled.astype(np.int64)
            picked = self._sampler.pick_block(nodes, scaled - nodes)
            return nodes, self._flat[row_offsets + picked], picked
        # The subset draw mirrors SamplingBackend.neighbour_means (same
        # variates in the same order) but keeps the picked ids so the
        # recording path can observe them.
        nodes = self.rng.integers(self.n, size=rows.size)
        keys = None
        if self._sampler.uses_subset_keys:
            keys = self.rng.random((len(nodes), self._sampler.d_max))
        picked = self._sampler.pick_subsets(nodes, keys, self.rng)
        means = self.values[rows[:, None], picked].mean(axis=1)
        return nodes, means, picked

    def _plan_width(self) -> int:
        if self.k <= 2:
            return 1
        if self._sampler.uses_subset_keys:
            return self._sampler.d_max + 1
        return self.k

    def _plan_block(self, block_rounds: int) -> BlockPlan:
        # The draw itself lives in repro.engine.selection so the dual
        # engine consumes bit-identical selection streams at a fixed
        # seed (see draw_node_block for the per-shape decode contract).
        rows = self._active_rows
        nodes, picked, keep = draw_node_block(
            self._sampler,
            self.rng,
            self.n,
            block_rounds,
            self.replicas,
            rows,
            self.lazy,
        )
        if self._recording is not None:
            self._record_block(nodes, picked, keep, rows)
        return self._pack_plan(nodes, picked, keep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchNodeModel(B={self.replicas}, n={self.n}, alpha={self.alpha}, "
            f"k={self.k}, lazy={self.lazy}, kernel={self.kernel!r}, t={self.t})"
        )


class BatchEdgeModel(BatchAveragingProcess):
    """Batched EdgeModel (Definition 2.3): uniform directed edge."""

    _model_kind = "edge"

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float] | np.ndarray,
        alpha: float,
        replicas: int | None = None,
        seed: SeedLike = None,
        lazy: bool = False,
        backend: str = "auto",
        kernel: str = "auto",
        threads: int | None = None,
    ) -> None:
        super().__init__(
            graph,
            initial_values,
            alpha,
            replicas=replicas,
            seed=seed,
            lazy=lazy,
            backend=backend,
            kernel=kernel,
            threads=threads,
        )
        if self.graph_schedule is not None:
            self._edges = [
                (a.edge_tails, a.edge_heads)
                for a in self.graph_schedule.snapshots
            ]
            self._tails, self._heads = self._edges[0]
        else:
            self._edges = None
            self._tails = self.adjacency.edge_tails
            self._heads = self.adjacency.edge_heads

    def _activate_snapshot(self, snapshot_id: int) -> None:
        super()._activate_snapshot(snapshot_id)
        self._tails, self._heads = self._edges[snapshot_id]

    def _select_batch(self, rows, row_offsets):
        edges = self.rng.integers(len(self._tails), size=rows.size)
        nodes = self._tails[edges]
        picked = self._heads[edges]
        return nodes, self._flat[row_offsets + picked], picked

    def _plan_block(self, block_rounds: int) -> BlockPlan:
        rows = self._active_rows
        nodes, picked, keep = draw_edge_block(
            self._tails,
            self._heads,
            self.rng,
            block_rounds,
            self.replicas,
            rows,
            self.lazy,
        )
        if self._recording is not None:
            self._record_block(nodes, picked, keep, rows)
        return self._pack_plan(nodes, picked[0], keep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchEdgeModel(B={self.replicas}, n={self.n}, m={self.adjacency.m}, "
            f"alpha={self.alpha}, lazy={self.lazy}, kernel={self.kernel!r}, "
            f"t={self.t})"
        )
