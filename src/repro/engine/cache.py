"""On-disk memoisation of batch-engine Monte-Carlo results.

Sweeps re-run the same ``(model, graph, alpha, k, seed, tolerance)``
points whenever a notebook restarts or a parameter grid is extended.
:class:`ResultCache` stores each finished sample array under a key
derived from the :meth:`~repro.engine.driver.EngineSpec.cache_token`
(which hashes the graph structure and initial vector) plus the sampler
parameters and the integer seed, so repeated sweeps resume for free.

Only deterministic seeds are cached: with ``seed=None`` (OS entropy) or
a live ``Generator`` whose position is unknowable, ``load`` and
``store`` silently no-op rather than serve a wrong answer.

Key audit (what can and cannot alias)
-------------------------------------
The spec token carries the RNG *stream class*, not the kernel name:
``fused``/``jit``/``jit-par`` are bit-identical and share one key;
``numpy`` (legacy layout) and ``cupy`` (statistical-parity device
stream) each key separately.  ``kernel="auto"``'s measured pick is
restricted to the stream-exact set and the stream class is computed
without consulting the calibration table, so installing, refreshing or
deleting a calibration table can never change a key.  An explicit
``threads=`` request is appended (``|th=N``) for block streams as a
conservative perf-A/B split; the default ``threads=None`` leaves every
pre-existing key byte-identical to earlier versions.

Entries are crash-consistent: the sidecar records the sha256 of the
array file's bytes, ``load`` verifies it and quarantines mismatches
(``quarantine/``, counted as ``cache.quarantined``) as a miss — the
engine recomputes rather than consuming a torn or bit-rotted array.
``ENOSPC`` on write degrades to a counted no-op
(``cache.enospc_skips``): the cache is an accelerator, never a
durability dependency.
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import os
import tempfile
import time
import warnings
from pathlib import Path
from typing import Optional

import numpy as np

from repro.faults import injector as _faults
from repro.locks import atomic_write_text
from repro.obs.metrics import METRICS

#: Bump when the engine's sampling law changes; invalidates old entries.
_CACHE_VERSION = 1

#: corrupt entries are moved here (never deleted) for inspection.
QUARANTINE_DIR = "quarantine"


def _seed_token(seed) -> Optional[str]:
    """Stable text for a deterministic seed, or ``None`` if uncacheable."""
    if isinstance(seed, (int, np.integer)):
        return f"int:{int(seed)}"
    if isinstance(seed, np.random.SeedSequence):
        if seed.spawn_key == () and isinstance(seed.entropy, int):
            return f"ss:{seed.entropy}"
    return None


class ResultCache:
    """Content-addressed store of finished sample arrays.

    Entries are ``.npy`` files named by a SHA-256 key; a JSON sidecar
    records the human-readable key material for debugging.  Writes go
    through a temp file + ``os.replace`` so concurrent shard workers or
    parallel sweeps never observe a half-written entry.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _key(self, spec, params: str, seed_token: str) -> str:
        material = f"v{_CACHE_VERSION}|{spec.cache_token()}|{params}|{seed_token}"
        return hashlib.sha256(material.encode()).hexdigest()

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.directory / f"{key}.npy", self.directory / f"{key}.json"

    def load(self, spec, params: str, seed) -> Optional[np.ndarray]:
        """Return the memoised array, or ``None`` on miss / uncacheable seed.

        Hits and misses feed the process-wide ``cache.*`` counters (an
        uncacheable seed counts as neither — the cache was never asked a
        answerable question).
        """
        token = _seed_token(seed)
        if token is None:
            return None
        path, meta_path = self._paths(self._key(spec, params, token))
        if not path.exists():
            METRICS.count("cache.misses")
            return None
        try:
            blob = _faults.on_read("cache.npy", path, path.read_bytes())
        except OSError:
            METRICS.count("cache.misses")
            return None
        expected = self._meta_sha(meta_path)
        if expected is not None and (
            hashlib.sha256(blob).hexdigest() != expected
        ):
            # Torn write or bit rot: the bytes are not what we stored.
            self._quarantine(path, meta_path)
            METRICS.count("cache.misses")
            return None
        try:
            array = np.load(io.BytesIO(blob))
        except (OSError, ValueError):
            # Unparseable without a checksum to blame (legacy entry):
            # same treatment, quarantine and recompute.
            self._quarantine(path, meta_path)
            METRICS.count("cache.misses")
            return None
        METRICS.count("cache.hits")
        METRICS.count("cache.bytes_read", array.nbytes)
        return array

    def _meta_sha(self, meta_path: Path) -> Optional[str]:
        """The sidecar's recorded checksum, or ``None`` when absent.

        Sidecars predating checksumming (or torn ones) yield ``None``:
        the entry then only has ``np.load`` parseability vouching for
        it, exactly the pre-checksum behaviour.
        """
        try:
            meta = json.loads(
                _faults.on_read(
                    "cache.meta", meta_path, meta_path.read_text()
                )
            )
        except (OSError, json.JSONDecodeError):
            return None
        digest = meta.get("sha256")
        return str(digest) if digest else None

    def _quarantine(self, path: Path, meta_path: Path) -> None:
        """Move a corrupt entry (array + sidecar) aside, never delete."""
        quarantine = self.directory / QUARANTINE_DIR
        quarantine.mkdir(parents=True, exist_ok=True)
        for victim in (path, meta_path):
            try:
                os.replace(victim, quarantine / victim.name)
            except FileNotFoundError:
                pass
        METRICS.count("cache.quarantined")

    def store(self, spec, params: str, seed, array: np.ndarray) -> bool:
        """Persist ``array``; returns whether anything was written.

        A full disk never fails the computation that produced the
        array: ``ENOSPC`` turns the write into a counted no-op
        (``cache.enospc_skips`` plus a warning) and returns ``False`` —
        the cache is an accelerator, not a durability requirement.
        """
        token = _seed_token(seed)
        if token is None:
            return False
        key = self._key(spec, params, token)
        path, meta_path = self._paths(key)
        blob_io = io.BytesIO()
        np.save(blob_io, np.asarray(array))
        blob = blob_io.getvalue()
        digest = hashlib.sha256(blob).hexdigest()
        tmp = None
        try:
            payload = _faults.on_write("cache.npy", path, blob)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".npy.tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            _faults.on_replace("cache.npy", path)
            os.replace(tmp, path)
            _faults.on_published("cache.npy", path)
            meta_text = json.dumps(
                {
                    "version": _CACHE_VERSION,
                    "spec": spec.cache_token(),
                    "params": params,
                    "seed": token,
                    "count": int(np.asarray(array).shape[0]),
                    "sha256": digest,
                },
                indent=2,
            )
            atomic_write_text(meta_path, meta_text, site="cache.meta")
        except OSError as error:
            if tmp is not None and os.path.exists(tmp):
                os.unlink(tmp)
            if error.errno == errno.ENOSPC:
                METRICS.count("cache.enospc_skips")
                warnings.warn(
                    f"cache write skipped, disk full: {path}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
            raise
        except BaseException:
            # A *simulated* crash cleans nothing up — a real dead
            # process would not either; recovery reaps the debris.
            if (
                not _faults.crashed()
                and tmp is not None
                and os.path.exists(tmp)
            ):
                os.unlink(tmp)
            raise
        METRICS.count("cache.bytes_written", np.asarray(array).nbytes)
        return True

    def verify(self, repair: bool = False, grace_s: float = 60.0) -> dict:
        """Integrity pass for ``repro fsck``: checksums, strays, temps.

        Reports (and with ``repair=True`` fixes) orphaned temp files
        older than ``grace_s`` (reaped), checksum mismatches and
        unparseable arrays (quarantined).  Returns ``{"findings":
        [...], "repaired": N}``.
        """
        findings = []
        repaired = 0
        now = time.time()
        for tmp in sorted(self.directory.glob("*.tmp")):
            try:
                if now - tmp.stat().st_mtime < grace_s:
                    continue  # possibly a live writer's in-flight temp
            except OSError:
                continue
            findings.append(f"orphan temp file {tmp.name}")
            if repair:
                tmp.unlink(missing_ok=True)
                repaired += 1
        for path in sorted(self.directory.glob("*.npy")):
            meta_path = path.with_suffix(".json")
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            expected = self._meta_sha(meta_path)
            if expected is not None and (
                hashlib.sha256(blob).hexdigest() != expected
            ):
                findings.append(f"entry {path.stem[:12]}: checksum mismatch")
            else:
                try:
                    np.load(io.BytesIO(blob))
                    continue
                except (OSError, ValueError):
                    findings.append(
                        f"entry {path.stem[:12]}: unparseable array"
                    )
            if repair:
                self._quarantine(path, meta_path)
                repaired += 1
        return {"findings": findings, "repaired": repaired}

    def stats(self) -> dict:
        """Directory contents plus this process's hit/miss counters.

        ``entries``/``total_bytes`` are read from disk (they include
        entries written by other processes); hits, misses and byte flows
        come from the process-wide registry — "since process start", the
        contract ``repro cache stats`` documents.
        """
        entries = 0
        total_bytes = 0
        for path in self.directory.glob("*.npy"):
            try:
                total_bytes += path.stat().st_size
            except OSError:  # racing a concurrent clear()
                continue
            entries += 1
        return {
            "directory": str(self.directory),
            "entries": entries,
            "total_bytes": total_bytes,
            "hits": int(METRICS.value("cache.hits")),
            "misses": int(METRICS.value("cache.misses")),
            "bytes_read": int(METRICS.value("cache.bytes_read")),
            "bytes_written": int(METRICS.value("cache.bytes_written")),
        }

    def clear(self, older_than_seconds: Optional[float] = None) -> int:
        """Delete entries; returns the number of arrays removed.

        With ``older_than_seconds`` only entries whose ``.npy`` mtime is
        older than that age are evicted — and the array is always
        removed *before* its sidecar, so a crash mid-eviction leaves an
        orphan sidecar (harmless: lookups key on the ``.npy``) rather
        than a sidecar-less array that debugging tools cannot explain.
        """
        cutoff = (
            None
            if older_than_seconds is None
            else time.time() - older_than_seconds
        )
        removed = 0
        for path in self.directory.glob("*.npy"):
            if cutoff is not None:
                try:
                    if path.stat().st_mtime >= cutoff:
                        continue
                except OSError:  # already gone
                    continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            path.with_suffix(".json").unlink(missing_ok=True)
        METRICS.count("cache.evictions", removed)
        return removed
