"""On-disk memoisation of batch-engine Monte-Carlo results.

Sweeps re-run the same ``(model, graph, alpha, k, seed, tolerance)``
points whenever a notebook restarts or a parameter grid is extended.
:class:`ResultCache` stores each finished sample array under a key
derived from the :meth:`~repro.engine.driver.EngineSpec.cache_token`
(which hashes the graph structure and initial vector) plus the sampler
parameters and the integer seed, so repeated sweeps resume for free.

Only deterministic seeds are cached: with ``seed=None`` (OS entropy) or
a live ``Generator`` whose position is unknowable, ``load`` and
``store`` silently no-op rather than serve a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.obs.metrics import METRICS

#: Bump when the engine's sampling law changes; invalidates old entries.
_CACHE_VERSION = 1


def _seed_token(seed) -> Optional[str]:
    """Stable text for a deterministic seed, or ``None`` if uncacheable."""
    if isinstance(seed, (int, np.integer)):
        return f"int:{int(seed)}"
    if isinstance(seed, np.random.SeedSequence):
        if seed.spawn_key == () and isinstance(seed.entropy, int):
            return f"ss:{seed.entropy}"
    return None


class ResultCache:
    """Content-addressed store of finished sample arrays.

    Entries are ``.npy`` files named by a SHA-256 key; a JSON sidecar
    records the human-readable key material for debugging.  Writes go
    through a temp file + ``os.replace`` so concurrent shard workers or
    parallel sweeps never observe a half-written entry.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _key(self, spec, params: str, seed_token: str) -> str:
        material = f"v{_CACHE_VERSION}|{spec.cache_token()}|{params}|{seed_token}"
        return hashlib.sha256(material.encode()).hexdigest()

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.directory / f"{key}.npy", self.directory / f"{key}.json"

    def load(self, spec, params: str, seed) -> Optional[np.ndarray]:
        """Return the memoised array, or ``None`` on miss / uncacheable seed.

        Hits and misses feed the process-wide ``cache.*`` counters (an
        uncacheable seed counts as neither — the cache was never asked a
        answerable question).
        """
        token = _seed_token(seed)
        if token is None:
            return None
        path, _ = self._paths(self._key(spec, params, token))
        if not path.exists():
            METRICS.count("cache.misses")
            return None
        try:
            array = np.load(path)
        except (OSError, ValueError):  # corrupt entry: treat as a miss
            METRICS.count("cache.misses")
            return None
        METRICS.count("cache.hits")
        METRICS.count("cache.bytes_read", array.nbytes)
        return array

    def store(self, spec, params: str, seed, array: np.ndarray) -> bool:
        """Persist ``array``; returns whether anything was written."""
        token = _seed_token(seed)
        if token is None:
            return False
        key = self._key(spec, params, token)
        path, meta_path = self._paths(key)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".npy.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, np.asarray(array))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        meta_path.write_text(
            json.dumps(
                {
                    "version": _CACHE_VERSION,
                    "spec": spec.cache_token(),
                    "params": params,
                    "seed": token,
                    "count": int(np.asarray(array).shape[0]),
                },
                indent=2,
            )
        )
        METRICS.count("cache.bytes_written", np.asarray(array).nbytes)
        return True

    def stats(self) -> dict:
        """Directory contents plus this process's hit/miss counters.

        ``entries``/``total_bytes`` are read from disk (they include
        entries written by other processes); hits, misses and byte flows
        come from the process-wide registry — "since process start", the
        contract ``repro cache stats`` documents.
        """
        entries = 0
        total_bytes = 0
        for path in self.directory.glob("*.npy"):
            try:
                total_bytes += path.stat().st_size
            except OSError:  # racing a concurrent clear()
                continue
            entries += 1
        return {
            "directory": str(self.directory),
            "entries": entries,
            "total_bytes": total_bytes,
            "hits": int(METRICS.value("cache.hits")),
            "misses": int(METRICS.value("cache.misses")),
            "bytes_read": int(METRICS.value("cache.bytes_read")),
            "bytes_written": int(METRICS.value("cache.bytes_written")),
        }

    def clear(self, older_than_seconds: Optional[float] = None) -> int:
        """Delete entries; returns the number of arrays removed.

        With ``older_than_seconds`` only entries whose ``.npy`` mtime is
        older than that age are evicted — and the array is always
        removed *before* its sidecar, so a crash mid-eviction leaves an
        orphan sidecar (harmless: lookups key on the ``.npy``) rather
        than a sidecar-less array that debugging tools cannot explain.
        """
        cutoff = (
            None
            if older_than_seconds is None
            else time.time() - older_than_seconds
        )
        removed = 0
        for path in self.directory.glob("*.npy"):
            if cutoff is not None:
                try:
                    if path.stat().st_mtime >= cutoff:
                        continue
                except OSError:  # already gone
                    continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            path.with_suffix(".json").unlink(missing_ok=True)
        METRICS.count("cache.evictions", removed)
        return removed
