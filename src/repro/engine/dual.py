"""Vectorized batch engine for the Section-5 dual processes.

PRs 1–4 made the *primal* Averaging Process a batch workload; this
module does the same for the paper's dual side: the multi-commodity
Diffusion Process (Section 5.1), the ``n`` correlated random walks
(Section 5.2), and the classical coalescing walks (footnote 2).  Each
advances ``B`` independent replicas per vectorized round:

* :class:`BatchDiffusion` — ``B`` replicas of the ``(n, r)`` load
  matrix as one ``(B, n, r)`` array; the Eq. (4) update is two flat-row
  gather/scatters plus ``k`` scatter-adds per round.  Free runs draw
  their selections through :func:`repro.engine.selection.draw_node_block`
  — the *same* code path (and hence the bit-identical RNG stream at a
  fixed seed) as the primal batch models' block kernels.
* :class:`BatchWalks` — all ``n`` walks of all ``B`` replicas as one
  ``(B, n)`` position matrix; move/stay coins and target slots are
  decoded from one uniform per (round, replica, walk).
* :class:`BatchCoalescing` — the coalescing mode: co-located walks are
  one cluster, so positions double as partition labels and the cluster
  count is maintained in O(B) per round via an occupancy table.

:func:`run_duality_batch` is the shared-schedule duality driver: it
runs the primal engine forward with selection recording enabled
(:meth:`~repro.engine.batch.BatchAveragingProcess.record_selections`),
replays the **reversed** stream through a :class:`BatchDiffusion`, and
reports the per-replica Lemma 5.2 residual ``|W_b(T) - xi_b(T)|`` —
machine-precision zero for every replica, under every kernel.

:class:`DualSpec` mirrors :class:`~repro.engine.driver.EngineSpec`: a
picklable description of one dual configuration with a
:meth:`~DualSpec.cache_token`, so dual Monte-Carlo samples (e.g.
coalescence times, :func:`sample_coalescence_times`) memoise through
the same :class:`~repro.engine.cache.ResultCache` and shard through the
same multiprocessing driver as the primal samplers.

Randomness contract
-------------------
Free-running dual processes draw per block, C-order, from one
generator: selection variates first (the primal block contract —
``(R, B)`` for ``k <= 2``, ``(R, B, d_max + 1)`` for ``k > 2``), then,
for the walk processes, one ``(R, B, n)`` movement plane whose entry
``u`` encodes both the move/stay coin (``u < 1 - alpha``) and, for
movers, the target slot ``floor(u * k / (1 - alpha))``.  The coalescing
walk needs no plane: its single ``(R, B)`` draw recycles the node
selector's fractional part into the stay coin and the neighbour slot.
Shared-schedule replay (:meth:`BatchWalks.step_with`) draws one
``(B, n)`` plane per non-noop step — the single-replica facades in
:mod:`repro.dual` are exactly the ``B = 1`` case, so facade and batch
consume identical streams by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule, SelectionStep
from repro.engine.selection import (
    RecordedSelections,
    draw_node_block,
    normalise_picked,
)
from repro.engine.backend import select_backend
from repro.engine.kernels import array_namespace, resolve_kernel, validate_kernel
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.obs.metrics import METRICS
from repro.obs.trace import active_tracer
from repro.rng import SeedLike, as_generator

#: Default rounds per free-run selection block (matches the primal
#: kernels' default so diffusion free runs chunk their draws the same
#: way a default-configured primal run does).
DEFAULT_DUAL_BLOCK_ROUNDS = 256

#: Per-array element budget of one block's scratch (movement planes are
#: (R, B, n); blocks are shortened so huge batches stay bounded).
_DUAL_BLOCK_BUDGET = 2_097_152

#: Valid DualSpec kinds.
DUAL_KINDS = ("diffusion", "walks", "coalescing")


class BatchDualProcess:
    """Shared machinery of the batch dual processes.

    Parameters
    ----------
    graph:
        Connected undirected graph (``networkx.Graph`` or pre-frozen
        :class:`Adjacency` — a prebuilt adjacency is reused as is, its
        padded neighbour table and content hash included).
    alpha:
        Self-weight / laziness in ``[0, 1)``.
    k:
        Neighbour fan-in of the selection law (``1`` for the coalescing
        walk).
    replicas:
        Batch size ``B``.
    seed:
        Seed / generator driving the whole batch (selections *and*
        movement coins).
    backend:
        ``"auto"`` | ``"dense"`` | ``"csr"`` — the neighbour-sampling
        backend shared with the primal engine.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        alpha: float,
        k: int = 1,
        replicas: int | None = None,
        seed: SeedLike = None,
        backend: str = "auto",
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        if replicas is None or int(replicas) != replicas or replicas < 1:
            raise ParameterError(
                f"replicas must be a positive integer, got {replicas}"
            )
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        self.alpha = float(alpha)
        self._sampler = select_backend(self.adjacency, k, backend)
        self.k = self._sampler.k
        self.replicas = int(replicas)
        self.rng = as_generator(seed)
        self.t = 0
        self.block_rounds = DEFAULT_DUAL_BLOCK_ROUNDS
        self._recording: list | None = None
        self._rows = np.arange(self.replicas, dtype=np.int64)

    @property
    def n(self) -> int:
        return self.adjacency.n

    # ------------------------------------------------------------------
    # Selection drawing and recording
    # ------------------------------------------------------------------
    def _draw_selections(self, rounds: int) -> RecordedSelections:
        """One block of fresh NodeModel-law selections for every replica.

        Routed through :func:`draw_node_block`, i.e. the primal block
        kernels' own draw — the streams are bit-identical to a primal
        :class:`~repro.engine.batch.BatchNodeModel` at a fixed seed.
        """
        nodes, picked, keep = draw_node_block(
            self._sampler,
            self.rng,
            self.n,
            rounds,
            self.replicas,
            self._rows,
            lazy=False,
        )
        block = RecordedSelections(nodes, normalise_picked(picked), keep)
        if self._recording is not None:
            self._recording.append(block)
        return block

    def record_selections(self, enable: bool = True) -> None:
        """Record every subsequent free-run selection block."""
        self._recording = [] if enable else None

    def recorded_selections(self) -> RecordedSelections:
        """The selection stream recorded since :meth:`record_selections`."""
        if self._recording is None:
            raise ParameterError(
                "selection recording is not enabled; call "
                "record_selections() before stepping"
            )
        if not self._recording:
            raise ParameterError("no rounds executed while recording")
        return RecordedSelections.concatenate(self._recording)

    def _validate_cost(self, cost: Sequence[float]) -> np.ndarray:
        cost = np.asarray(cost, dtype=np.float64).reshape(-1)
        if cost.shape != (self.n,):
            raise ParameterError(
                f"cost must have shape ({self.n},), got {cost.shape}"
            )
        return cost

    def _selection_block_size(self, remaining: int, plane_width: int) -> int:
        """Rounds for the next free-run block, memory-bounded."""
        block = max(1, int(self.block_rounds))
        budget = max(
            1, _DUAL_BLOCK_BUDGET // max(1, self.replicas * plane_width)
        )
        return min(block, remaining, budget)


class BatchDiffusion(BatchDualProcess):
    """``B`` replicas of the multi-commodity Diffusion Process.

    The state is one C-contiguous ``(B, n, r)`` array (``r``
    commodities); one round applies the Eq. (4) update to every
    replica's own selection via flat-row indexing on the
    ``(B * n, r)`` view — row writes are distinct across replicas, so
    plain fancy indexing suffices and the per-commodity arithmetic
    matches the scalar :class:`repro.dual.DiffusionProcess` operation
    for operation (the conformance tests assert bit-equality).

    Parameters beyond :class:`BatchDualProcess`:

    cost:
        Cost row vector ``c`` (Proposition 5.1 uses ``c = xi(0)^T``).
    loads:
        Initial loads — ``None`` for the identity (one unit of
        commodity ``u`` on node ``u``), an ``(n,)`` vector, an
        ``(n, r)`` matrix broadcast to every replica, or a full
        ``(B, n, r)`` array.
    kernel:
        ``"auto"`` (host NumPy, the default) or ``"cupy"`` — the
        array-API backend keeps the flat ``(B * n, r)`` load matrix
        on-device for the whole of each :meth:`apply_selections` block
        (statistical-parity contract; bit-identical under the NumPy
        shim).  The stream-exact primal kernels have no distinct dual
        implementation and alias the host path.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        cost: Sequence[float],
        alpha: float,
        k: int = 1,
        replicas: int | None = None,
        loads: np.ndarray | None = None,
        seed: SeedLike = None,
        backend: str = "auto",
        kernel: str = "auto",
    ) -> None:
        super().__init__(
            graph, alpha, k=k, replicas=replicas, seed=seed, backend=backend
        )
        validate_kernel(kernel)
        self.kernel_requested = kernel
        self.kernel = (
            "cupy" if resolve_kernel(kernel) == "cupy" else "numpy"
        )
        self._xp = self._xp_device = None
        if self.kernel == "cupy":
            self._xp, self._xp_device = array_namespace()
        self.cost = self._validate_cost(cost)
        n, B = self.n, self.replicas
        if loads is None:
            loads = np.eye(n)
        loads = np.asarray(loads, dtype=np.float64)
        if loads.ndim == 1:
            loads = loads[:, None]
        if loads.ndim == 2:
            if loads.shape[0] != n:
                raise ParameterError(
                    f"loads must have {n} rows, got shape {loads.shape}"
                )
            loads = np.repeat(loads[None, :, :], B, axis=0)
        elif loads.ndim == 3:
            if loads.shape[0] != B or loads.shape[1] != n:
                raise ParameterError(
                    f"loads must have shape ({B}, {n}, r), got {loads.shape}"
                )
            loads = loads.copy()
        else:
            raise ParameterError("loads must be 1-D, 2-D or 3-D")
        self.loads = np.ascontiguousarray(loads)
        self._flat = self.loads.reshape(B * n, -1)
        self._base = self._rows * n
        # The (B, n, r) load cube dominates the dual side's footprint.
        METRICS.peak("engine.state_peak_bytes", self.loads.nbytes)

    @property
    def num_commodities(self) -> int:
        return self.loads.shape[2]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_with(self, step: SelectionStep) -> None:
        """Apply one *shared* selection ``(u, S)`` to every replica.

        Exactly the scalar ``loads <- B loads`` arithmetic, batched over
        the leading replica axis.
        """
        self.t += 1
        if step.is_noop:
            return
        u = step.node
        moving = (1.0 - self.alpha) * self.loads[:, u, :]
        share = moving / len(step.sample)
        self.loads[:, u, :] -= moving
        for v in step.sample:
            self.loads[:, v, :] += share

    def replay(self, schedule: Schedule) -> None:
        """Apply an entire shared selection sequence in order."""
        for step in schedule:
            self.step_with(step)

    def apply_selections(self, selections: RecordedSelections) -> None:
        """Advance every replica through its *own* selection stream.

        ``selections`` is a per-replica stream — recorded from a primal
        batch run (forward for conformance, :meth:`reversed
        <repro.engine.selection.RecordedSelections.reversed>` for the
        Lemma 5.2 coupling) or from a dual free run.  ``keep = False``
        entries are identity rounds.
        """
        if selections.replicas != self.replicas:
            raise ParameterError(
                f"selection stream has {selections.replicas} replicas, "
                f"batch has {self.replicas}"
            )
        if self.kernel == "cupy":
            self._apply_selections_device(selections)
            return
        beta = 1.0 - self.alpha
        k = selections.k
        flat = self._flat
        base = self._base
        nodes_all = selections.nodes
        picked_all = selections.picked
        keep_all = selections.keep
        for t in range(len(selections)):
            self.t += 1
            if keep_all is None:
                base_t = base
                nodes = nodes_all[t]
                picked = picked_all[t]
            else:
                rows = np.flatnonzero(keep_all[t])
                if rows.size == 0:
                    continue
                base_t = base[rows]
                nodes = nodes_all[t, rows]
                picked = picked_all[t, rows]
            idx_u = base_t + nodes
            rowvals = flat[idx_u]
            moving = beta * rowvals
            share = moving / k
            flat[idx_u] = rowvals - moving
            for j in range(k):
                flat[base_t + picked[:, j]] += share

    def _apply_selections_device(self, selections: RecordedSelections) -> None:
        """The ``kernel="cupy"`` block path: loads stay on-device.

        The flat ``(B * n, r)`` matrix is uploaded once, every round of
        the block runs as device fancy-indexing (row writes are
        distinct across replicas, exactly as on the host), and the
        result is downloaded once at the end — selections themselves
        are still drawn by the host RNG, so the selection stream is
        unchanged; only the load arithmetic moves.
        """
        xp = self._xp
        dev = xp.array(self._flat)
        beta = 1.0 - self.alpha
        k = selections.k
        base = self._base
        nodes_all = selections.nodes
        picked_all = selections.picked
        keep_all = selections.keep
        for t in range(len(selections)):
            self.t += 1
            if keep_all is None:
                base_t = base
                nodes = nodes_all[t]
                picked = picked_all[t]
            else:
                rows = np.flatnonzero(keep_all[t])
                if rows.size == 0:
                    continue
                base_t = base[rows]
                nodes = nodes_all[t, rows]
                picked = picked_all[t, rows]
            idx_u = xp.asarray(base_t + nodes)
            rowvals = dev[idx_u]
            moving = beta * rowvals
            share = moving / k
            dev[idx_u] = rowvals - moving
            for j in range(k):
                dev[xp.asarray(base_t + picked[:, j])] += share
        if self._xp_device == "cupy":
            self._flat[:] = xp.asnumpy(dev)
        else:
            self._flat[:] = dev

    def run(self, steps: int) -> None:
        """Free-run ``steps`` rounds of fresh per-replica selections."""
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        remaining = steps
        width = (
            self._sampler.d_max + 1 if self.k > 2 else 1
        )  # selection draw width per (round, replica)
        while remaining > 0:
            rounds = self._selection_block_size(remaining, width)
            self.apply_selections(self._draw_selections(rounds))
            remaining -= rounds

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def costs(self) -> np.ndarray:
        """Per-replica cost vectors ``W_b(t) = c q_b(t)``, shape ``(B, r)``."""
        return np.matmul(self.cost, self.loads)

    def commodity_load(self, commodity: int) -> np.ndarray:
        """Per-replica load vectors of one commodity, shape ``(B, n)``."""
        return self.loads[:, :, commodity].copy()

    def total_mass(self) -> np.ndarray:
        """Per-replica, per-commodity total load (conserved exactly)."""
        return self.loads.sum(axis=1)


class BatchWalks(BatchDualProcess):
    """``B`` replicas of the ``n`` correlated random walks.

    The state is one ``(B, n)`` position matrix.  Each round, replica
    ``b``'s walks sitting on its selected node ``u_b`` move,
    independently, to a uniform member of its sample ``S_b`` with
    probability ``1 - alpha`` — both the coin and the target slot are
    decoded from one uniform per walk (see the module docstring).

    Parameters beyond :class:`BatchDualProcess`:

    cost:
        The vector ``xi(0)`` defining walk costs.
    positions:
        Optional initial positions — ``(n,)`` broadcast to every
        replica, or a full ``(B, n)`` matrix; defaults to walk ``u``
        starting at node ``u``.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        cost: Sequence[float],
        alpha: float,
        k: int = 1,
        replicas: int | None = None,
        positions: Sequence[int] | np.ndarray | None = None,
        seed: SeedLike = None,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            graph, alpha, k=k, replicas=replicas, seed=seed, backend=backend
        )
        self.cost = self._validate_cost(cost)
        n, B = self.n, self.replicas
        if positions is None:
            positions = np.arange(n, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        if positions.ndim == 1:
            if positions.shape != (n,):
                raise ParameterError(
                    f"positions must have shape ({n},), got {positions.shape}"
                )
            positions = np.broadcast_to(positions, (B, n)).copy()
        elif positions.shape != (B, n):
            raise ParameterError(
                f"positions must have shape ({B}, {n}), got {positions.shape}"
            )
        else:
            positions = positions.copy()
        if np.any((positions < 0) | (positions >= n)):
            raise ParameterError("positions must be valid node indices")
        self.positions = positions

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _apply_round(
        self,
        nodes: np.ndarray,
        picked: np.ndarray,
        keep: np.ndarray | None,
        plane: np.ndarray,
    ) -> None:
        """One vectorized walk round.

        ``nodes`` is ``(B,)``, ``picked`` ``(B, k)``, ``plane`` the
        ``(B, n)`` movement uniforms of this round.
        """
        beta = 1.0 - self.alpha
        k = picked.shape[1]
        move = plane < beta
        if k == 1:
            targets = np.broadcast_to(picked[:, 0][:, None], plane.shape)
        else:
            slot = np.minimum(
                (plane * (k / beta)).astype(np.int64), k - 1
            )
            targets = picked[self._rows[:, None], slot]
        mask = self.positions == nodes[:, None]
        if keep is not None:
            mask &= keep[:, None]
        mask &= move
        np.copyto(self.positions, targets, where=mask)

    def step_with(self, step: SelectionStep) -> None:
        """Apply one *shared* selection to every replica.

        Draws one ``(B, n)`` movement plane (no-op steps draw
        nothing); with ``B = 1`` this is exactly the scalar facade's
        per-step law.
        """
        self.t += 1
        if step.is_noop:
            return
        plane = self.rng.random((self.replicas, self.n))
        nodes = np.full(self.replicas, int(step.node), dtype=np.int64)
        picked = np.broadcast_to(
            np.asarray(step.sample, dtype=np.int64),
            (self.replicas, len(step.sample)),
        )
        self._apply_round(nodes, picked, None, plane)

    def replay(self, schedule: Schedule) -> None:
        """Drive every replica through one shared selection sequence."""
        for step in schedule:
            self.step_with(step)

    def _movement_rounds(self, remaining: int) -> int:
        return max(
            1,
            min(
                remaining,
                _DUAL_BLOCK_BUDGET // max(1, self.replicas * self.n),
            ),
        )

    def apply_selections(self, selections: RecordedSelections) -> None:
        """Advance every replica through its own selection stream.

        Movement planes are drawn in C-order ``(R, B, n)`` chunks, so
        the realized trajectories are invariant to the chunking.
        No-op entries (``keep = False``) skip their replica's walks but
        still consume that replica's plane — freeze/noop patterns never
        shift their neighbours' variates, as in the primal kernels.
        """
        if selections.replicas != self.replicas:
            raise ParameterError(
                f"selection stream has {selections.replicas} replicas, "
                f"batch has {self.replicas}"
            )
        total = len(selections)
        done = 0
        while done < total:
            rounds = self._movement_rounds(total - done)
            planes = self.rng.random((rounds, self.replicas, self.n))
            for r in range(rounds):
                t = done + r
                self.t += 1
                keep = None if selections.keep is None else selections.keep[t]
                self._apply_round(
                    selections.nodes[t], selections.picked[t], keep, planes[r]
                )
            done += rounds

    def run(self, steps: int) -> None:
        """Free-run ``steps`` rounds: fresh selections plus movement."""
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        remaining = steps
        while remaining > 0:
            rounds = self._selection_block_size(remaining, self.n)
            self.apply_selections(self._draw_selections(rounds))
            remaining -= rounds

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def costs(self) -> np.ndarray:
        """Per-replica walk costs ``W~_b^(u)(t)``, shape ``(B, n)``."""
        return self.cost[self.positions]

    def occupancy(self) -> np.ndarray:
        """Walks per node per replica, shape ``(B, n)`` (rows sum to n)."""
        counts = np.zeros((self.replicas, self.n), dtype=np.int64)
        np.add.at(counts, (self._rows[:, None], self.positions), 1)
        return counts


class BatchCoalescing(BatchDualProcess):
    """``B`` replicas of the coalescing random walks.

    Co-located walks are one walk, so a replica's partition *is* its
    position vector: two walks are merged iff they share a position.
    The cluster count is therefore the number of occupied nodes,
    maintained incrementally in O(B) per round through an occupancy
    table — the position (label) matrix itself is optional
    (``track_positions=False`` for pure meeting-time sampling).

    One ``(R, B)`` uniform block drives a whole block of rounds: the
    integer part of ``u * n`` selects the node, and the fractional part
    is recycled into the stay coin (``frac < alpha``) and, for movers,
    the neighbour slot ``floor((frac - alpha) / (1 - alpha) * deg)``.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        alpha: float = 0.0,
        replicas: int | None = None,
        seed: SeedLike = None,
        backend: str = "auto",
        track_positions: bool = True,
    ) -> None:
        super().__init__(
            graph, alpha, k=1, replicas=replicas, seed=seed, backend=backend
        )
        n, B = self.n, self.replicas
        self.positions: np.ndarray | None = (
            np.broadcast_to(np.arange(n, dtype=np.int64), (B, n)).copy()
            if track_positions
            else None
        )
        self._occupied = np.ones((B, n), dtype=bool)
        self.num_clusters = np.full(B, n, dtype=np.int64)
        self._degrees = self.adjacency.degrees

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _apply_round(self, u: np.ndarray) -> None:
        """One vectorized coalescing round from one ``(B,)`` uniform."""
        scaled = u * self.n
        nodes = scaled.astype(np.int64)
        frac = scaled - nodes
        beta = 1.0 - self.alpha
        stay = frac < self.alpha
        deg = self._degrees[nodes]
        slot = ((frac - self.alpha) / beta * deg).astype(np.int64)
        np.clip(slot, 0, deg - 1, out=slot)
        targets = self._sampler._pick_slots(nodes, slot)
        act = ~stay & self._occupied[self._rows, nodes]
        rows = np.flatnonzero(act)
        if rows.size == 0:
            return
        srcs = nodes[rows]
        dsts = targets[rows]
        self._occupied[rows, srcs] = False
        merged = self._occupied[rows, dsts]
        self._occupied[rows, dsts] = True
        self.num_clusters[rows] -= merged
        if self.positions is not None:
            sub = self.positions[rows]
            np.copyto(sub, dsts[:, None], where=sub == srcs[:, None])
            self.positions[rows] = sub

    def run(self, steps: int) -> None:
        """Execute ``steps`` rounds (coalesced replicas keep stepping)."""
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        remaining = steps
        while remaining > 0:
            rounds = self._selection_block_size(remaining, 1)
            block = self.rng.random((rounds, self.replicas))
            for r in range(rounds):
                self.t += 1
                self._apply_round(block[r])
            remaining -= rounds

    def run_to_coalescence(self, max_steps: int = 100_000_000) -> np.ndarray:
        """Run until every replica holds one walk; per-replica times.

        Returns the ``(B,)`` array of coalescence times counted from
        the current state (0 for already-coalesced replicas); raises
        :class:`ConvergenceError` if any replica exhausts
        ``max_steps``.  Every replica keeps consuming its variate
        column after coalescing, so the times are independent of the
        batch composition.
        """
        start = self.t
        times = np.full(self.replicas, -1, dtype=np.int64)
        times[self.num_clusters == 1] = 0
        while np.any(times < 0) and self.t - start < max_steps:
            rounds = self._selection_block_size(
                max_steps - (self.t - start), 1
            )
            block = self.rng.random((rounds, self.replicas))
            for r in range(rounds):
                self.t += 1
                self._apply_round(block[r])
                fresh = (self.num_clusters == 1) & (times < 0)
                if fresh.any():
                    times[fresh] = self.t - start
        if np.any(times < 0):
            raise ConvergenceError(
                f"{int(np.sum(times < 0))} of {self.replicas} replicas "
                f"not coalesced after {max_steps} steps"
            )
        return times


# ----------------------------------------------------------------------
# Specs, caching and the sharded meeting-time sampler
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class DualSpec:
    """Everything needed to rebuild one dual-process configuration.

    The dual counterpart of :class:`~repro.engine.driver.EngineSpec`:
    picklable (multiprocessing shards), hashable by content, and
    exposing :meth:`cache_token` so dual Monte-Carlo samples memoise
    through :class:`~repro.engine.cache.ResultCache`.
    """

    kind: str
    adjacency: Adjacency
    alpha: float
    k: int = 1
    cost: Optional[np.ndarray] = None
    backend: str = "auto"
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.kind not in DUAL_KINDS:
            raise ParameterError(
                f"kind must be one of {', '.join(DUAL_KINDS)}, got {self.kind!r}"
            )
        validate_kernel(self.kernel)
        if self.kind in ("diffusion", "walks"):
            if self.cost is None:
                raise ParameterError(f"kind {self.kind!r} requires a cost vector")
            cost = np.asarray(self.cost, dtype=np.float64).reshape(-1)
            if cost.shape != (self.adjacency.n,):
                raise ParameterError(
                    f"cost must have shape ({self.adjacency.n},), "
                    f"got {cost.shape}"
                )
            object.__setattr__(self, "cost", cost)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DualSpec):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.adjacency == other.adjacency
            and self.alpha == other.alpha
            and self.k == other.k
            and (
                (self.cost is None) == (other.cost is None)
                and (self.cost is None or np.array_equal(self.cost, other.cost))
            )
            and self.backend == other.backend
            and self.kernel == other.kernel
        )

    def __hash__(self) -> int:
        return hash((self.cache_token(), self.backend, self.kernel))

    def cache_token(self) -> str:
        """Deterministic text token identifying this configuration.

        Backends are bit-identical at a fixed seed and do not
        participate (as for the primal
        :meth:`~repro.engine.driver.EngineSpec.cache_token`).  Host
        kernels share one stream; the statistical-parity ``"cupy"``
        backend appends ``|stream=cupy`` so device samples never alias
        host ones (and pre-existing host tokens stay unchanged).
        """
        if self.cost is None:
            digest = "none"
        else:
            digest = hashlib.sha256(
                np.ascontiguousarray(self.cost).tobytes()
            ).hexdigest()[:16]
        token = (
            f"dual-{self.kind}|g={self.adjacency.content_hash()[:16]}"
            f"|c={digest}|alpha={self.alpha!r}|k={self.k}"
        )
        if resolve_kernel(self.kernel) == "cupy":
            token += "|stream=cupy"
        return token

    def build(self, replicas: int, seed: SeedLike = None) -> BatchDualProcess:
        """Instantiate the batch dual process for ``replicas`` replicas."""
        if self.kind == "diffusion":
            return BatchDiffusion(
                self.adjacency,
                cost=self.cost,
                alpha=self.alpha,
                k=self.k,
                replicas=replicas,
                seed=seed,
                backend=self.backend,
                kernel=self.kernel,
            )
        if self.kind == "walks":
            return BatchWalks(
                self.adjacency,
                cost=self.cost,
                alpha=self.alpha,
                k=self.k,
                replicas=replicas,
                seed=seed,
                backend=self.backend,
            )
        return BatchCoalescing(
            self.adjacency,
            alpha=self.alpha,
            replicas=replicas,
            seed=seed,
            backend=self.backend,
            track_positions=False,
        )


def _run_shard_coalescence(
    spec: DualSpec,
    replicas: int,
    seed: np.random.SeedSequence,
    max_steps: int,
) -> np.ndarray:
    walks = spec.build(replicas, seed=seed)
    return walks.run_to_coalescence(max_steps=max_steps).astype(np.float64)


def sample_coalescence_times(
    spec: DualSpec,
    replicas: int,
    seed: SeedLike = None,
    max_steps: int = 100_000_000,
    shard_size: Optional[int] = None,
    processes: int = 1,
    cache: "Optional[object]" = None,
) -> np.ndarray:
    """I.i.d. samples of the full-system coalescence time.

    Shards, multiprocessing and on-disk memoisation work exactly as in
    :func:`repro.engine.driver.sample_f_batch` — same sharded driver,
    same :class:`~repro.engine.cache.ResultCache` contract, keyed by
    :meth:`DualSpec.cache_token`.
    """
    from repro.engine.driver import _DEFAULT_SHARD, _run_sharded

    if spec.kind != "coalescing":
        raise ParameterError(
            f"coalescence times need a 'coalescing' spec, got {spec.kind!r}"
        )
    params = (
        f"COAL|max={max_steps}|r={replicas}"
        f"|shard={shard_size or _DEFAULT_SHARD}"
    )
    tracer = active_tracer()
    with tracer.span(
        "engine.sample_coalescence", replicas=replicas, processes=processes
    ) as handle:
        if cache is not None:
            with tracer.span("cache.load"):
                hit = cache.load(spec, params, seed)
            if hit is not None:
                handle.add(cache="hit")
                return hit
        out = _run_sharded(
            _run_shard_coalescence,
            spec,
            replicas,
            seed,
            shard_size,
            processes,
            max_steps,
        )
        if cache is not None:
            with tracer.span("cache.store"):
                cache.store(spec, params, seed, out)
    if tracer.enabled:
        tracer.streams.histogram("coalescence_rounds", out)
    return out


# ----------------------------------------------------------------------
# The shared-schedule duality driver (Lemma 5.2 at engine scale)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchDualityReport:
    """Per-replica outcome of one engine-scale Lemma 5.2 coupling.

    ``xi_final`` is the primal batch's end state, ``w_final`` the
    reversed diffusion's cost vectors; Lemma 5.2 says the two agree
    *per sequence*, i.e. per replica, row for row.
    """

    xi_final: np.ndarray
    w_final: np.ndarray
    steps: int
    kind: str
    kernel: str

    @property
    def replicas(self) -> int:
        return self.xi_final.shape[0]

    @property
    def errors(self) -> np.ndarray:
        """Per-replica residual ``max_u |W_b(T) - xi_b(T)|``."""
        return np.abs(self.w_final - self.xi_final).max(axis=1)

    @property
    def max_error(self) -> float:
        """Worst residual across the whole batch."""
        return float(self.errors.max())

    def verified(self, atol: float = 1e-9) -> bool:
        """Whether every replica satisfies the identity within ``atol``."""
        return bool(self.max_error <= atol)


def run_duality_batch(
    graph: nx.Graph | Adjacency,
    initial_values: Sequence[float],
    alpha: float,
    k: int = 1,
    steps: int = 256,
    replicas: int = 64,
    seed: SeedLike = None,
    kind: str = "node",
    lazy: bool = False,
    backend: str = "auto",
    kernel: str = "auto",
) -> BatchDualityReport:
    """Couple a primal batch run with its time-reversed batch diffusion.

    Runs a :class:`~repro.engine.batch.BatchNodeModel` (or
    ``BatchEdgeModel``) forward for ``steps`` rounds with selection
    recording enabled, then drives a :class:`BatchDiffusion` (identity
    loads, cost ``c = xi(0)^T``) through the **reversed** recorded
    stream of every replica at once, and reports the per-replica
    Lemma 5.2 residuals.  One recorded block-random stream feeds both
    directions, for every kernel — this is ``dual/verification.py``'s
    engine-scale conformance harness.
    """
    from repro.engine.batch import BatchEdgeModel, BatchNodeModel

    if kind not in ("node", "edge"):
        raise ParameterError(f"kind must be 'node' or 'edge', got {kind!r}")
    adjacency = (
        graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
    )
    initial = np.asarray(initial_values, dtype=np.float64)
    if kind == "node":
        primal = BatchNodeModel(
            adjacency,
            initial,
            alpha,
            k=k,
            replicas=replicas,
            seed=seed,
            lazy=lazy,
            backend=backend,
            kernel=kernel,
        )
    else:
        primal = BatchEdgeModel(
            adjacency,
            initial,
            alpha,
            replicas=replicas,
            seed=seed,
            lazy=lazy,
            backend=backend,
            kernel=kernel,
        )
    tracer = active_tracer()
    with tracer.span(
        "engine.duality",
        kind=kind,
        kernel=primal.kernel,
        replicas=replicas,
        steps=steps,
    ):
        with tracer.span("dual.primal_forward"):
            primal.record_selections()
            primal.run(steps)
            selections = primal.recorded_selections()

        diffusion = BatchDiffusion(
            adjacency,
            cost=initial,
            alpha=alpha,
            k=k if kind == "node" else 1,
            replicas=replicas,
            backend=backend,
        )
        with tracer.span("dual.reversed_replay"):
            diffusion.apply_selections(selections.reversed())
    return BatchDualityReport(
        xi_final=primal.values.copy(),
        w_final=np.ascontiguousarray(diffusion.costs),
        steps=steps,
        kind=kind,
        kernel=primal.kernel,
    )
