"""Shared block-selection drawing and recorded selection streams.

One R-round block of NodeModel / EdgeModel selections — the acting node
per (round, replica) plus the gathered neighbour sample — is needed by
*two* consumers: the primal batch models' fused/jit block plans
(:meth:`~repro.engine.batch.BatchAveragingProcess._plan_block`) and the
dual batch engine (:mod:`repro.engine.dual`), whose Diffusion Process
must consume **bit-identical selection streams** at a fixed seed so the
Lemma 5.2 coupling can be driven from one recorded stream.  This module
is that single home: :func:`draw_node_block` / :func:`draw_edge_block`
implement the exact draw-order contract of the kernel layer (see
:mod:`repro.engine.kernels` for the per-shape contract), and both the
primal models and the dual engine call them — identical streams by
construction, not by parallel maintenance.

:class:`RecordedSelections` is the engine-scale analogue of
:class:`~repro.core.schedule.Schedule`: a per-replica selection tensor
``(nodes, picked, keep)`` recorded from a live batch run, replayable
forwards (dual conformance) or reversed (the Lemma 5.2 identity) by the
dual batch processes, and convertible to a scalar ``Schedule`` per
replica for oracle cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.schedule import Schedule
from repro.engine.backend import SamplingBackend
from repro.exceptions import ParameterError


def split_lazy(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split the lazy coin off a uniform matrix.

    ``u`` is i.i.d. uniform on [0, 1); the leading bit is the coin
    (heads = perform the update) and ``2u mod 1`` is again uniform and
    independent of it — the same bit-recycling the per-round node/slot
    draw uses.
    """
    doubled = u * 2.0
    keep = doubled >= 1.0
    return keep, doubled - keep


def draw_node_block(
    sampler: SamplingBackend,
    rng: np.random.Generator,
    n: int,
    block_rounds: int,
    replicas: int,
    rows: np.ndarray,
    lazy: bool = False,
) -> tuple[np.ndarray, tuple[np.ndarray, ...] | np.ndarray, np.ndarray | None]:
    """Draw one R-round block of NodeModel selections for the active rows.

    Returns ``(nodes, picked, keep)`` where ``nodes`` is the ``(R, A)``
    acting-node matrix over the active rows, ``picked`` the gathered
    neighbour ids — a tuple of ``k`` matrices ``(R, A)`` for the
    ``k <= 2`` single-uniform decodes, or one ``(R, A, k)`` array for
    the ``k > 2`` subset sampler — and ``keep`` the lazy coin mask (or
    ``None``).  The randomness is drawn **once, C-order, for the full
    batch** (frozen replicas' columns are discarded), exactly per the
    kernel layer's block contract, so this function *is* the primal
    engine's selection stream.
    """
    full = rows.size == replicas
    k = sampler.k
    if k <= 2:
        # Node (and for k = 2 the ordered distinct neighbour pair)
        # decoded from ONE uniform per round: integer part selects the
        # node; the fractional part — exact, because floor-subtraction
        # of doubles is — carries ~44 spare mantissa bits that index
        # the neighbour slot (k = 1) or one of the deg*(deg-1) ordered
        # pairs (k = 2).
        u = rng.random((block_rounds, replicas))
        if not full:
            u = u[:, rows]
        keep = None
        if lazy:
            keep, u = split_lazy(u)
        np.multiply(u, n, out=u)
        nodes = u.astype(np.int64)
        np.subtract(u, nodes, out=u)
        if k == 1:
            return nodes, (sampler.pick_block(nodes, u),), keep
        if sampler._common_degree is not None:
            degree_m1 = int(sampler._common_degree) - 1
            np.multiply(u, float(degree_m1 + 1) * degree_m1, out=u)
        else:
            degree_m1 = sampler._degrees[nodes] - 1
            np.multiply(u, (degree_m1 + 1) * degree_m1, out=u)
        pair = u.astype(np.int64)
        first, second = np.divmod(pair, degree_m1)
        second += second >= first
        return (
            nodes,
            (
                sampler._pick_slots(nodes, first),
                sampler._pick_slots(nodes, second),
            ),
            keep,
        )

    # k > 2: node selector and subset keys come from one C-order draw so
    # block splits cannot reorder the stream; neighbour subsets are
    # computed for the full batch because the rejection strategy may
    # consume extra (data-dependent) variates.
    keys = None
    if sampler.uses_subset_keys:
        block = rng.random((block_rounds, replicas, sampler.d_max + 1))
        u = block[..., 0]
        keys = block[..., 1:]
    else:
        u = rng.random((block_rounds, replicas))
    keep = None
    if lazy:
        keep, u = split_lazy(u)
    nodes = (u * n).astype(np.int64)
    picked = sampler.pick_subsets(nodes, keys, rng)
    if not full:
        nodes = nodes[:, rows]
        picked = picked[:, rows, :]
        keep = None if keep is None else keep[:, rows]
    return nodes, picked, keep


def draw_edge_block(
    tails: np.ndarray,
    heads: np.ndarray,
    rng: np.random.Generator,
    block_rounds: int,
    replicas: int,
    rows: np.ndarray,
    lazy: bool = False,
) -> tuple[np.ndarray, tuple[np.ndarray, ...], np.ndarray | None]:
    """Draw one R-round block of EdgeModel selections for the active rows.

    Same return convention as :func:`draw_node_block` with ``picked`` a
    1-tuple (the selected head per entry): ``edge = floor(u * 2m)`` per
    the block contract.
    """
    u = rng.random((block_rounds, replicas))
    if rows.size != replicas:
        u = u[:, rows]
    keep = None
    if lazy:
        keep, u = split_lazy(u)
    edges = (u * len(tails)).astype(np.int64)
    return tails[edges], (heads[edges],), keep


def normalise_picked(
    picked: tuple[np.ndarray, ...] | Sequence[np.ndarray] | np.ndarray,
) -> np.ndarray:
    """Canonical ``(R, A, k)`` form of a block's neighbour picks."""
    if isinstance(picked, np.ndarray):
        if picked.ndim == 2:
            return picked[:, :, None]
        return picked
    return np.stack(tuple(picked), axis=-1)


@dataclass(frozen=True)
class RecordedSelections:
    """A per-replica selection stream recorded from a live batch run.

    ``nodes`` has shape ``(T, B)`` (acting node of replica ``b`` at
    round ``t``), ``picked`` shape ``(T, B, k)`` (its gathered
    neighbour sample), and ``keep`` is either ``None`` (every round of
    every replica performed an update) or a ``(T, B)`` mask whose
    ``False`` entries are no-ops — lazy tails, or rounds a frozen
    replica sat out.  The dual processes treat no-ops as identity maps,
    exactly like :meth:`Schedule.without_noops` steps.
    """

    nodes: np.ndarray
    picked: np.ndarray
    keep: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.nodes.ndim != 2:
            raise ParameterError(
                f"nodes must be (T, B), got shape {self.nodes.shape}"
            )
        if (
            self.picked.ndim != 3
            or self.picked.shape[:2] != self.nodes.shape
        ):
            raise ParameterError(
                f"picked must be (T, B, k) matching nodes {self.nodes.shape}, "
                f"got {self.picked.shape}"
            )
        if self.keep is not None and self.keep.shape != self.nodes.shape:
            raise ParameterError(
                f"keep must match nodes shape {self.nodes.shape}, "
                f"got {self.keep.shape}"
            )

    def __len__(self) -> int:
        return self.nodes.shape[0]

    @property
    def replicas(self) -> int:
        return self.nodes.shape[1]

    @property
    def k(self) -> int:
        return self.picked.shape[2]

    def reversed(self) -> "RecordedSelections":
        """The time-reversed stream ``chi^R`` of every replica at once."""
        return RecordedSelections(
            nodes=self.nodes[::-1],
            picked=self.picked[::-1],
            keep=None if self.keep is None else self.keep[::-1],
        )

    def schedule_for(self, replica: int) -> Schedule:
        """Replica ``replica``'s stream as a scalar :class:`Schedule`.

        No-op rounds become empty-sample steps, matching the scalar
        processes' lazy records — the bridge to the ``repro.core`` /
        ``repro.dual`` oracles in the conformance tests.
        """
        schedule = Schedule()
        for t in range(len(self)):
            if self.keep is not None and not self.keep[t, replica]:
                schedule.append(int(self.nodes[t, replica]), ())
            else:
                schedule.append(
                    int(self.nodes[t, replica]),
                    tuple(int(v) for v in self.picked[t, replica]),
                )
        return schedule

    @classmethod
    def concatenate(
        cls, parts: Sequence["RecordedSelections"]
    ) -> "RecordedSelections":
        """Join block-wise recordings into one stream."""
        if not parts:
            raise ParameterError("no recorded selection blocks to concatenate")
        keep = None
        if any(p.keep is not None for p in parts):
            keep = np.concatenate(
                [
                    p.keep
                    if p.keep is not None
                    else np.ones(p.nodes.shape, dtype=bool)
                    for p in parts
                ]
            )
        return cls(
            nodes=np.concatenate([p.nodes for p in parts]),
            picked=np.concatenate([p.picked for p in parts]),
            keep=keep,
        )
