"""Time-varying topologies for the batch engine: graph schedules.

Section 3 connects the averaging processes to voter-model analyses on
*dynamic* graphs; the processes stay well defined when the topology
changes between rounds as long as every snapshot is connected.  A
:class:`GraphSchedule` describes such a time-varying topology as a
finite set of frozen :class:`~repro.graphs.adjacency.Adjacency`
snapshots plus a deterministic map from the *segment index*
``j = t // switch_every`` to the snapshot active during rounds
``[j * switch_every, (j+1) * switch_every)``:

* :class:`CyclicSchedule` — rotate through the snapshots in order
  (``core.dynamic``'s historical behaviour);
* :class:`RandomSchedule` — draw each segment's snapshot uniformly from
  a dedicated counter-based stream, so snapshot choice is *random
  access* (segment ``j``'s snapshot is a pure function of
  ``(seed, j)``) and never interleaves with the simulation RNG;
* :class:`RewiringSchedule` — an edge-churn stream: successive
  snapshots derived from a base graph by connected degree-preserving
  double edge swaps, then rotated cyclically.

Determinism is load-bearing: the engine, the scalar wrapper and every
kernel must agree on which snapshot governs round ``t``, replays must
reconstruct the stream, and the disk cache keys results by
:meth:`GraphSchedule.content_hash`.  Schedules therefore never consume
the caller's generator and are hashable by content.

The engine discipline (see :mod:`repro.engine.batch`): kernel blocks
never straddle a switch boundary, so within one block the snapshot —
hence the sampling backend, the edge list and the pi weights — is
constant, and chunked convergence detection stays exact.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency

#: Valid ``graph_schedule=`` kinds accepted across the engine, API and CLI.
SCHEDULE_KINDS = ("cyclic", "random", "rewire")


def _freeze_snapshots(
    snapshots: Sequence[nx.Graph | Adjacency],
) -> tuple[Adjacency, ...]:
    """Freeze and validate a snapshot sequence (shared node set)."""
    if not snapshots:
        raise ParameterError("at least one snapshot is required")
    frozen = tuple(
        s if isinstance(s, Adjacency) else Adjacency.from_graph(s)
        for s in snapshots
    )
    n = frozen[0].n
    if any(a.n != n for a in frozen):
        raise ParameterError("all snapshots must share the same node set")
    return frozen


class GraphSchedule(abc.ABC):
    """A deterministic stream of graph snapshots over simulation rounds.

    Parameters
    ----------
    snapshots:
        Non-empty sequence of connected graphs on the same node set
        ``0..n-1`` (``networkx.Graph`` or frozen :class:`Adjacency`).
    switch_every:
        Rounds executed on a snapshot before the next segment begins.
    """

    kind: str = "abstract"

    def __init__(
        self,
        snapshots: Sequence[nx.Graph | Adjacency],
        switch_every: int,
    ) -> None:
        if switch_every < 1:
            raise ParameterError(
                f"switch_every must be positive, got {switch_every}"
            )
        self.snapshots = _freeze_snapshots(snapshots)
        self.switch_every = int(switch_every)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.snapshots[0].n

    @property
    def num_snapshots(self) -> int:
        return len(self.snapshots)

    @property
    def d_max(self) -> int:
        """Largest degree over all snapshots (the stacked-table width)."""
        return max(a.d_max for a in self.snapshots)

    @property
    def d_min(self) -> int:
        """Smallest minimum degree over all snapshots (bounds ``k``)."""
        return min(a.d_min for a in self.snapshots)

    @property
    def uniform_pi(self) -> bool:
        """Whether ``pi`` is the same (uniform) vector in every snapshot.

        True iff all snapshots are regular *with equal degree* — exactly
        the condition under which the simple average stays a martingale
        across switches (the dynamic regular/irregular dichotomy).
        """
        if not all(a.is_regular for a in self.snapshots):
            return False
        degree = self.snapshots[0].d_min
        return all(a.d_min == degree for a in self.snapshots)

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def snapshot_id(self, segment: int) -> int:
        """Index of the snapshot governing segment ``segment`` (>= 0)."""

    def snapshot_at(self, t: int) -> int:
        """Index of the snapshot governing round ``t`` (0-based)."""
        if t < 0:
            raise ParameterError(f"round index must be non-negative, got {t}")
        return self.snapshot_id(t // self.switch_every)

    def adjacency_at(self, t: int) -> Adjacency:
        """The frozen snapshot governing round ``t``."""
        return self.snapshots[self.snapshot_at(t)]

    def rounds_until_switch(self, t: int) -> int:
        """Rounds from ``t`` to the next switch boundary (always >= 1)."""
        return self.switch_every - (t % self.switch_every)

    def id_stream(self, start: int, rounds: int) -> np.ndarray:
        """Per-round snapshot ids for rounds ``start .. start+rounds-1``.

        The explicit snapshot-id stream consumed by replays and the
        conformance tests; the engine itself only needs the per-segment
        form because blocks never straddle a boundary.
        """
        if rounds < 0:
            raise ParameterError(f"rounds must be non-negative, got {rounds}")
        segments = (start + np.arange(rounds, dtype=np.int64)) // self.switch_every
        unique = np.unique(segments)
        lookup = {int(j): self.snapshot_id(int(j)) for j in unique}
        return np.array([lookup[int(j)] for j in segments], dtype=np.int64)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def _hash_extra(self) -> str:
        """Subclass-specific key material beyond snapshots + cadence."""
        return ""

    def content_hash(self) -> str:
        """Stable hex digest of the whole schedule.

        Covers the kind, the switch cadence, every snapshot's structure
        and any subclass state (e.g. the random stream seed) — the
        engine's disk cache keys dynamic results by this digest, so two
        schedules hash equal iff they generate the same snapshot stream.
        """
        digest = hashlib.sha256()
        material = f"{self.kind}|sw={self.switch_every}|{self._hash_extra()}|"
        digest.update(material.encode())
        for adjacency in self.snapshots:
            digest.update(adjacency.content_hash().encode())
        return digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSchedule):
            return NotImplemented
        return self.content_hash() == other.content_hash()

    def __hash__(self) -> int:
        return hash(self.content_hash())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(snapshots={self.num_snapshots}, "
            f"n={self.n}, switch_every={self.switch_every})"
        )


class CyclicSchedule(GraphSchedule):
    """Rotate through the snapshots in order: segment ``j`` uses ``j % S``."""

    kind = "cyclic"

    def snapshot_id(self, segment: int) -> int:
        return segment % self.num_snapshots


class RandomSchedule(GraphSchedule):
    """Each segment's snapshot drawn uniformly from a counter-based stream.

    Segment ``j``'s snapshot is a pure function of ``(seed, j)`` —
    random access, reproducible, and independent of the simulation RNG,
    so batch and scalar runs (and replays) see the same stream without
    any draw-order coupling.
    """

    kind = "random"

    def __init__(
        self,
        snapshots: Sequence[nx.Graph | Adjacency],
        switch_every: int,
        seed: int = 0,
    ) -> None:
        super().__init__(snapshots, switch_every)
        if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
            raise ParameterError(
                f"RandomSchedule needs a deterministic integer seed, got {seed!r}"
            )
        self.seed = int(seed)
        self._ids: dict[int, int] = {}

    #: Memoised segment ids are dropped beyond this many entries: ids
    #: are cheap pure functions of (seed, segment), so the cache is an
    #: optimisation that must not grow with the horizon of a run.
    _ID_CACHE_LIMIT = 4096

    def snapshot_id(self, segment: int) -> int:
        cached = self._ids.get(segment)
        if cached is None:
            sequence = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(segment,)
            )
            cached = int(
                np.random.default_rng(sequence).integers(self.num_snapshots)
            )
            if len(self._ids) >= self._ID_CACHE_LIMIT:
                self._ids.clear()
            self._ids[segment] = cached
        return cached

    def _hash_extra(self) -> str:
        return f"seed={self.seed}"

    def __getstate__(self) -> dict:
        # The id cache is derived state; drop it so pickles stay small
        # and equality-by-content is preserved across workers.
        state = self.__dict__.copy()
        state["_ids"] = {}
        return state


class RewiringSchedule(CyclicSchedule):
    """An edge-churn stream: successive degree-preserving rewirings.

    Snapshot 0 is the (frozen) base graph; snapshot ``s`` is snapshot
    ``s - 1`` with ``rewires`` connected double edge swaps applied
    (degrees preserved, connectivity maintained), generated once at
    construction from ``seed`` and then rotated cyclically.  When a
    snapshot admits no valid swap (e.g. a complete graph) the churn is
    a no-op and the snapshot repeats.
    """

    kind = "rewire"

    def __init__(
        self,
        base_graph: nx.Graph | Adjacency,
        num_snapshots: int,
        switch_every: int,
        rewires: int = 1,
        seed: int = 0,
    ) -> None:
        if num_snapshots < 1:
            raise ParameterError(
                f"num_snapshots must be positive, got {num_snapshots}"
            )
        if rewires < 1:
            raise ParameterError(f"rewires must be positive, got {rewires}")
        base = (
            base_graph
            if isinstance(base_graph, Adjacency)
            else Adjacency.from_graph(base_graph)
        )
        working = base.to_networkx()
        snapshots = [base]
        for step in range(1, num_snapshots):
            try:
                nx.connected_double_edge_swap(
                    working, nswap=rewires, seed=seed + step
                )
            except nx.NetworkXError:
                # No valid swap exists (dense/small graphs): keep the
                # snapshot unchanged rather than failing the stream.
                pass
            snapshots.append(Adjacency.from_graph(working.copy()))
        super().__init__(snapshots, switch_every)
        self.rewires = int(rewires)
        self.seed = int(seed)

    def _hash_extra(self) -> str:
        # Snapshot hashes already pin the realized stream; the seed and
        # churn rate are recorded for readable cache-entry sidecars.
        return f"seed={self.seed}|rewires={self.rewires}"


def build_schedule(
    kind: str,
    graphs: Sequence[nx.Graph | Adjacency],
    switch_every: int,
    seed: int = 0,
    rewires: int | None = None,
) -> GraphSchedule:
    """Resolve a schedule by kind name (the API/CLI entry point).

    ``graphs`` is the snapshot pool for ``"cyclic"`` / ``"random"``;
    for ``"rewire"`` the first graph is the churn base and
    ``len(graphs)`` snapshots are derived from it (``rewires`` defaults
    to one eighth of the base's edges, at least 1).
    """
    from repro.obs.trace import active_tracer

    with active_tracer().span(
        "engine.build_schedule", kind=kind, snapshots=len(graphs)
    ):
        if kind == "cyclic":
            return CyclicSchedule(graphs, switch_every)
        if kind == "random":
            return RandomSchedule(graphs, switch_every, seed=seed)
        if kind == "rewire":
            frozen = _freeze_snapshots(graphs)
            churn = (
                rewires if rewires is not None else max(1, frozen[0].m // 8)
            )
            return RewiringSchedule(
                frozen[0],
                num_snapshots=len(frozen),
                switch_every=switch_every,
                rewires=churn,
                seed=seed,
            )
    raise ParameterError(
        f"unknown graph schedule {kind!r}; expected one of "
        + ", ".join(repr(k) for k in SCHEDULE_KINDS)
    )
