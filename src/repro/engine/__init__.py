"""Vectorized batch-replica simulation engine.

Simulates ``B`` independent replicas of the averaging processes as one
``(B, n)`` value matrix with fully vectorized NumPy rounds — batched
node/edge selection, batched k-neighbour sampling through pluggable
dense/CSR backends, incremental per-replica potential tracking, and
convergence masking so finished replicas stop costing work.  Identical
in law to the scalar :mod:`repro.core` processes (which remain the
correctness oracle), 1–2 orders of magnitude faster per replica.

Layers
------
:mod:`repro.engine.backend`
    Batched k-neighbour sampling (dense padded table vs CSR gather),
    including the stacked multi-snapshot form for dynamic topologies.
:mod:`repro.engine.dynamic`
    Time-varying topologies: ``GraphSchedule`` (cyclic / random /
    edge-rewiring snapshot streams) consumed by the batch models.
:mod:`repro.engine.batch`
    ``BatchNodeModel`` / ``BatchEdgeModel`` and their lazy variants.
:mod:`repro.engine.kernels`
    Fused multi-round stepping kernels: pre-drawn block randomness, a
    minimal-dispatch NumPy inner loop, optional numba backends (the
    serial ``"jit"`` and the replica-sharded ``"jit-par"``), and the
    statistical-parity array-API backend (``"cupy"``); the full dial is
    ``kernel="auto"|"numpy"|"fused"|"jit"|"jit-par"|"cupy"``.
:mod:`repro.engine.calibration`
    The persisted per-machine calibration table behind the measured
    ``kernel="auto"`` regime picker (``repro bench calibrate``).
:mod:`repro.engine.driver`
    Run-to-consensus over a batch, replica sharding, multiprocessing,
    and the picklable :class:`~repro.engine.driver.EngineSpec`.
:mod:`repro.engine.cache`
    On-disk memoisation keyed by (model, graph hash, alpha, k, seed,
    tolerance) so repeated sweeps resume for free.
:mod:`repro.engine.selection`
    The single home of block-selection drawing (shared by the primal
    block kernels and the dual engine) and recorded per-replica
    selection streams.
:mod:`repro.engine.dual`
    The batch dual engine: ``BatchDiffusion`` / ``BatchWalks`` /
    ``BatchCoalescing``, ``DualSpec`` cache keying, sharded
    coalescence-time sampling, and the engine-scale Lemma 5.2
    shared-schedule duality harness (``run_duality_batch``).
"""

from repro.engine.backend import (
    CSRBackend,
    DenseBackend,
    SamplingBackend,
    SnapshotBackends,
    select_backend,
)
from repro.engine.dynamic import (
    SCHEDULE_KINDS,
    CyclicSchedule,
    GraphSchedule,
    RandomSchedule,
    RewiringSchedule,
    build_schedule,
)
from repro.engine.calibration import (
    CalibrationCell,
    CalibrationTable,
    calibrate,
    calibration_path,
    load_calibration,
)
from repro.engine.kernels import (
    KERNEL_CHOICES,
    STREAM_EXACT_KERNELS,
    autopick_kernel,
    available_kernels,
    cupy_available,
    effective_thread_count,
    numba_available,
    resolve_kernel,
    set_thread_cap,
    validate_kernel,
)
from repro.engine.batch import (
    BatchAveragingProcess,
    BatchEdgeModel,
    BatchNodeModel,
)
from repro.engine.cache import ResultCache
from repro.engine.dual import (
    DUAL_KINDS,
    BatchCoalescing,
    BatchDiffusion,
    BatchDualityReport,
    BatchWalks,
    DualSpec,
    run_duality_batch,
    sample_coalescence_times,
)
from repro.engine.selection import RecordedSelections
from repro.engine.driver import (
    BatchConsensusResult,
    EngineSpec,
    measure_t_eps_batch,
    run_to_consensus_batch,
    sample_f_batch,
    sample_t_eps_batch,
)

__all__ = [
    "BatchAveragingProcess",
    "BatchCoalescing",
    "BatchConsensusResult",
    "BatchDiffusion",
    "BatchDualityReport",
    "BatchEdgeModel",
    "BatchNodeModel",
    "BatchWalks",
    "CSRBackend",
    "CalibrationCell",
    "CalibrationTable",
    "DUAL_KINDS",
    "DualSpec",
    "RecordedSelections",
    "run_duality_batch",
    "sample_coalescence_times",
    "CyclicSchedule",
    "DenseBackend",
    "EngineSpec",
    "GraphSchedule",
    "KERNEL_CHOICES",
    "RandomSchedule",
    "ResultCache",
    "RewiringSchedule",
    "SCHEDULE_KINDS",
    "STREAM_EXACT_KERNELS",
    "SamplingBackend",
    "SnapshotBackends",
    "autopick_kernel",
    "available_kernels",
    "build_schedule",
    "calibrate",
    "calibration_path",
    "cupy_available",
    "effective_thread_count",
    "load_calibration",
    "measure_t_eps_batch",
    "numba_available",
    "resolve_kernel",
    "set_thread_cap",
    "validate_kernel",
    "run_to_consensus_batch",
    "sample_f_batch",
    "sample_t_eps_batch",
    "select_backend",
]
