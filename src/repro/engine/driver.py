"""Batch drivers: run a replica batch to consensus, shard, parallelise.

:class:`EngineSpec` is a picklable, hashable description of one process
configuration (model kind, frozen graph, initial vector, parameters).
The drivers consume specs rather than live process objects so batches
can be rebuilt inside worker processes and results memoised on disk:

* :func:`run_to_consensus_batch` / :func:`measure_t_eps_batch` — the
  vectorized equivalents of
  :func:`repro.core.convergence.run_to_consensus` and
  :func:`~repro.core.convergence.measure_t_eps` over a live batch;
* :func:`sample_f_batch` / :func:`sample_t_eps_batch` — spec-level
  entry points that shard the replica budget into chunks (bounding peak
  memory), optionally fan the shards out over worker processes, and
  optionally memoise through :class:`repro.engine.cache.ResultCache`.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine.batch import (
    BatchAveragingProcess,
    BatchEdgeModel,
    BatchNodeModel,
)
from repro.engine.dynamic import GraphSchedule
from repro.engine.kernels import (
    DEFAULT_BLOCK_ROUNDS,
    resolve_kernel,
    set_thread_cap,
    validate_kernel,
)
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.obs.metrics import METRICS
from repro.obs.trace import Span, Tracer, activate, active_tracer
from repro.rng import SeedLike

#: Replicas per shard when the caller does not choose one.
_DEFAULT_SHARD = 1024


@dataclass(frozen=True, eq=False)
class EngineSpec:
    """Everything needed to rebuild one process configuration.

    ``kind`` is ``"node"`` or ``"edge"``; ``k`` is ignored for the edge
    model.  Instances are picklable (for multiprocessing shards),
    hashable/comparable by content (the ndarray field rules out the
    dataclass-generated ``__eq__``/``__hash__``), and expose
    :meth:`cache_token` for result memoisation.
    """

    kind: str
    adjacency: Adjacency
    initial_values: np.ndarray
    alpha: float
    k: int = 1
    lazy: bool = False
    backend: str = "auto"
    kernel: str = "auto"
    threads: Optional[int] = None
    graph_schedule: Optional[GraphSchedule] = None
    block_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("node", "edge"):
            raise ParameterError(f"kind must be 'node' or 'edge', got {self.kind!r}")
        validate_kernel(self.kernel)
        if self.threads is not None and self.threads < 1:
            raise ParameterError(
                f"threads must be positive, got {self.threads}"
            )
        if self.block_rounds is not None and self.block_rounds < 1:
            raise ParameterError(
                f"block_rounds must be positive, got {self.block_rounds}"
            )
        if (
            self.graph_schedule is not None
            and self.graph_schedule.snapshots[0] != self.adjacency
        ):
            raise ParameterError(
                "adjacency must be the graph schedule's first snapshot; "
                "use EngineSpec.for_schedule"
            )
        values = np.asarray(self.initial_values, dtype=np.float64)
        if values.shape != (self.adjacency.n,):
            raise ParameterError(
                f"initial_values must have shape ({self.adjacency.n},), "
                f"got {values.shape}"
            )
        object.__setattr__(self, "initial_values", values)

    @classmethod
    def for_schedule(
        cls, kind: str, graph_schedule: GraphSchedule, initial_values, alpha, **kwargs
    ) -> "EngineSpec":
        """Spec over a time-varying topology (adjacency filled in)."""
        return cls(
            kind=kind,
            adjacency=graph_schedule.snapshots[0],
            initial_values=initial_values,
            alpha=alpha,
            graph_schedule=graph_schedule,
            **kwargs,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EngineSpec):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.adjacency == other.adjacency
            and np.array_equal(self.initial_values, other.initial_values)
            and self.alpha == other.alpha
            and self.k == other.k
            and self.lazy == other.lazy
            and self.backend == other.backend
            and self.kernel == other.kernel
            and self.threads == other.threads
            and self.graph_schedule == other.graph_schedule
            and self.block_rounds == other.block_rounds
        )

    def __hash__(self) -> int:
        return hash((self.cache_token(), self.backend, self.kernel))

    @classmethod
    def from_process(cls, process) -> "EngineSpec":
        """Derive a spec from a scalar NodeModel / EdgeModel instance.

        Exact types only: a subclass may override the selection law, so
        it cannot be assumed batchable and raises like any other foreign
        process (callers fall back to the loop engine).
        """
        from repro.core.edge_model import EdgeModel
        from repro.core.node_model import NodeModel

        if type(process) is NodeModel:
            return cls(
                kind="node",
                adjacency=process.adjacency,
                initial_values=process._initial.copy(),
                alpha=process.alpha,
                k=process.k,
                lazy=process.lazy,
            )
        if type(process) is EdgeModel:
            return cls(
                kind="edge",
                adjacency=process.adjacency,
                initial_values=process._initial.copy(),
                alpha=process.alpha,
                lazy=process.lazy,
            )
        raise ParameterError(
            f"cannot derive an EngineSpec from {type(process).__name__}"
        )

    def build(self, replicas: int, seed: SeedLike = None) -> BatchAveragingProcess:
        """Instantiate the batch process for ``replicas`` replicas."""
        graph = (
            self.graph_schedule
            if self.graph_schedule is not None
            else self.adjacency
        )
        if self.kind == "node":
            batch: BatchAveragingProcess = BatchNodeModel(
                graph,
                self.initial_values,
                self.alpha,
                k=self.k,
                replicas=replicas,
                seed=seed,
                lazy=self.lazy,
                backend=self.backend,
                kernel=self.kernel,
                threads=self.threads,
            )
        else:
            batch = BatchEdgeModel(
                graph,
                self.initial_values,
                self.alpha,
                replicas=replicas,
                seed=seed,
                lazy=self.lazy,
                backend=self.backend,
                kernel=self.kernel,
                threads=self.threads,
            )
        if self.block_rounds is not None:
            batch.block_rounds = int(self.block_rounds)
        return batch

    def cache_token(self) -> str:
        """Deterministic text token identifying this configuration.

        Backends are bit-identical at a fixed seed and do not
        participate.  Kernels split into RNG *stream classes*: the
        legacy per-round ``"numpy"`` layout, the block layout shared
        (bit-identically) by ``"fused"``, ``"jit"`` and ``"jit-par"``,
        and the statistical-parity ``"cupy"`` device stream — cached
        samples are keyed by stream class so every stream-exact block
        run reuses the others' results while legacy and device runs
        stay distinct.  The stream class is computed context-free via
        :func:`~repro.engine.kernels.resolve_kernel` — never from the
        calibration table — so ``kernel="auto"``'s measured pick can
        only land inside the stream-exact set and cannot change the
        token (see the calibration-independence audit in
        ``tests/test_kernels.py``).  Block streams additionally key on
        the (normalised) ``block_rounds``: the realized trajectory of
        the rejection-sampled high-degree ``k``-subset regime depends
        on the block size, so a cache hit across differing block sizes
        must be impossible.  An explicit ``threads=`` request is
        appended for block streams (``|th=N``) — jit-par trajectories
        are bit-identical across thread counts, but the knob keys
        conservatively so perf A/B runs never alias; the default
        ``threads=None`` leaves every pre-existing token unchanged.
        Dynamic topologies append the schedule's content hash, which
        pins the full snapshot stream (snapshots, cadence, kind, seed).
        """
        values = np.ascontiguousarray(self.initial_values)
        digest = hashlib.sha256(values.tobytes()).hexdigest()[:16]
        k = self.k if self.kind == "node" else 1
        resolved = resolve_kernel(self.kernel)
        if resolved == "numpy":
            stream = "legacy"
        elif resolved == "cupy":
            stream = "cupy"
        else:
            stream = "block"
        token = (
            f"{self.kind}|g={self.adjacency.content_hash()[:16]}"
            f"|x0={digest}|alpha={self.alpha!r}|k={k}|lazy={int(self.lazy)}"
            f"|stream={stream}"
        )
        if stream != "legacy":
            rounds = (
                DEFAULT_BLOCK_ROUNDS
                if self.block_rounds is None
                else int(self.block_rounds)
            )
            token += f"|br={rounds}"
        if stream == "block" and self.threads is not None:
            token += f"|th={int(self.threads)}"
        if self.graph_schedule is not None:
            token += f"|sched={self.graph_schedule.content_hash()[:16]}"
        return token


@dataclass(frozen=True)
class BatchConsensusResult:
    """Per-replica outcome of a batched run-to-consensus.

    Arrays are aligned with the batch dimension: ``t[b]`` steps executed,
    ``value[b]`` the consensus value ``F_b``, plus the residual spread
    and potential at stopping time.
    """

    t: np.ndarray
    value: np.ndarray
    residual_discrepancy: np.ndarray
    phi: np.ndarray

    def __len__(self) -> int:
        return len(self.value)


def run_to_consensus_batch(
    batch: BatchAveragingProcess,
    discrepancy_tol: float = 1e-9,
    max_steps: int = 50_000_000,
    check_every: int = 64,
) -> BatchConsensusResult:
    """Run every replica until its value spread falls below the tolerance.

    The vectorized counterpart of
    :func:`repro.core.convergence.run_to_consensus`: the O(B * n) spread
    check runs every ``check_every`` rounds, converged replicas freeze
    immediately, and a :class:`ConvergenceError` is raised if any replica
    exhausts ``max_steps``.
    """
    if discrepancy_tol <= 0:
        raise ParameterError(f"discrepancy_tol must be positive, got {discrepancy_tol}")
    if check_every < 1:
        raise ParameterError(f"check_every must be positive, got {check_every}")

    B = batch.replicas
    t = np.zeros(B, dtype=np.int64)
    value = np.empty(B, dtype=np.float64)
    residual = np.empty(B, dtype=np.float64)
    phi_out = np.empty(B, dtype=np.float64)

    def _harvest(start: int) -> None:
        rows = batch._active_rows
        if len(rows) == 0:
            return
        # Spread via reductions, not a copy of the (A, n) active
        # submatrix: while most replicas are live, reduce over the full
        # matrix view directly; once most are frozen, the small active
        # gather is cheaper than scanning frozen rows.
        if 4 * len(rows) >= B:
            spread = (batch.values.max(axis=1) - batch.values.min(axis=1))[rows]
        else:
            active_values = batch.values[rows]
            spread = active_values.max(axis=1) - active_values.min(axis=1)
        mask = spread <= discrepancy_tol
        if not mask.any():
            return
        done = rows[mask]
        # Gather only the finished rows; exact moments for just those —
        # a full-batch resync here would be O(B * n) per harvest event.
        finished = batch.values[done]
        pi = batch._pi
        s1 = finished @ pi
        s2 = (finished**2) @ pi
        t[done] = batch.t - start
        value[done] = finished.mean(axis=1)
        residual[done] = spread[mask]
        phi_out[done] = np.maximum(s2 - s1 * s1, 0.0)
        batch.freeze(done)

    tracer = active_tracer()
    start = batch.t
    _harvest(start)
    while batch.num_active and batch.t - start < max_steps:
        remaining = max_steps - (batch.t - start)
        batch.run(min(check_every, remaining))
        _harvest(start)
        if tracer.enabled:
            # Harvest checks are chunk boundaries: sampling here cannot
            # change how many rounds run or what the RNG draws.
            tracer.record("engine.active_replicas", batch.t, batch.num_active)
            rows = batch._active_rows
            if len(rows):
                tracer.record(
                    "engine.max_discrepancy",
                    batch.t,
                    float(batch.discrepancy[rows].max()),
                )
    if tracer.enabled:
        tracer.streams.histogram("consensus_rounds", t)
    if batch.num_active:
        rows = batch._active_rows
        worst = float(batch.discrepancy[rows].max())
        raise ConvergenceError(
            f"{len(rows)} of {B} replicas above tol = {discrepancy_tol:.3e} "
            f"(worst spread {worst:.3e}) after {max_steps} steps"
        )
    return BatchConsensusResult(
        t=t, value=value, residual_discrepancy=residual, phi=phi_out
    )


def measure_t_eps_batch(
    batch: BatchAveragingProcess,
    epsilon: float,
    max_steps: int,
) -> np.ndarray:
    """Per-replica ``T_eps`` via the batch's exact per-round detection.

    Raises :class:`ConvergenceError` when any replica exhausts the step
    budget, matching :func:`repro.core.convergence.measure_t_eps`.
    """
    hit = batch.run_until_phi(epsilon, max_steps)
    if np.any(hit < 0):
        raise ConvergenceError(
            f"{int(np.sum(hit < 0))} of {batch.replicas} replicas above "
            f"epsilon = {epsilon:.3e} after {max_steps} steps"
        )
    return hit


# ----------------------------------------------------------------------
# Spec-level sampling: sharding, multiprocessing, caching
# ----------------------------------------------------------------------
def _shard_sizes(replicas: int, shard_size: int) -> list[int]:
    full, rest = divmod(replicas, shard_size)
    return [shard_size] * full + ([rest] if rest else [])


def _run_shard_f(
    spec: EngineSpec,
    replicas: int,
    seed: np.random.SeedSequence,
    discrepancy_tol: float,
    max_steps: int,
) -> np.ndarray:
    batch = spec.build(replicas, seed=seed)
    return run_to_consensus_batch(
        batch, discrepancy_tol=discrepancy_tol, max_steps=max_steps
    ).value


def _run_shard_t(
    spec: EngineSpec,
    replicas: int,
    seed: np.random.SeedSequence,
    epsilon: float,
    max_steps: int,
) -> np.ndarray:
    batch = spec.build(replicas, seed=seed)
    return measure_t_eps_batch(batch, epsilon, max_steps).astype(np.float64)


def _init_worker_threads(cap: int) -> None:
    """Pool initializer: bound kernel threads inside each worker.

    With ``processes`` workers each potentially running a threaded
    kernel (``jit-par``), the product ``workers x threads`` must not
    exceed the machine — each worker gets an equal share of the cores
    (at least one), applied before any batch is built in that process.
    """
    set_thread_cap(cap)


def _worker_thread_cap(processes: int, shards: int) -> int:
    """Per-worker thread budget: split cores over the live workers."""
    workers = max(1, min(processes, shards))
    return max(1, (os.cpu_count() or 1) // workers)


def _traced_worker(worker, spec: EngineSpec, replicas: int, seed, args):
    """Run ``worker`` in a child process under its own tracer.

    Returns ``(result, span_payloads, counter_delta)``: the worker's
    spans travel back through the ordinary shard-result plumbing and are
    re-attached under the parent's shard span; the counter delta (taken
    against a baseline so pool-reused workers never double-count) is
    folded into the parent's registry.
    """
    baseline = METRICS.snapshot()
    tracer = Tracer()
    with activate(tracer), tracer.span(
        "engine.worker", pid=os.getpid(), replicas=replicas
    ):
        out = worker(spec, replicas, seed, *args)
    return out, tracer.to_payload(), METRICS.delta(baseline)["counters"]


def _run_sharded(
    worker,
    spec: EngineSpec,
    replicas: int,
    seed: SeedLike,
    shard_size: Optional[int],
    processes: int,
    *args,
) -> np.ndarray:
    if replicas < 1:
        raise ParameterError(f"replicas must be positive, got {replicas}")
    if processes < 1:
        raise ParameterError(f"processes must be positive, got {processes}")
    shard_size = shard_size or _DEFAULT_SHARD
    sizes = _shard_sizes(replicas, shard_size)
    if isinstance(seed, np.random.SeedSequence):
        children = seed.spawn(len(sizes))
    elif isinstance(seed, np.random.Generator):
        children = seed.bit_generator.seed_seq.spawn(len(sizes))  # type: ignore[union-attr]
    else:
        children = np.random.SeedSequence(seed).spawn(len(sizes))
    tracer = active_tracer()
    if processes == 1 or len(sizes) == 1:
        parts = []
        for index, (size, child) in enumerate(zip(sizes, children)):
            t0 = time.perf_counter()
            with tracer.span("engine.shard", shard=index, replicas=size):
                parts.append(worker(spec, size, child, *args))
            METRICS.gauge("engine.shard_seconds", time.perf_counter() - t0)
    elif not tracer.enabled:
        with ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker_threads,
            initargs=(_worker_thread_cap(processes, len(sizes)),),
        ) as pool:
            futures = [
                pool.submit(worker, spec, size, child, *args)
                for size, child in zip(sizes, children)
            ]
            parts = [f.result() for f in futures]
    else:
        # Traced fan-out: each worker runs under its own tracer and
        # ships its spans (plus run-scoped counters) back with the
        # shard result; the parent re-attaches them under a per-shard
        # span, shifted onto its own clock.
        with ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker_threads,
            initargs=(_worker_thread_cap(processes, len(sizes)),),
        ) as pool:
            futures = [
                pool.submit(_traced_worker, worker, spec, size, child, args)
                for size, child in zip(sizes, children)
            ]
            parts = []
            for index, future in enumerate(futures):
                t0 = time.perf_counter()
                with tracer.span(
                    "engine.shard", shard=index, replicas=sizes[index]
                ) as handle:
                    out, span_payloads, counters = future.result()
                METRICS.gauge("engine.shard_seconds", time.perf_counter() - t0)
                worker_spans = [Span.from_payload(p) for p in span_payloads]
                tracer.attach(handle.span, worker_spans, handle.span.start)
                if worker_spans:
                    handle.add(worker_s=worker_spans[0].duration)
                for name, value in counters.items():
                    METRICS.count(name, value)
                parts.append(out)
    return np.concatenate(parts)


def sample_f_batch(
    spec: EngineSpec,
    replicas: int,
    seed: SeedLike = None,
    discrepancy_tol: float = 1e-8,
    max_steps: int = 50_000_000,
    shard_size: Optional[int] = None,
    processes: int = 1,
    cache: "Optional[object]" = None,
) -> np.ndarray:
    """I.i.d. samples of the convergence value ``F`` from the batch engine.

    ``shard_size`` bounds each batch's memory footprint (replicas are
    split into chunks of at most this many rows); ``processes > 1`` fans
    the shards out across worker processes; ``cache`` (a
    :class:`repro.engine.cache.ResultCache`) memoises the whole call when
    the seed is deterministic.
    """
    params = (
        f"F|tol={discrepancy_tol!r}|max={max_steps}|r={replicas}"
        f"|shard={shard_size or _DEFAULT_SHARD}"
    )
    tracer = active_tracer()
    with tracer.span(
        "engine.sample_f", replicas=replicas, processes=processes
    ) as handle:
        if cache is not None:
            with tracer.span("cache.load"):
                hit = cache.load(spec, params, seed)
            if hit is not None:
                handle.add(cache="hit")
                return hit
        out = _run_sharded(
            _run_shard_f,
            spec,
            replicas,
            seed,
            shard_size,
            processes,
            discrepancy_tol,
            max_steps,
        )
        if cache is not None:
            with tracer.span("cache.store"):
                cache.store(spec, params, seed, out)
    return out


def sample_t_eps_batch(
    spec: EngineSpec,
    epsilon: float,
    replicas: int,
    seed: SeedLike = None,
    max_steps: int = 50_000_000,
    shard_size: Optional[int] = None,
    processes: int = 1,
    cache: "Optional[object]" = None,
) -> np.ndarray:
    """I.i.d. samples of the convergence time ``T_eps`` (batch engine)."""
    params = (
        f"T|eps={epsilon!r}|max={max_steps}|r={replicas}"
        f"|shard={shard_size or _DEFAULT_SHARD}"
    )
    tracer = active_tracer()
    with tracer.span(
        "engine.sample_t_eps", replicas=replicas, processes=processes
    ) as handle:
        if cache is not None:
            with tracer.span("cache.load"):
                hit = cache.load(spec, params, seed)
            if hit is not None:
                handle.add(cache="hit")
                return hit
        out = _run_sharded(
            _run_shard_t,
            spec,
            replicas,
            seed,
            shard_size,
            processes,
            epsilon,
            max_steps,
        )
        if cache is not None:
            with tracer.span("cache.store"):
                cache.store(spec, params, seed, out)
    if tracer.enabled:
        tracer.streams.histogram("t_eps_rounds", out)
    return out
