"""Fused multi-round stepping kernels for the batch engine.

The PR-1 batch engine pays one full Python round — an RNG call plus a
dozen NumPy dispatches — per time step, so at small batch sizes the
interpreter, not arithmetic, dominates wall time.  The kernel layer
advances a batch by *blocks of R rounds per Python call*:

``"numpy"``
    The legacy per-round path (``step_batch`` in a loop).  Kept as the
    bit-compatible reference for PR-1 trajectories — with one carve-out:
    on very high-degree graphs (``d_max > 64``, ``k^2 <= d_min``) the
    ``k``-subset sampler now rejection-samples instead of drawing a full
    ``(B, d_max)`` key matrix, so those configurations consume a
    different stream than PR-1 did (same law; see
    :meth:`~repro.engine.backend.SamplingBackend._subset_slots`).
``"fused"``
    Pure NumPy: all block randomness is pre-drawn in one call, every
    value-independent quantity (selected nodes, neighbour slots, flat
    gather/scatter indices, pi weights) is computed block-wise, and the
    per-round inner loop shrinks to four NumPy dispatches — one fused
    gather, one multiply, one add, one scatter.
``"jit"``
    Optional Numba backend: the same pre-drawn variates and precomputed
    index blocks are consumed by one compiled loop over the whole block.
    Falls back to ``"fused"`` without numba (and per-call for shapes the
    compiled loop does not cover, currently ``k > 1``).
``"jit-par"``
    The threaded tier of the jit kernel: the same compiled loops with
    the per-round replica loop compiled under ``prange``.  Replicas are
    independent and each (round, replica) entry touches only its own
    row, so the parallel loop is race-free and performs the identical
    IEEE operations per entry — trajectories stay **bit-identical** to
    ``fused``/``jit`` at every thread count.  The thread budget is the
    ``threads=`` knob (see :func:`configure_threads`), capped so
    multiprocessing shard workers never oversubscribe the machine.
``"cupy"``
    Array-API state backend: the ``(B, n)`` primal state (and the dual
    ``(B, n, r)`` load cube) live on-device across whole blocks, with
    the block plans still pre-drawn host-side by the same NumPy RNG.
    Uses CuPy when importable and a NumPy array-API shim otherwise (the
    shim emulates the device buffer with an explicit host copy, so the
    residency/sync logic is exercised everywhere).  This backend is
    validated under the *statistical-parity* contract — device
    reduction order is not pinned — and therefore keys its own cache
    stream class and is never chosen by ``kernel="auto"``.

``kernel="auto"`` consults a measured calibration table
(:mod:`repro.engine.calibration`, refreshable via ``repro bench
calibrate``) keyed on ``(model kind, k, n, B)`` and restricted to the
stream-exact block kernels above, falling back to the historical
heuristic (jit if numba imports, else fused) when no table exists.

Block contract
--------------
One block advances the active replicas by ``R`` rounds.  Randomness is
drawn **once per block, for the full batch**: a single C-order uniform
matrix whose row ``r`` holds round ``r``'s variates and whose column
``b`` belongs to replica ``b``.  Because NumPy fills arrays from the
bit stream in C order, splitting a run into blocks of any size consumes
the stream identically — trajectories are *chunk-invariant*, and frozen
replicas (whose columns are drawn but discarded) never shift their
neighbours' variates.  Per shape the draw is:

* node ``k = 1``: ``U ~ (R, B)``; ``node = floor(u * n)``, neighbour
  slot from the fractional part (as in the per-round engine);
* node ``k = 2``: ``U ~ (R, B)``; the node from the integer part of
  ``u * n``, and from the (exact) fractional part one of the
  ``deg * (deg - 1)`` *ordered distinct neighbour pairs* — no key
  matrix at all;
* edge: ``U ~ (R, B)``; ``edge = floor(u * 2m)``;
* node ``k > 2`` (full-key subsets): ``U ~ (R, B, d_max + 1)``; column
  0 selects the node, the remaining columns are the subset keys;
* lazy variants split one extra leading bit off the same uniform:
  ``coin = (u >= 1/2)``, then ``2u mod 1`` is again uniform.

(The rejection-sampled ``k > 1`` path for very high-degree graphs —
see :meth:`~repro.engine.backend.SamplingBackend._subset_slots` — draws
a variable number of variates and is therefore the one shape whose
realized trajectory depends on the block size; its hitting times remain
exact for the trajectory actually run.)

The executors below receive a fully precomputed :class:`BlockPlan` and
only perform the value-dependent work.  In record mode they return the
per-round ``(old, new)`` values of every updated entry, from which the
caller derives the exact per-round moment increments
``(d1, d2) = (pi_u * (new - old), d1 * (new + old))`` — the inputs to
chunked convergence detection (see ``BatchAveragingProcess.run_until_phi``
for the backdating math).  Fused and jit kernels perform bit-identical
IEEE operations, so a fixed seed yields bit-identical trajectories
across the two.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.exceptions import ParameterError
from repro.obs.metrics import METRICS

#: Valid ``kernel=`` names accepted across the engine, API and CLI.
#:
#: ``"auto"`` — measured pick among the stream-exact block kernels
#: (calibration table, else the jit-if-numba heuristic);
#: ``"numpy"`` — legacy per-round reference path (its own RNG stream);
#: ``"fused"`` — pure-NumPy block kernel, always available;
#: ``"jit"`` / ``"jit-par"`` — serial / ``prange``-threaded numba
#: block loops, bit-identical to ``"fused"`` (visible fused fallback
#: without numba);
#: ``"cupy"`` — array-API device-state backend (CuPy, else a NumPy
#: shim), statistical-parity contract, own cache stream class.
KERNEL_CHOICES = ("auto", "numpy", "fused", "jit", "jit-par", "cupy")

#: Kernels whose trajectories are bit-identical to ``"fused"`` at a
#: fixed seed (one shared "block" RNG stream class).  ``kernel="auto"``
#: only ever picks from this set, so the auto pick can never change a
#: cache key's stream identity or the realized trajectory.
STREAM_EXACT_KERNELS = ("fused", "jit", "jit-par")

#: Default rounds per block: large enough to amortise the block plan to
#: ~0.02 us/round, small enough that run_until_phi over-steps at most
#: this many rounds past each replica's crossing (times stay exact).
DEFAULT_BLOCK_ROUNDS = 256

_NUMBA_STATE: dict = {}

_CUPY_STATE: dict = {}


def numba_available() -> bool:
    """Whether the optional numba JIT backend can be imported (cached)."""
    if "ok" not in _NUMBA_STATE:
        try:
            import numba  # noqa: F401

            _NUMBA_STATE["ok"] = True
        except ImportError:
            _NUMBA_STATE["ok"] = False
    return _NUMBA_STATE["ok"]


def cupy_available() -> bool:
    """Whether real CuPy can be imported (cached).

    The ``"cupy"`` kernel itself never *requires* CuPy — it degrades to
    a NumPy array-API shim so the device-residency logic stays testable
    on CPU-only runners — but BENCH and provenance records label which
    device actually backed a run.
    """
    if "ok" not in _CUPY_STATE:
        try:
            import cupy  # noqa: F401

            _CUPY_STATE["ok"] = True
        except ImportError:
            _CUPY_STATE["ok"] = False
    return _CUPY_STATE["ok"]


def array_namespace():
    """``(xp, device_label)`` backing the ``"cupy"`` kernel.

    Returns the CuPy module and ``"cupy"`` when importable, else NumPy
    and ``"numpy-shim"``.
    """
    if cupy_available():
        import cupy

        return cupy, "cupy"
    return np, "numpy-shim"


def available_kernels() -> tuple:
    """The effective kernel names runnable in this process.

    ``"auto"`` is excluded (it is a request, not an executor); ``jit``
    and ``jit-par`` appear only when numba imports.  ``"cupy"`` is
    always runnable (shim-backed without CuPy).
    """
    names = ["numpy", "fused"]
    if numba_available():
        names += ["jit", "jit-par"]
    names.append("cupy")
    return tuple(names)


# ----------------------------------------------------------------------
# Thread budget (the jit-par knob)
# ----------------------------------------------------------------------
#: Per-process kernel-thread cap, set by the multiprocessing sharder's
#: worker initializer so ``workers x threads <= cpu_count`` (satellite:
#: no oversubscription).  ``None`` means uncapped.
_THREAD_STATE: dict = {"cap": None}


def set_thread_cap(cap: int | None) -> None:
    """Cap this process's kernel threads (``None`` lifts the cap).

    Called by :func:`repro.engine.driver._init_worker_threads` inside
    each multiprocessing shard worker.  Also exports ``OMP_NUM_THREADS``
    so BLAS/OpenMP pools in the worker respect the same budget.
    """
    if cap is not None:
        cap = max(1, int(cap))
        os.environ["OMP_NUM_THREADS"] = str(cap)
    _THREAD_STATE["cap"] = cap
    if numba_available():
        import numba

        try:
            numba.set_num_threads(effective_thread_count(None))
        except ValueError:  # pragma: no cover - numba threading layer quirk
            pass


def effective_thread_count(requested: int | None) -> int:
    """The thread count the jit-par kernel would actually run with.

    ``requested=None`` means "all available".  The result is clamped to
    the process thread cap (see :func:`set_thread_cap`) and to numba's
    own maximum; without numba every kernel is single-threaded.
    """
    if not numba_available():
        return 1
    import numba

    limit = numba.config.NUMBA_NUM_THREADS
    threads = limit if requested is None else max(1, int(requested))
    cap = _THREAD_STATE["cap"]
    if cap is not None:
        threads = min(threads, cap)
    return min(threads, limit)


def configure_threads(requested: int | None) -> int:
    """Apply the thread budget for this process and return it.

    Sets numba's runtime thread count (a cheap, idempotent call) to the
    clamped budget and records it on the ``engine.kernel_threads``
    gauge so provenance/telemetry can report the *effective* count.
    """
    threads = effective_thread_count(requested)
    if numba_available():
        import numba

        numba.set_num_threads(threads)
    METRICS.gauge("engine.kernel_threads", threads)
    return threads


def validate_kernel(name: str) -> str:
    """Check ``name`` against :data:`KERNEL_CHOICES` (shared validator)."""
    if name not in KERNEL_CHOICES:
        raise ParameterError(
            f"unknown kernel {name!r}; expected one of "
            + ", ".join(repr(k) for k in KERNEL_CHOICES)
        )
    return name


_FALLBACK_WARNED = False


def _warn_fallback(name: str) -> None:
    """One-time visible degrade of an explicit numba-kernel request."""
    global _FALLBACK_WARNED
    METRICS.count("engine.kernel_fallback")
    if not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        warnings.warn(
            f"kernel={name!r} requested but numba is not importable; "
            "falling back to the fused NumPy kernel "
            "(this warning is emitted once per process)",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_kernel(name: str) -> str:
    """Resolve a requested kernel name to the effective one.

    ``"auto"`` resolves with the jit-if-numba heuristic here — the
    *workload-aware* measured pick lives in :func:`autopick_kernel` and
    is applied where the batch shape is known (batch construction);
    both only ever pick stream-exact block kernels, so this context-free
    resolution is all a cache key needs.  An explicit ``"jit"`` or
    ``"jit-par"`` request degrades to ``"fused"`` without numba — numba
    is an optional accelerator, never a requirement — but *visibly*: a
    one-time ``RuntimeWarning`` plus the ``engine.kernel_fallback``
    counter, so BENCH and provenance records stop silently reporting a
    backend that never ran.  ``"cupy"`` always resolves to itself (the
    NumPy array-API shim backs it when CuPy is absent).
    """
    validate_kernel(name)
    if name in ("numpy", "fused", "cupy"):
        return name
    if name == "auto":
        return "jit" if numba_available() else "fused"
    # jit / jit-par
    if numba_available():
        return name
    _warn_fallback(name)
    return "fused"


def autopick_kernel(
    kind: str, k: int, n: int, replicas: int
) -> tuple[str, str]:
    """Workload-aware ``kernel="auto"`` resolution: ``(kernel, reason)``.

    Consults the persisted calibration table
    (:mod:`repro.engine.calibration`) keyed on ``(model kind, k, n, B)``
    when one exists — reason ``"calibrated"`` — and falls back to the
    historical heuristic (jit when numba imports, else fused) — reason
    ``"heuristic"``.  Only kernels in :data:`STREAM_EXACT_KERNELS`
    *and* runnable in this process are eligible, so the pick never
    changes the realized trajectory, the RNG stream class, or a cache
    key, and never selects an unavailable backend.
    """
    exact = set(STREAM_EXACT_KERNELS)
    candidates = tuple(
        name for name in available_kernels() if name in exact
    )
    try:
        from repro.engine.calibration import load_calibration

        table = load_calibration()
    except Exception:  # pragma: no cover - defensive: bad table on disk
        table = None
    if table is not None:
        pick = table.pick(kind, k, n, replicas, candidates)
        if pick is not None:
            return pick, "calibrated"
    return ("jit" if numba_available() else "fused"), "heuristic"


class BlockPlan:
    """Precomputed, value-independent description of one R-round block.

    ``write_idx`` is the ``(R, A)`` flat index of each round's updated
    entry.  The non-lazy fast path packs all gather and write indices
    into one ``(R, (k+1) A)`` matrix ``cat_idx = [neighbour_1 | ... |
    neighbour_k | write]`` whose matching ``coef = [beta/k ... |
    alpha ...]`` turns the unilateral update into a single fused
    gather, one multiply and ``k`` slice adds per round.
    ``gather_idx`` is used instead by the lazy paths (shape ``(R, A)``
    or ``(R, A, k)``).  ``weights`` are the pi weights of the written
    entries (scalar on regular graphs); ``keep`` is the lazy coin
    mask.
    """

    __slots__ = ("write_idx", "cat_idx", "coef", "gather_idx", "weights", "keep", "k")

    def __init__(
        self,
        write_idx: np.ndarray,
        cat_idx: np.ndarray | None = None,
        coef: np.ndarray | None = None,
        gather_idx: np.ndarray | None = None,
        weights: np.ndarray | float = 0.0,
        keep: np.ndarray | None = None,
        k: int = 1,
    ) -> None:
        self.write_idx = write_idx
        self.cat_idx = cat_idx
        self.coef = coef
        self.gather_idx = gather_idx
        self.weights = weights
        self.keep = keep
        self.k = k

    @property
    def rounds(self) -> int:
        return self.write_idx.shape[0]

    @property
    def active(self) -> int:
        return self.write_idx.shape[1]


def run_block_fused(
    flat: np.ndarray, plan: BlockPlan, alpha: float, record: bool
) -> tuple[np.ndarray, np.ndarray] | None:
    """Execute one block with the fused NumPy kernel.

    Mutates ``flat`` (the batch's cached flat value view) in place.  In
    record mode returns ``(old, new)`` as ``(R, A)`` matrices of the
    written entries' values (zero rows where a lazy replica skipped its
    round, so the derived moment deltas vanish there).
    """
    R, A = plan.write_idx.shape
    beta = 1.0 - alpha
    if plan.cat_idx is not None:
        # Fast path: one fused gather of [neighbours... | old], one
        # multiply by [beta/k... | alpha...], k slice adds, one scatter
        # per round.  Bound methods and zipped row views keep the
        # interpreter's share of each round to a handful of bytecodes.
        coef = plan.coef
        gather = flat.__getitem__
        scatter = flat.__setitem__
        add = np.add
        parts = plan.k + 1
        if record:
            # Only the written entries' old values feed the moment
            # deltas, so store just that (R, A) slice of each gather.
            old_cut = slice((parts - 1) * A, parts * A)
            old_blk = np.empty((R, A))
            new_blk = np.empty((R, A))
            if parts == 2:
                for ci, wi, oi, ni in zip(
                    plan.cat_idx, plan.write_idx, old_blk, new_blk
                ):
                    g = gather(ci)
                    oi[:] = g[old_cut]
                    t = g * coef
                    add(t[:A], t[A:], out=ni)
                    scatter(wi, ni)
            else:
                cuts = [slice(j * A, (j + 1) * A) for j in range(parts)]
                for ci, wi, oi, ni in zip(
                    plan.cat_idx, plan.write_idx, old_blk, new_blk
                ):
                    g = gather(ci)
                    oi[:] = g[old_cut]
                    t = g * coef
                    add(t[cuts[0]], t[cuts[1]], out=ni)
                    for cut in cuts[2:]:
                        add(ni, t[cut], out=ni)
                    scatter(wi, ni)
            return old_blk, new_blk
        if parts == 2:
            for ci, wi in zip(plan.cat_idx, plan.write_idx):
                t = gather(ci) * coef
                scatter(wi, t[:A] + t[A:])
            return None
        cuts = [slice(j * A, (j + 1) * A) for j in range(parts)]
        for ci, wi in zip(plan.cat_idx, plan.write_idx):
            t = gather(ci) * coef
            acc = t[cuts[0]] + t[cuts[1]]
            for cut in cuts[2:]:
                add(acc, t[cut], out=acc)
            scatter(wi, acc)
        return None

    # General path: lazy masking and/or k-neighbour means.
    w_rows = list(plan.write_idx)
    keep = plan.keep
    old_blk = new_blk = None
    if record:
        old_blk = np.zeros((R, A))
        new_blk = np.zeros((R, A))
    for i in range(R):
        widx = w_rows[i]
        gidx = plan.gather_idx[i]
        if keep is not None:
            mask = keep[i]
            widx = widx[mask]
            gidx = gidx[mask]
            if widx.size == 0:
                continue
        if plan.k == 1:
            means = flat[gidx]
        else:
            means = flat[gidx].mean(axis=1)
        old = flat[widx]
        new = alpha * old + beta * means
        flat[widx] = new
        if record:
            if keep is not None:
                old_blk[i][mask] = old
                new_blk[i][mask] = new
            else:
                old_blk[i] = old
                new_blk[i] = new
    if record:
        return old_blk, new_blk
    return None


# ----------------------------------------------------------------------
# Numba backend
# ----------------------------------------------------------------------
def _jit_functions():
    """Compile (once) and return the numba block loops, or ``None``."""
    if "fns" in _NUMBA_STATE:
        return _NUMBA_STATE["fns"]
    if not numba_available():
        _NUMBA_STATE["fns"] = None
        return None
    import numba

    # The k=1/edge fast path consumes the packed ``[gather | write]``
    # cat-index matrix directly (no per-block copies); record variants
    # additionally store the written entries' old/new values for the
    # chunked convergence detector.

    @numba.njit(cache=False)
    def block_cat(flat, cat_idx, alpha, old_blk, new_blk):
        R, A = old_blk.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                wi = cat_idx[r, A + j]
                old = flat[wi]
                mean = flat[cat_idx[r, j]]
                new = alpha * old + beta * mean
                flat[wi] = new
                old_blk[r, j] = old
                new_blk[r, j] = new

    @numba.njit(cache=False)
    def block_cat_norecord(flat, cat_idx, alpha):
        R = cat_idx.shape[0]
        A = cat_idx.shape[1] // 2
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                wi = cat_idx[r, A + j]
                flat[wi] = alpha * flat[wi] + beta * flat[cat_idx[r, j]]

    @numba.njit(cache=False)
    def block_lazy(flat, write_idx, gather_idx, keep, alpha, old_blk, new_blk):
        R, A = write_idx.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                if not keep[r, j]:
                    old_blk[r, j] = 0.0
                    new_blk[r, j] = 0.0
                    continue
                wi = write_idx[r, j]
                old = flat[wi]
                mean = flat[gather_idx[r, j]]
                new = alpha * old + beta * mean
                flat[wi] = new
                old_blk[r, j] = old
                new_blk[r, j] = new

    @numba.njit(cache=False)
    def block_lazy_norecord(flat, write_idx, gather_idx, keep, alpha):
        R, A = write_idx.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                if keep[r, j]:
                    wi = write_idx[r, j]
                    flat[wi] = alpha * flat[wi] + beta * flat[gather_idx[r, j]]

    _NUMBA_STATE["fns"] = {
        "cat": block_cat,
        "cat_norecord": block_cat_norecord,
        "lazy": block_lazy,
        "lazy_norecord": block_lazy_norecord,
    }
    return _NUMBA_STATE["fns"]


def _jit_par_functions():
    """Compile (once) and return the ``prange`` block loops, or ``None``.

    Identical bodies to :func:`_jit_functions` with the inner replica
    loop compiled under ``numba.prange``: replica columns are
    independent within a round (each ``(r, j)`` writes only its own
    row's flat entry and gathers only from its own row), so the
    parallel loop is race-free and each entry's IEEE arithmetic is
    unchanged — trajectories are bit-identical to the serial loops at
    every thread count.  The sequential outer loop preserves the
    round-to-round data dependence.
    """
    if "par_fns" in _NUMBA_STATE:
        return _NUMBA_STATE["par_fns"]
    if not numba_available():
        _NUMBA_STATE["par_fns"] = None
        return None
    import numba

    @numba.njit(parallel=True, cache=False)
    def block_cat_par(flat, cat_idx, alpha, old_blk, new_blk):
        R, A = old_blk.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in numba.prange(A):
                wi = cat_idx[r, A + j]
                old = flat[wi]
                mean = flat[cat_idx[r, j]]
                new = alpha * old + beta * mean
                flat[wi] = new
                old_blk[r, j] = old
                new_blk[r, j] = new

    @numba.njit(parallel=True, cache=False)
    def block_cat_norecord_par(flat, cat_idx, alpha):
        R = cat_idx.shape[0]
        A = cat_idx.shape[1] // 2
        beta = 1.0 - alpha
        for r in range(R):
            for j in numba.prange(A):
                wi = cat_idx[r, A + j]
                flat[wi] = alpha * flat[wi] + beta * flat[cat_idx[r, j]]

    @numba.njit(parallel=True, cache=False)
    def block_lazy_par(
        flat, write_idx, gather_idx, keep, alpha, old_blk, new_blk
    ):
        R, A = write_idx.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in numba.prange(A):
                if not keep[r, j]:
                    old_blk[r, j] = 0.0
                    new_blk[r, j] = 0.0
                    continue
                wi = write_idx[r, j]
                old = flat[wi]
                mean = flat[gather_idx[r, j]]
                new = alpha * old + beta * mean
                flat[wi] = new
                old_blk[r, j] = old
                new_blk[r, j] = new

    @numba.njit(parallel=True, cache=False)
    def block_lazy_norecord_par(flat, write_idx, gather_idx, keep, alpha):
        R, A = write_idx.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in numba.prange(A):
                if keep[r, j]:
                    wi = write_idx[r, j]
                    flat[wi] = (
                        alpha * flat[wi] + beta * flat[gather_idx[r, j]]
                    )

    _NUMBA_STATE["par_fns"] = {
        "cat": block_cat_par,
        "cat_norecord": block_cat_norecord_par,
        "lazy": block_lazy_par,
        "lazy_norecord": block_lazy_norecord_par,
    }
    return _NUMBA_STATE["par_fns"]


def run_block_jit(
    flat: np.ndarray, plan: BlockPlan, alpha: float, record: bool
) -> tuple[np.ndarray, np.ndarray] | None:
    """Execute one block with the numba kernel (fused fallback).

    Consumes the same precomputed plan — hence the same pre-drawn
    variates in the same order — as :func:`run_block_fused`, and
    performs the identical IEEE operations per entry, so trajectories
    are bit-identical across the two kernels at a fixed seed.  Shapes
    without a compiled loop (``k > 1``) and missing-numba environments
    fall back to the fused kernel per call.
    """
    return _run_block_numba(_jit_functions(), flat, plan, alpha, record)


def run_block_jit_par(
    flat: np.ndarray, plan: BlockPlan, alpha: float, record: bool
) -> tuple[np.ndarray, np.ndarray] | None:
    """Execute one block with the threaded numba kernel (fused fallback).

    The ``prange`` twin of :func:`run_block_jit`: same plan, same
    variates, same per-entry IEEE operations — bit-identical to
    ``fused``/``jit`` at every thread count.  The thread budget is
    whatever :func:`configure_threads` last applied in this process.
    """
    return _run_block_numba(_jit_par_functions(), flat, plan, alpha, record)


def _run_block_numba(fns, flat, plan, alpha, record):
    """Shared dispatch of the serial and ``prange`` numba loop sets."""
    if fns is None or plan.k != 1:
        return run_block_fused(flat, plan, alpha, record)
    if plan.cat_idx is not None:
        if not record:
            fns["cat_norecord"](flat, plan.cat_idx, alpha)
            return None
        R, A = plan.write_idx.shape
        old_blk = np.empty((R, A))
        new_blk = np.empty((R, A))
        fns["cat"](flat, plan.cat_idx, alpha, old_blk, new_blk)
        return old_blk, new_blk
    # Lazy path: _pack_plan allocates these arrays C-contiguous.
    if not record:
        fns["lazy_norecord"](
            flat, plan.write_idx, plan.gather_idx, plan.keep, alpha
        )
        return None
    R, A = plan.write_idx.shape
    old_blk = np.empty((R, A))
    new_blk = np.empty((R, A))
    fns["lazy"](
        flat, plan.write_idx, plan.gather_idx, plan.keep, alpha, old_blk, new_blk
    )
    return old_blk, new_blk


# ----------------------------------------------------------------------
# Array-API (CuPy / NumPy-shim) backend
# ----------------------------------------------------------------------
class ArrayApiBlockExecutor:
    """Device-resident block executor behind ``kernel="cupy"``.

    Holds a device copy of the batch's flat ``(B * n,)`` state across
    whole blocks: free-running blocks upload once and stay resident
    (the batch downloads via :meth:`sync_host` when a host observable
    is read), while record-mode blocks (chunked convergence detection)
    download after each block because the detector may rewind the host
    state.  Block plans are still pre-drawn host-side by the ordinary
    NumPy RNG and transferred per block, so the selection law and the
    stream draw order are untouched.  Without CuPy the "device" is an
    explicit NumPy copy — same residency logic, host arithmetic — which
    keeps the backend testable on CPU-only runners.

    Contract: *statistical parity*, not bit-exactness — device gather/
    scatter reduction order is not pinned to the fused kernel's.
    """

    def __init__(self) -> None:
        self.xp, self.device = array_namespace()
        self._dev: object | None = None

    # -- residency ------------------------------------------------------
    def _ensure_device(self, flat: np.ndarray):
        if self._dev is None:
            self._dev = self.xp.array(flat)
        return self._dev

    def _to_host(self, dev) -> np.ndarray:
        if self.device == "cupy":  # pragma: no cover - needs a GPU
            return self.xp.asnumpy(dev)
        return np.asarray(dev)

    def sync_host(self, flat: np.ndarray) -> None:
        """Download the device state into ``flat`` and drop residency.

        Dropping (rather than keeping a "clean" mirror) is what makes
        subsequent host writes — rewinds, ``apply_selection`` replays,
        per-round stepping — safe without any dirty tracking: the next
        block simply re-uploads.
        """
        if self._dev is None:
            return
        flat[:] = self._to_host(self._dev)
        self._dev = None

    # -- execution ------------------------------------------------------
    def __call__(
        self, flat: np.ndarray, plan: BlockPlan, alpha: float, record: bool
    ) -> tuple[np.ndarray, np.ndarray] | None:
        xp = self.xp
        dev = self._ensure_device(flat)
        R, A = plan.write_idx.shape
        beta = 1.0 - alpha
        old_blk = new_blk = None
        if record:
            old_blk = xp.zeros((R, A))
            new_blk = xp.zeros((R, A))
        if plan.cat_idx is not None:
            cat = xp.asarray(plan.cat_idx)
            coef = xp.asarray(plan.coef)
            parts = plan.k + 1
            for r in range(R):
                t = dev[cat[r]] * coef
                new = t.reshape(parts, A).sum(axis=0)
                if record:
                    old_blk[r] = dev[cat[r, plan.k * A:]]
                dev[cat[r, plan.k * A:]] = new
                if record:
                    new_blk[r] = new
        else:
            write = xp.asarray(plan.write_idx)
            gather = xp.asarray(plan.gather_idx)
            keep = None if plan.keep is None else xp.asarray(plan.keep)
            for r in range(R):
                widx = write[r]
                if plan.k == 1:
                    means = dev[gather[r]]
                else:
                    means = dev[gather[r]].mean(axis=1)
                old = dev[widx]
                new = alpha * old + beta * means
                if keep is not None:
                    kr = keep[r]
                    new = xp.where(kr, new, old)
                    if record:
                        old_blk[r] = xp.where(kr, old, 0.0)
                        new_blk[r] = xp.where(kr, new, 0.0)
                else:
                    if record:
                        old_blk[r] = old
                        new_blk[r] = new
                dev[widx] = new
        if not record:
            return None
        out = self._to_host(old_blk).copy(), self._to_host(new_blk).copy()
        # Detection mode may rewind over-stepped rounds on the host, so
        # hand authority back immediately.
        self.sync_host(flat)
        return out


#: Effective kernel name -> block executor (stateless executors only;
#: ``"cupy"`` needs a per-batch :class:`ArrayApiBlockExecutor` — use
#: :func:`make_block_executor`).
BLOCK_EXECUTORS = {
    "fused": run_block_fused,
    "jit": run_block_jit,
    "jit-par": run_block_jit_par,
}


def make_block_executor(kernel: str):
    """Block executor for an *effective* kernel name (``None`` = per-round).

    The single constructor the batch models use: stateless function for
    the fused/jit family, a fresh device-mirror instance for
    ``"cupy"``, ``None`` for the legacy ``"numpy"`` path.
    """
    if kernel == "cupy":
        return ArrayApiBlockExecutor()
    return BLOCK_EXECUTORS.get(kernel)
