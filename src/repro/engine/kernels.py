"""Fused multi-round stepping kernels for the batch engine.

The PR-1 batch engine pays one full Python round — an RNG call plus a
dozen NumPy dispatches — per time step, so at small batch sizes the
interpreter, not arithmetic, dominates wall time.  The kernel layer
advances a batch by *blocks of R rounds per Python call*:

``"numpy"``
    The legacy per-round path (``step_batch`` in a loop).  Kept as the
    bit-compatible reference for PR-1 trajectories — with one carve-out:
    on very high-degree graphs (``d_max > 64``, ``k^2 <= d_min``) the
    ``k``-subset sampler now rejection-samples instead of drawing a full
    ``(B, d_max)`` key matrix, so those configurations consume a
    different stream than PR-1 did (same law; see
    :meth:`~repro.engine.backend.SamplingBackend._subset_slots`).
``"fused"``
    Pure NumPy: all block randomness is pre-drawn in one call, every
    value-independent quantity (selected nodes, neighbour slots, flat
    gather/scatter indices, pi weights) is computed block-wise, and the
    per-round inner loop shrinks to four NumPy dispatches — one fused
    gather, one multiply, one add, one scatter.
``"jit"``
    Optional Numba backend: the same pre-drawn variates and precomputed
    index blocks are consumed by one compiled loop over the whole block.
    Auto-selected by ``kernel="auto"`` when numba imports; silently
    falls back to ``"fused"`` otherwise (and per-call for shapes the
    compiled loop does not cover, currently ``k > 1``).

Block contract
--------------
One block advances the active replicas by ``R`` rounds.  Randomness is
drawn **once per block, for the full batch**: a single C-order uniform
matrix whose row ``r`` holds round ``r``'s variates and whose column
``b`` belongs to replica ``b``.  Because NumPy fills arrays from the
bit stream in C order, splitting a run into blocks of any size consumes
the stream identically — trajectories are *chunk-invariant*, and frozen
replicas (whose columns are drawn but discarded) never shift their
neighbours' variates.  Per shape the draw is:

* node ``k = 1``: ``U ~ (R, B)``; ``node = floor(u * n)``, neighbour
  slot from the fractional part (as in the per-round engine);
* node ``k = 2``: ``U ~ (R, B)``; the node from the integer part of
  ``u * n``, and from the (exact) fractional part one of the
  ``deg * (deg - 1)`` *ordered distinct neighbour pairs* — no key
  matrix at all;
* edge: ``U ~ (R, B)``; ``edge = floor(u * 2m)``;
* node ``k > 2`` (full-key subsets): ``U ~ (R, B, d_max + 1)``; column
  0 selects the node, the remaining columns are the subset keys;
* lazy variants split one extra leading bit off the same uniform:
  ``coin = (u >= 1/2)``, then ``2u mod 1`` is again uniform.

(The rejection-sampled ``k > 1`` path for very high-degree graphs —
see :meth:`~repro.engine.backend.SamplingBackend._subset_slots` — draws
a variable number of variates and is therefore the one shape whose
realized trajectory depends on the block size; its hitting times remain
exact for the trajectory actually run.)

The executors below receive a fully precomputed :class:`BlockPlan` and
only perform the value-dependent work.  In record mode they return the
per-round ``(old, new)`` values of every updated entry, from which the
caller derives the exact per-round moment increments
``(d1, d2) = (pi_u * (new - old), d1 * (new + old))`` — the inputs to
chunked convergence detection (see ``BatchAveragingProcess.run_until_phi``
for the backdating math).  Fused and jit kernels perform bit-identical
IEEE operations, so a fixed seed yields bit-identical trajectories
across the two.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ParameterError
from repro.obs.metrics import METRICS

#: Valid ``kernel=`` names accepted across the engine, API and CLI.
KERNEL_CHOICES = ("auto", "numpy", "fused", "jit")

#: Default rounds per block: large enough to amortise the block plan to
#: ~0.02 us/round, small enough that run_until_phi over-steps at most
#: this many rounds past each replica's crossing (times stay exact).
DEFAULT_BLOCK_ROUNDS = 256

_NUMBA_STATE: dict = {}


def numba_available() -> bool:
    """Whether the optional numba JIT backend can be imported (cached)."""
    if "ok" not in _NUMBA_STATE:
        try:
            import numba  # noqa: F401

            _NUMBA_STATE["ok"] = True
        except ImportError:
            _NUMBA_STATE["ok"] = False
    return _NUMBA_STATE["ok"]


def validate_kernel(name: str) -> str:
    """Check ``name`` against :data:`KERNEL_CHOICES` (shared validator)."""
    if name not in KERNEL_CHOICES:
        raise ParameterError(
            f"unknown kernel {name!r}; expected one of "
            + ", ".join(repr(k) for k in KERNEL_CHOICES)
        )
    return name


_FALLBACK_WARNED = False


def resolve_kernel(name: str) -> str:
    """Resolve a requested kernel name to the effective one.

    ``"auto"`` prefers the jit kernel when numba is importable and falls
    back to the fused NumPy kernel otherwise.  An explicit ``"jit"``
    request degrades the same way — numba is an optional accelerator,
    never a requirement — but *visibly*: a one-time ``RuntimeWarning``
    plus the ``engine.kernel_fallback`` counter, so BENCH and provenance
    records stop silently reporting a backend that never ran.
    """
    global _FALLBACK_WARNED
    validate_kernel(name)
    if name == "numpy":
        return "numpy"
    if name in ("auto", "jit"):
        if numba_available():
            return "jit"
        if name == "jit":
            METRICS.count("engine.kernel_fallback")
            if not _FALLBACK_WARNED:
                _FALLBACK_WARNED = True
                warnings.warn(
                    "kernel='jit' requested but numba is not importable; "
                    "falling back to the fused NumPy kernel "
                    "(this warning is emitted once per process)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return "fused"
    return "fused"


class BlockPlan:
    """Precomputed, value-independent description of one R-round block.

    ``write_idx`` is the ``(R, A)`` flat index of each round's updated
    entry.  The non-lazy fast path packs all gather and write indices
    into one ``(R, (k+1) A)`` matrix ``cat_idx = [neighbour_1 | ... |
    neighbour_k | write]`` whose matching ``coef = [beta/k ... |
    alpha ...]`` turns the unilateral update into a single fused
    gather, one multiply and ``k`` slice adds per round.
    ``gather_idx`` is used instead by the lazy paths (shape ``(R, A)``
    or ``(R, A, k)``).  ``weights`` are the pi weights of the written
    entries (scalar on regular graphs); ``keep`` is the lazy coin
    mask.
    """

    __slots__ = ("write_idx", "cat_idx", "coef", "gather_idx", "weights", "keep", "k")

    def __init__(
        self,
        write_idx: np.ndarray,
        cat_idx: np.ndarray | None = None,
        coef: np.ndarray | None = None,
        gather_idx: np.ndarray | None = None,
        weights: np.ndarray | float = 0.0,
        keep: np.ndarray | None = None,
        k: int = 1,
    ) -> None:
        self.write_idx = write_idx
        self.cat_idx = cat_idx
        self.coef = coef
        self.gather_idx = gather_idx
        self.weights = weights
        self.keep = keep
        self.k = k

    @property
    def rounds(self) -> int:
        return self.write_idx.shape[0]

    @property
    def active(self) -> int:
        return self.write_idx.shape[1]


def run_block_fused(
    flat: np.ndarray, plan: BlockPlan, alpha: float, record: bool
) -> tuple[np.ndarray, np.ndarray] | None:
    """Execute one block with the fused NumPy kernel.

    Mutates ``flat`` (the batch's cached flat value view) in place.  In
    record mode returns ``(old, new)`` as ``(R, A)`` matrices of the
    written entries' values (zero rows where a lazy replica skipped its
    round, so the derived moment deltas vanish there).
    """
    R, A = plan.write_idx.shape
    beta = 1.0 - alpha
    if plan.cat_idx is not None:
        # Fast path: one fused gather of [neighbours... | old], one
        # multiply by [beta/k... | alpha...], k slice adds, one scatter
        # per round.  Bound methods and zipped row views keep the
        # interpreter's share of each round to a handful of bytecodes.
        coef = plan.coef
        gather = flat.__getitem__
        scatter = flat.__setitem__
        add = np.add
        parts = plan.k + 1
        if record:
            # Only the written entries' old values feed the moment
            # deltas, so store just that (R, A) slice of each gather.
            old_cut = slice((parts - 1) * A, parts * A)
            old_blk = np.empty((R, A))
            new_blk = np.empty((R, A))
            if parts == 2:
                for ci, wi, oi, ni in zip(
                    plan.cat_idx, plan.write_idx, old_blk, new_blk
                ):
                    g = gather(ci)
                    oi[:] = g[old_cut]
                    t = g * coef
                    add(t[:A], t[A:], out=ni)
                    scatter(wi, ni)
            else:
                cuts = [slice(j * A, (j + 1) * A) for j in range(parts)]
                for ci, wi, oi, ni in zip(
                    plan.cat_idx, plan.write_idx, old_blk, new_blk
                ):
                    g = gather(ci)
                    oi[:] = g[old_cut]
                    t = g * coef
                    add(t[cuts[0]], t[cuts[1]], out=ni)
                    for cut in cuts[2:]:
                        add(ni, t[cut], out=ni)
                    scatter(wi, ni)
            return old_blk, new_blk
        if parts == 2:
            for ci, wi in zip(plan.cat_idx, plan.write_idx):
                t = gather(ci) * coef
                scatter(wi, t[:A] + t[A:])
            return None
        cuts = [slice(j * A, (j + 1) * A) for j in range(parts)]
        for ci, wi in zip(plan.cat_idx, plan.write_idx):
            t = gather(ci) * coef
            acc = t[cuts[0]] + t[cuts[1]]
            for cut in cuts[2:]:
                add(acc, t[cut], out=acc)
            scatter(wi, acc)
        return None

    # General path: lazy masking and/or k-neighbour means.
    w_rows = list(plan.write_idx)
    keep = plan.keep
    old_blk = new_blk = None
    if record:
        old_blk = np.zeros((R, A))
        new_blk = np.zeros((R, A))
    for i in range(R):
        widx = w_rows[i]
        gidx = plan.gather_idx[i]
        if keep is not None:
            mask = keep[i]
            widx = widx[mask]
            gidx = gidx[mask]
            if widx.size == 0:
                continue
        if plan.k == 1:
            means = flat[gidx]
        else:
            means = flat[gidx].mean(axis=1)
        old = flat[widx]
        new = alpha * old + beta * means
        flat[widx] = new
        if record:
            if keep is not None:
                old_blk[i][mask] = old
                new_blk[i][mask] = new
            else:
                old_blk[i] = old
                new_blk[i] = new
    if record:
        return old_blk, new_blk
    return None


# ----------------------------------------------------------------------
# Numba backend
# ----------------------------------------------------------------------
def _jit_functions():
    """Compile (once) and return the numba block loops, or ``None``."""
    if "fns" in _NUMBA_STATE:
        return _NUMBA_STATE["fns"]
    if not numba_available():
        _NUMBA_STATE["fns"] = None
        return None
    import numba

    # The k=1/edge fast path consumes the packed ``[gather | write]``
    # cat-index matrix directly (no per-block copies); record variants
    # additionally store the written entries' old/new values for the
    # chunked convergence detector.

    @numba.njit(cache=False)
    def block_cat(flat, cat_idx, alpha, old_blk, new_blk):
        R, A = old_blk.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                wi = cat_idx[r, A + j]
                old = flat[wi]
                mean = flat[cat_idx[r, j]]
                new = alpha * old + beta * mean
                flat[wi] = new
                old_blk[r, j] = old
                new_blk[r, j] = new

    @numba.njit(cache=False)
    def block_cat_norecord(flat, cat_idx, alpha):
        R = cat_idx.shape[0]
        A = cat_idx.shape[1] // 2
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                wi = cat_idx[r, A + j]
                flat[wi] = alpha * flat[wi] + beta * flat[cat_idx[r, j]]

    @numba.njit(cache=False)
    def block_lazy(flat, write_idx, gather_idx, keep, alpha, old_blk, new_blk):
        R, A = write_idx.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                if not keep[r, j]:
                    old_blk[r, j] = 0.0
                    new_blk[r, j] = 0.0
                    continue
                wi = write_idx[r, j]
                old = flat[wi]
                mean = flat[gather_idx[r, j]]
                new = alpha * old + beta * mean
                flat[wi] = new
                old_blk[r, j] = old
                new_blk[r, j] = new

    @numba.njit(cache=False)
    def block_lazy_norecord(flat, write_idx, gather_idx, keep, alpha):
        R, A = write_idx.shape
        beta = 1.0 - alpha
        for r in range(R):
            for j in range(A):
                if keep[r, j]:
                    wi = write_idx[r, j]
                    flat[wi] = alpha * flat[wi] + beta * flat[gather_idx[r, j]]

    _NUMBA_STATE["fns"] = {
        "cat": block_cat,
        "cat_norecord": block_cat_norecord,
        "lazy": block_lazy,
        "lazy_norecord": block_lazy_norecord,
    }
    return _NUMBA_STATE["fns"]


def run_block_jit(
    flat: np.ndarray, plan: BlockPlan, alpha: float, record: bool
) -> tuple[np.ndarray, np.ndarray] | None:
    """Execute one block with the numba kernel (fused fallback).

    Consumes the same precomputed plan — hence the same pre-drawn
    variates in the same order — as :func:`run_block_fused`, and
    performs the identical IEEE operations per entry, so trajectories
    are bit-identical across the two kernels at a fixed seed.  Shapes
    without a compiled loop (``k > 1``) and missing-numba environments
    fall back to the fused kernel per call.
    """
    fns = _jit_functions()
    if fns is None or plan.k != 1:
        return run_block_fused(flat, plan, alpha, record)
    if plan.cat_idx is not None:
        if not record:
            fns["cat_norecord"](flat, plan.cat_idx, alpha)
            return None
        R, A = plan.write_idx.shape
        old_blk = np.empty((R, A))
        new_blk = np.empty((R, A))
        fns["cat"](flat, plan.cat_idx, alpha, old_blk, new_blk)
        return old_blk, new_blk
    # Lazy path: _pack_plan allocates these arrays C-contiguous.
    if not record:
        fns["lazy_norecord"](
            flat, plan.write_idx, plan.gather_idx, plan.keep, alpha
        )
        return None
    R, A = plan.write_idx.shape
    old_blk = np.empty((R, A))
    new_blk = np.empty((R, A))
    fns["lazy"](
        flat, plan.write_idx, plan.gather_idx, plan.keep, alpha, old_blk, new_blk
    )
    return old_blk, new_blk


#: Effective kernel name -> block executor.
BLOCK_EXECUTORS = {"fused": run_block_fused, "jit": run_block_jit}
