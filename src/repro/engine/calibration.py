"""Measured kernel calibration: the ``kernel="auto"`` regime picker.

The block kernels trade off differently per regime: the fused NumPy
kernel wins small batches (dispatch-bound), the serial jit loop wins
mid sizes, and the ``prange`` jit-par loop wins the memory/gather-bound
large-``n`` cells — exactly the sweep BENCH_engine.json records.  This
module persists that measurement as a small *calibration table* keyed
on ``(model kind, k, n, B)`` so ``kernel="auto"`` picks the measured
winner instead of a hardcoded preference, falling back to the old
jit-if-numba heuristic when no table exists.

Table location: ``$REPRO_CALIBRATION`` when set, else
``~/.cache/repro/kernel_calibration.json``.  Refresh it with ``repro
bench calibrate`` (``--smoke`` for a seconds-scale CI-sized grid); the
BENCH harness embeds the same table derived from its full sweep.

File format (schema 1)::

    {
      "schema": 1,
      "source": "repro bench calibrate",
      "machine": {"cpu_count": 8, "numba": true, "cupy": false},
      "cells": [
        {"kind": "node", "k": 1, "n": 4096, "replicas": 1024,
         "rates": {"fused": 11.2e6, "jit": 30.1e6, "jit-par": 54.0e6}}
      ]
    }

``rates`` are replica-steps per second (``null`` = not measured, e.g.
jit columns on a runner without numba).  Lookup picks the cell nearest
in log-space ``(n, B)`` within the same ``(kind, k)`` and returns that
cell's fastest kernel among the *stream-exact, currently-available*
candidates — the picker can therefore never select an unavailable
backend, never pick a slower-than-``fused`` backend in its own cell,
and never change a cache key's RNG stream class
(:data:`~repro.engine.kernels.STREAM_EXACT_KERNELS` only).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError

#: Environment variable overriding the table location.
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: On-disk format version.
CALIBRATION_SCHEMA = 1

#: Kernels a calibration run measures (the auto-pickable set; the
#: ``cupy`` backend is statistical-parity and never auto-picked, so it
#: is benchmarked by BENCH's backend-comparison section instead).
CALIBRATED_KERNELS = ("fused", "jit", "jit-par")

#: Module-level cache: {"table": CalibrationTable | None, "path": str}.
_CACHE: dict = {}


def calibration_path() -> Path:
    """Where the persisted table lives for this process."""
    override = os.environ.get(CALIBRATION_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "kernel_calibration.json"


@dataclass(frozen=True)
class CalibrationCell:
    """One measured sweep cell: a workload key plus per-kernel rates."""

    kind: str
    k: int
    n: int
    replicas: int
    rates: Dict[str, Optional[float]] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "k": self.k,
            "n": self.n,
            "replicas": self.replicas,
            "rates": dict(self.rates),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CalibrationCell":
        return cls(
            kind=str(payload["kind"]),
            k=int(payload["k"]),
            n=int(payload["n"]),
            replicas=int(payload["replicas"]),
            rates={
                str(name): (None if rate is None else float(rate))
                for name, rate in dict(payload.get("rates", {})).items()
            },
        )


@dataclass
class CalibrationTable:
    """A set of measured cells plus the machine they were measured on."""

    cells: List[CalibrationCell]
    machine: Dict[str, object] = field(default_factory=dict)
    source: str = ""
    schema: int = CALIBRATION_SCHEMA

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def nearest_cell(
        self, kind: str, k: int, n: int, replicas: int
    ) -> Optional[CalibrationCell]:
        """The measured cell closest to the workload, or ``None``.

        Same ``kind`` required; distance is log-space over ``(n, B)``
        with a fixed penalty for a ``k`` mismatch (so an exact-``k``
        cell always beats a different-``k`` one at equal shape).
        """
        best, best_dist = None, math.inf
        for cell in self.cells:
            if cell.kind != kind:
                continue
            dist = (
                abs(math.log(max(n, 1) / max(cell.n, 1)))
                + abs(math.log(max(replicas, 1) / max(cell.replicas, 1)))
                + (0.0 if cell.k == k else 10.0)
            )
            if dist < best_dist:
                best, best_dist = cell, dist
        return best

    def pick(
        self,
        kind: str,
        k: int,
        n: int,
        replicas: int,
        available: Sequence[str],
    ) -> Optional[str]:
        """Fastest measured kernel among ``available``, or ``None``.

        ``available`` must already be restricted to the stream-exact
        set (:func:`repro.engine.kernels.autopick_kernel` does this);
        kernels without a measured rate in the nearest cell are
        skipped, and ``None`` (→ heuristic fallback) is returned when
        nothing usable was measured.
        """
        cell = self.nearest_cell(kind, k, n, replicas)
        if cell is None:
            return None
        best_name, best_rate = None, -math.inf
        for name in available:
            rate = cell.rates.get(name)
            if rate is not None and rate > best_rate:
                best_name, best_rate = name, rate
        return best_name

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "schema": self.schema,
            "source": self.source,
            "machine": dict(self.machine),
            "cells": [cell.to_payload() for cell in self.cells],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CalibrationTable":
        if not isinstance(payload, dict):
            raise ParameterError(
                f"calibration payload must be a mapping, got {payload!r}"
            )
        schema = int(payload.get("schema", -1))
        if schema != CALIBRATION_SCHEMA:
            raise ParameterError(
                f"unsupported calibration schema {schema} "
                f"(this version reads schema {CALIBRATION_SCHEMA})"
            )
        return cls(
            cells=[
                CalibrationCell.from_payload(entry)
                for entry in payload.get("cells", [])
            ],
            machine=dict(payload.get("machine", {})),
            source=str(payload.get("source", "")),
            schema=schema,
        )

    def save(self, path: Optional[Path] = None) -> Path:
        path = Path(path) if path is not None else calibration_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_payload(), indent=2, sort_keys=True))
        os.replace(tmp, path)
        clear_calibration_cache()
        return path


# ----------------------------------------------------------------------
# Process-wide load cache (what ``kernel="auto"`` consults per batch)
# ----------------------------------------------------------------------
def load_calibration(
    path: Optional[Path] = None,
) -> Optional[CalibrationTable]:
    """The persisted table, or ``None`` when absent/unreadable (cached).

    A missing or malformed file is *not* an error — ``kernel="auto"``
    simply falls back to the heuristic — but the result is cached so
    batch construction never pays repeated filesystem probes.
    """
    target = Path(path) if path is not None else calibration_path()
    key = str(target)
    if _CACHE.get("path") == key and "table" in _CACHE:
        return _CACHE["table"]
    table: Optional[CalibrationTable] = None
    try:
        table = CalibrationTable.from_payload(
            json.loads(target.read_text())
        )
    except (OSError, ValueError, ParameterError, KeyError, TypeError):
        table = None
    _CACHE["path"] = key
    _CACHE["table"] = table
    return table


def set_calibration(table: Optional[CalibrationTable]) -> None:
    """Install a table for this process without touching disk (tests)."""
    _CACHE["path"] = str(calibration_path())
    _CACHE["table"] = table


def clear_calibration_cache() -> None:
    """Forget the cached table so the next load re-reads the file."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# Measurement (``repro bench calibrate``)
# ----------------------------------------------------------------------
#: (kind, k) x (n, replicas) grid of the full calibration sweep.
_FULL_GRID: Tuple[Tuple[str, int], ...] = (("node", 1), ("node", 2), ("edge", 1))
_FULL_SHAPES = ((256, 1024), (4096, 1024), (32768, 256))
_SMOKE_GRID: Tuple[Tuple[str, int], ...] = (("node", 1), ("edge", 1))
_SMOKE_SHAPES = ((64, 64),)


def _measure_rate(kind: str, k: int, n: int, replicas: int, kernel: str,
                  rounds: int, repeats: int) -> float:
    """Best observed replica-steps/s of one (workload, kernel) cell."""
    import numpy as np

    from repro.engine.batch import BatchEdgeModel, BatchNodeModel
    from repro.graphs.generators import cycle_graph

    graph = cycle_graph(n)
    initial = np.linspace(-1.0, 1.0, n)
    best = 0.0
    for repeat in range(repeats):
        if kind == "node":
            batch = BatchNodeModel(
                graph, initial, alpha=0.5, k=k, replicas=replicas,
                seed=1234 + repeat, kernel=kernel,
            )
        else:
            batch = BatchEdgeModel(
                graph, initial, alpha=0.5, replicas=replicas,
                seed=1234 + repeat, kernel=kernel,
            )
        batch.run(8)  # warm up (jit compilation, device upload)
        t0 = time.perf_counter()
        batch.run(rounds)
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, rounds * replicas / elapsed)
    return best


def calibrate(
    smoke: bool = False,
    out: Optional[Path] = None,
    rounds: Optional[int] = None,
    repeats: int = 2,
) -> Tuple[CalibrationTable, Path]:
    """Measure the kernel grid and persist the table; returns (table, path).

    ``smoke=True`` shrinks the grid to one tiny shape per model kind
    (seconds, not minutes — the CI ``bench-calibrate-smoke`` job).
    Kernels that cannot run in this process (jit/jit-par without numba)
    are recorded as ``null`` so the picker skips them.
    """
    from repro.engine.kernels import cupy_available, numba_available

    grid = _SMOKE_GRID if smoke else _FULL_GRID
    shapes = _SMOKE_SHAPES if smoke else _FULL_SHAPES
    if rounds is None:
        rounds = 64 if smoke else 512
    measurable = tuple(
        name
        for name in CALIBRATED_KERNELS
        if name == "fused" or numba_available()
    )
    cells: List[CalibrationCell] = []
    for kind, k in grid:
        for n, replicas in shapes:
            rates: Dict[str, Optional[float]] = {
                name: None for name in CALIBRATED_KERNELS
            }
            for name in measurable:
                rates[name] = _measure_rate(
                    kind, k, n, replicas, name, rounds, repeats
                )
            cells.append(
                CalibrationCell(
                    kind=kind, k=k, n=n, replicas=replicas, rates=rates
                )
            )
    table = CalibrationTable(
        cells=cells,
        machine={
            "cpu_count": os.cpu_count(),
            "numba": numba_available(),
            "cupy": cupy_available(),
        },
        source="repro bench calibrate" + (" --smoke" if smoke else ""),
    )
    path = table.save(out)
    return table, path
