"""Advisory cross-process file locks for shared on-disk state.

Both the :class:`~repro.api.store.ArtifactStore` manifest and the job
queue's submit path are read-modify-write cycles over files that
multiple processes touch concurrently (workers, the orchestrator, and
any number of submitting clients).  :class:`FileLock` serialises those
cycles with the oldest portable primitive there is: an ``O_CREAT |
O_EXCL`` lock file.  Creation is atomic on every POSIX filesystem (and
on NTFS), needs no extra dependency, and — unlike ``fcntl`` range locks
— survives being taken by a subprocess that re-opens the path.

A lock left behind by a killed process would deadlock everyone, so a
lock file older than ``stale_after`` seconds is broken: the waiter
unlinks it and retries.  Holders therefore must keep critical sections
far shorter than ``stale_after`` (every caller in this package holds a
lock for a few milliseconds — one JSON read plus one atomic write).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.exceptions import ReproError


class LockTimeout(ReproError):
    """A :class:`FileLock` could not be acquired within its timeout."""


class FileLock:
    """Context-managed advisory lock backed by an ``O_EXCL`` file.

    Parameters
    ----------
    path:
        Location of the lock file (created on acquire, removed on
        release).  Parent directories are created as needed.
    timeout:
        Seconds to keep retrying before raising :class:`LockTimeout`.
    poll:
        Sleep between acquisition attempts.
    stale_after:
        Age (by mtime) past which an existing lock file is presumed
        abandoned by a dead process and broken.
    """

    def __init__(
        self,
        path: str | Path,
        timeout: float = 10.0,
        poll: float = 0.005,
        stale_after: float = 30.0,
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self._fd: int | None = None

    def acquire(self) -> "FileLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout:.1f}s"
                    )
                time.sleep(self.poll)
                continue
            os.write(fd, f"{os.getpid()} {time.time()}\n".encode())
            self._fd = fd
            return self

    def release(self) -> None:
        if self._fd is None:
            return
        os.close(self._fd)
        self._fd = None
        try:
            self.path.unlink()
        except FileNotFoundError:
            # Broken as stale by a waiter; nothing left to remove.
            pass

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - self.path.stat().st_mtime
        except FileNotFoundError:
            return
        if age > self.stale_after:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (unique temp + rename).

    The temp file lives in the target's directory so ``os.replace`` is
    a same-filesystem rename: readers see either the old content or the
    new, never a torn write — the invariant every concurrent consumer
    of manifests, job records and heartbeats relies on.
    """
    target = Path(path)
    tmp = target.with_name(
        f".{target.name}.{os.getpid()}.{time.monotonic_ns()}.tmp"
    )
    tmp.write_text(text)
    os.replace(tmp, target)
