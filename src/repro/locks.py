"""Advisory cross-process file locks for shared on-disk state.

Both the :class:`~repro.api.store.ArtifactStore` manifest and the job
queue's submit path are read-modify-write cycles over files that
multiple processes touch concurrently (workers, the orchestrator, and
any number of submitting clients).  :class:`FileLock` serialises those
cycles with the oldest portable primitive there is: an ``O_CREAT |
O_EXCL`` lock file.  Creation is atomic on every POSIX filesystem (and
on NTFS), needs no extra dependency, and — unlike ``fcntl`` range locks
— survives being taken by a subprocess that re-opens the path.

A lock left behind by a killed process would deadlock everyone, so a
lock file older than ``stale_after`` seconds is broken.  The break is
itself atomic: the waiter *renames* the stale lock aside to a unique
name before unlinking it, so when several waiters race to break the
same lock, ``os.rename`` guarantees exactly one of them wins — the
losers see ``FileNotFoundError`` and go back to polling.  (A bare
``stat``-then-``unlink`` break has an ABA race: waiter A stats a stale
lock, waiter B breaks it *and re-acquires*, then A unlinks B's fresh
lock and a third process acquires alongside B.)  Holders therefore
must keep critical sections far shorter than ``stale_after`` (every
caller in this package holds a lock for a few milliseconds — one JSON
read plus one atomic write).

Every IO step here runs through the :mod:`repro.faults` seams so the
chaos suite can tear writes, crash around renames, and die holding
locks; with no fault plan installed each seam is a single ``None``
check.
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path

from repro.exceptions import ReproError
from repro.faults import injector as _faults
from repro.obs.metrics import METRICS


class LockTimeout(ReproError):
    """A :class:`FileLock` could not be acquired within its timeout."""


class FileLock:
    """Context-managed advisory lock backed by an ``O_EXCL`` file.

    Parameters
    ----------
    path:
        Location of the lock file (created on acquire, removed on
        release).  Parent directories are created as needed.
    timeout:
        Seconds to keep retrying before raising :class:`LockTimeout`.
    poll:
        Sleep between acquisition attempts.
    stale_after:
        Age (by mtime) past which an existing lock file is presumed
        abandoned by a dead process and broken.
    site:
        Fault-injection site name recorded on acquisition
        (:mod:`repro.faults`).
    """

    def __init__(
        self,
        path: str | Path,
        timeout: float = 10.0,
        poll: float = 0.005,
        stale_after: float = 30.0,
        site: str = "lock",
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self.site = site
        self._fd: int | None = None

    def acquire(self) -> "FileLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout:.1f}s"
                    )
                time.sleep(self.poll)
                continue
            os.write(
                fd,
                f"{os.getpid()} {time.time()} {socket.gethostname()}\n".encode(),
            )
            self._fd = fd
            _faults.on_lock(self.site, self.path)
            return self

    def release(self) -> None:
        if self._fd is None:
            return
        if _faults.crashed():
            # A dead process releases nothing; leave the lock file for
            # stale-breaking, exactly as a real crash would.
            return
        os.close(self._fd)
        self._fd = None
        try:
            self.path.unlink()
        except FileNotFoundError:
            # Broken as stale by a waiter; nothing left to remove.
            pass

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - self.path.stat().st_mtime
        except FileNotFoundError:
            return
        if age <= self.stale_after:
            return
        # Atomically claim the break: rename the suspect lock aside.
        # os.rename of the same source succeeds for exactly one racer.
        aside = self.path.with_name(
            f"{self.path.name}.stale.{os.getpid()}.{time.monotonic_ns()}"
        )
        try:
            os.rename(self.path, aside)
        except FileNotFoundError:
            return  # another waiter won the break (or the holder released)
        # Re-check on the renamed file: between our stat and our rename
        # the lock may have been broken and re-acquired by someone else,
        # making what we grabbed a *fresh* lock.  If so, put it back —
        # os.link fails if the path reappeared, in which case the fresh
        # holder we displaced has been superseded anyway and our copy
        # is redundant.
        try:
            fresh = time.time() - aside.stat().st_mtime <= self.stale_after
        except FileNotFoundError:  # pragma: no cover - nothing renamed
            return
        if fresh:
            try:
                os.link(aside, self.path)
            except FileExistsError:
                pass
        else:
            METRICS.count("locks.stale_broken")
        aside.unlink(missing_ok=True)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def atomic_write_text(
    path: str | Path, text: str, site: str = "write"
) -> None:
    """Write ``text`` to ``path`` atomically (unique temp + rename).

    The temp file lives in the target's directory so ``os.replace`` is
    a same-filesystem rename: readers see either the old content or the
    new, never a torn write — the invariant every concurrent consumer
    of manifests, job records and heartbeats relies on.  ``site`` names
    the fault-injection seam for this write (:mod:`repro.faults`).
    """
    target = Path(path)
    tmp = target.with_name(
        f".{target.name}.{os.getpid()}.{time.monotonic_ns()}.tmp"
    )
    data = _faults.on_write(site, target, text)
    tmp.write_text(data)
    _faults.on_replace(site, target)
    os.replace(tmp, target)
    _faults.on_published(site, target)


def read_text(path: str | Path, site: str = "read") -> str:
    """Read ``path`` through the fault-injection read seam.

    Persistent layers use this instead of ``Path.read_text`` so the
    chaos suite can hand back corrupted payloads and verify the caller
    detects them instead of trusting the bytes.
    """
    target = Path(path)
    return _faults.on_read(site, target, target.read_text())
