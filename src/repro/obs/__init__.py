"""`repro.obs` — zero-dependency observability for the whole stack.

Spans (:mod:`~repro.obs.trace`), counters/gauges/peaks
(:mod:`~repro.obs.metrics`), chunk-boundary metric streams
(:mod:`~repro.obs.stream`), and export/summary helpers
(:mod:`~repro.obs.export`).  The engine reports to the process-wide
:func:`active_tracer` and :data:`METRICS`; runs opt in via
``RunSpec.trace`` and receive a ``telemetry`` block on their result.
"""

from repro.obs.export import (
    TELEMETRY_SCHEMA,
    build_telemetry,
    chrome_trace,
    render_summary,
    summarize,
)
from repro.obs.metrics import METRICS, MetricRegistry
from repro.obs.stream import Series, StreamSet
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    active_tracer,
    set_active,
    traced,
)

__all__ = [
    "TELEMETRY_SCHEMA",
    "build_telemetry",
    "chrome_trace",
    "render_summary",
    "summarize",
    "METRICS",
    "MetricRegistry",
    "Series",
    "StreamSet",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "set_active",
    "traced",
]
