"""Process-wide counters, gauges, and peak-hold high-water gauges.

The single :data:`METRICS` registry is always on: increments are one
dict operation, cheap enough for per-block (never per-round) call sites,
and the cache layer's hits/misses accumulate for the whole process —
which is exactly what ``repro cache stats`` reports.  Run-scoped
telemetry takes a :meth:`~MetricRegistry.snapshot` before executing and
a :meth:`~MetricRegistry.delta` after, so concurrent bookkeeping from
other runs in the same process never leaks into a run's counters.

Conventions
-----------
* **Counters** accumulate monotonically: ``engine.replica_steps``,
  ``engine.rng_blocks``, ``engine.blocks.<kernel>`` (dispatches by
  kernel name), ``engine.kernel_fallback``, ``engine.snapshot_switches``,
  ``cache.hits`` / ``cache.misses`` / ``cache.bytes_read`` /
  ``cache.bytes_written``, ``sweep.cells``, ``api.memo_hits``
  (``execute_many`` duplicates served without an engine run), and the
  job service's ``jobs.submitted`` / ``jobs.deduped`` /
  ``jobs.retried`` / ``jobs.failed`` / ``jobs.completed`` /
  ``jobs.quarantined`` / ``jobs.lost_ownership`` /
  ``jobs.deadline_kills`` (watchdog-abandoned executions) — counted in
  whichever process performed the transition; cross-process totals come
  from :meth:`repro.jobs.queue.JobQueue.stats`.  Reliability counters
  (DESIGN.md section 11) make degradation visible instead of silent:
  ``faults.injected`` (fired fault-plan rules),
  ``store.quarantined`` / ``store.manifest_rebuilt`` (artefact-store
  corruption handling), ``cache.quarantined`` / ``cache.enospc_skips``
  (engine-cache corruption and disk-full no-ops),
  ``locks.stale_broken`` (atomically broken abandoned locks),
  ``queue.recovered_orphans`` and the other ``queue.recovered_*``
  counters (:meth:`repro.jobs.queue.JobQueue.recover` repairs), and
  ``fsck.findings`` / ``fsck.repairs`` (``repro fsck``).
* **Gauges** hold the latest value: ``engine.shard_seconds`` (the most
  recent shard's wall time; per-shard detail lives in spans).
* **Peaks** hold the high-water mark: ``engine.state_peak_bytes`` — the
  estimated peak footprint of live ``(B, n)`` / ``(B, n, r)`` state,
  the adaptive-governor input named in the ROADMAP.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping


class MetricRegistry:
    """Thread-safe named counters, gauges and peak-hold gauges."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._peaks: Dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def peak(self, name: str, value: float) -> None:
        """Raise the peak-hold gauge ``name`` to ``value`` if higher."""
        with self._lock:
            if value > self._peaks.get(name, float("-inf")):
                self._peaks[name] = value

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def value(self, name: str) -> float:
        """Current counter value (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Frozen copy of every metric, suitable for :meth:`delta`."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "peaks": dict(self._peaks),
            }

    def delta(self, baseline: Mapping[str, Mapping[str, float]]) -> dict:
        """Metrics attributable to work since ``baseline``.

        Counters subtract the baseline (zero-delta entries dropped);
        gauges and peaks report their current values — a peak is a
        high-water mark, not a flow, so differencing it is meaningless.
        """
        current = self.snapshot()
        base = baseline.get("counters", {})
        counters = {
            name: value - base.get(name, 0)
            for name, value in current["counters"].items()
            if value != base.get(name, 0)
        }
        return {
            "counters": counters,
            "gauges": current["gauges"],
            "peaks": current["peaks"],
        }

    def reset(self) -> None:
        """Zero everything (test isolation; production never resets)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._peaks.clear()


#: The process-wide registry every instrumented module reports to.
METRICS = MetricRegistry()
