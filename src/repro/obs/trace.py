"""Hierarchical span tracing with a near-free off state.

A :class:`Span` is one timed region of work (name, monotonic start,
duration, attributes, children); a :class:`Tracer` collects a forest of
them.  Engine code never takes a tracer parameter: it asks for the
process-wide *active* tracer (:func:`active_tracer`) and opens spans on
it, so the whole stack — driver, kernels, cache, dual engine — lights up
the moment :func:`activate` installs an enabled tracer and costs almost
nothing otherwise.

Off-state contract
------------------
The default active tracer is the shared :attr:`Tracer.disabled`
singleton.  Its :meth:`Tracer.span` returns one reusable no-op context
manager after a single ``self.enabled`` attribute check, and hot loops
may hoist even that check (``if tracer.enabled: ...``).  Instrumentation
must therefore never touch RNG state or values: golden trajectory
hashes are bit-identical with tracing on and off (asserted in
``tests/test_golden.py``), and the disabled overhead on the fused hot
loop stays under 2% (asserted in ``tests/test_obs.py``).

Clocks are ``time.perf_counter`` (monotonic); span starts are stored
relative to the tracer's creation so traces from different processes
can be merged by shifting their roots (see
:meth:`Span.shifted`, used by the multiprocessing driver).

Thread safety: each thread keeps its own open-span stack; finished root
spans append to the shared forest under a lock.  A ``max_spans`` budget
bounds memory on pathological workloads — further spans still time
their region but are dropped from the forest, counted in
:attr:`Tracer.dropped`.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.obs.stream import StreamSet


class Span:
    """One timed region: name, relative start, duration, attrs, children."""

    __slots__ = ("name", "start", "duration", "attrs", "children")

    def __init__(
        self,
        name: str,
        start: float,
        duration: float = 0.0,
        attrs: Optional[Dict[str, Any]] = None,
        children: Optional[List["Span"]] = None,
    ) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs or {}
        self.children = children if children is not None else []

    @property
    def self_time(self) -> float:
        """Duration minus the time spent in direct children."""
        return max(self.duration - sum(c.duration for c in self.children), 0.0)

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Yield ``(span, depth)`` over the subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def depth(self) -> int:
        """Nesting levels of the subtree (a leaf has depth 1)."""
        return 1 + max((c.depth() for c in self.children), default=0)

    def shifted(self, offset: float) -> "Span":
        """A copy with every start time shifted by ``offset`` seconds.

        Used when merging a worker process's trace (whose clock starts
        at its own tracer creation) under the parent's shard span.
        """
        return Span(
            self.name,
            self.start + offset,
            self.duration,
            dict(self.attrs),
            [c.shifted(offset) for c in self.children],
        )

    def to_payload(self) -> dict:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_payload() for c in self.children]
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=str(payload["name"]),
            start=float(payload["start_s"]),
            duration=float(payload["duration_s"]),
            attrs=dict(payload.get("attrs", {})),
            children=[cls.from_payload(c) for c in payload.get("children", [])],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, dur={self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """The shared do-nothing span handle of a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add(self, **attrs: Any) -> None:
        """Attribute updates vanish on the no-op handle."""


_NOOP = _NoopSpan()


class _SpanHandle:
    """Context manager that opens one span on ``tracer`` and times it."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def add(self, **attrs: Any) -> None:
        """Attach attributes to the open span (e.g. late-known counts)."""
        self.span.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self.span)
        return self

    def __exit__(self, *exc: object) -> bool:
        self.span.duration = self._tracer.clock() - self.span.start
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects a forest of spans plus optional per-round metric streams.

    ``Tracer.disabled`` is the canonical off state: a process-wide
    singleton whose :meth:`span` is a single attribute check returning a
    shared no-op handle.
    """

    #: Shared disabled singleton (assigned right after the class body).
    disabled: "Tracer"

    def __init__(self, enabled: bool = True, max_spans: int = 50_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self.roots: List[Span] = []
        self.streams = StreamSet()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._count = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return time.perf_counter() - self._t0

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a child span of the current one (context manager).

        On a disabled tracer this is one attribute check and returns the
        shared no-op handle — the off-state fast path.
        """
        if not self.enabled:
            return _NOOP
        return _SpanHandle(self, Span(name, self.clock(), attrs=attrs or None))

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Exiting out of order (a caller held the handle across yields)
        # still closes the right span: pop through it.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            parent = stack[-1]
            if self._admit():
                parent.children.append(span)
        else:
            with self._lock:
                if self._admit_locked():
                    self.roots.append(span)

    def _admit(self) -> bool:
        with self._lock:
            return self._admit_locked()

    def _admit_locked(self) -> bool:
        if self._count >= self.max_spans:
            self.dropped += 1
            return False
        self._count += 1
        return True

    def attach(self, parent: Span, spans: List[Span], offset: float) -> None:
        """Merge foreign (worker-process) roots under ``parent``.

        ``offset`` shifts the foreign clock onto this tracer's: the
        driver passes the shard span's own start, so worker spans line
        up with the shard that ran them.
        """
        with self._lock:
            for span in spans:
                parent.children.append(span.shifted(offset))
                self._count += sum(1 for _ in span.walk())

    # ------------------------------------------------------------------
    # Streams (chunk-boundary metric series; see repro.obs.stream)
    # ------------------------------------------------------------------
    def record(self, series: str, t: float, value: float) -> None:
        """Append one ``(t, value)`` sample when enabled, else no-op."""
        if self.enabled:
            self.streams.series(series).append(t, value)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Deepest nesting across the forest."""
        return max((root.depth() for root in self.roots), default=0)

    def find(self, name: str) -> List[Span]:
        """Every span named ``name``, pre-order across the forest."""
        return [
            span
            for root in self.roots
            for span, _ in root.walk()
            if span.name == name
        ]

    def to_payload(self) -> List[dict]:
        return [root.to_payload() for root in self.roots]


Tracer.disabled = Tracer(enabled=False)

#: The process-wide active tracer consulted by the instrumented stack.
_ACTIVE: Tracer = Tracer.disabled
_ACTIVE_LOCK = threading.Lock()


def active_tracer() -> Tracer:
    """The tracer the instrumented engine code reports to."""
    return _ACTIVE


def set_active(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the active one; returns the previous."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = tracer
    return previous


class activate:
    """Context manager installing a tracer for the duration of a block.

    ::

        tracer = Tracer()
        with activate(tracer), tracer.span("run"):
            ...
    """

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_active(self._tracer)
        return self._tracer

    def __exit__(self, *exc: object) -> bool:
        set_active(self._previous)
        return False


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator opening a span around each call on the *active* tracer.

    The span name defaults to the function's qualified name; with the
    disabled tracer the wrapper adds one attribute check per call.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _ACTIVE
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
