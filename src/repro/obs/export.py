"""Telemetry assembly and export: JSON summary + Chrome trace format.

:func:`build_telemetry` freezes one run's observability into a plain
JSON-serialisable dict — the ``telemetry`` block attached to
:class:`~repro.api.spec.RunResult` and persisted by the
:class:`~repro.api.store.ArtifactStore`:

```
{
  "schema": 1,
  "spans": [...span tree...],      "dropped_spans": 0,
  "counters": {...run-scoped...},  "gauges": {...}, "peaks": {...},
  "streams": {"series": {...}, "histograms": {...}}
}
```

:func:`chrome_trace` converts that block into the Chrome
``chrome://tracing`` / Perfetto event format (``"X"`` complete events,
microsecond timestamps, worker spans on their own ``pid`` track), and
:func:`summarize` aggregates it for the ``repro trace summary``
subcommand: top spans by self time, cache statistics, and the
shard-balance table.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.obs.trace import Span, Tracer

#: Version of the telemetry block layout.
TELEMETRY_SCHEMA = 1


def build_telemetry(
    tracer: Tracer,
    counters: Optional[Mapping[str, Any]] = None,
) -> dict:
    """Freeze ``tracer``'s spans/streams plus run-scoped metrics.

    ``counters`` is the :meth:`~repro.obs.metrics.MetricRegistry.delta`
    dict of the run (falls back to the live registry's snapshot when the
    caller did not scope one).
    """
    if counters is None:
        from repro.obs.metrics import METRICS

        counters = METRICS.snapshot()
    return {
        "schema": TELEMETRY_SCHEMA,
        "spans": tracer.to_payload(),
        "dropped_spans": tracer.dropped,
        "counters": dict(counters.get("counters", {})),
        "gauges": dict(counters.get("gauges", {})),
        "peaks": dict(counters.get("peaks", {})),
        "streams": tracer.streams.to_payload(),
    }


def _spans(telemetry: Mapping[str, Any]) -> List[Span]:
    return [Span.from_payload(p) for p in telemetry.get("spans", [])]


# ----------------------------------------------------------------------
# Chrome trace event format
# ----------------------------------------------------------------------
def chrome_trace(telemetry: Mapping[str, Any]) -> dict:
    """The telemetry block as a Chrome trace-event JSON object.

    Spans become ``"X"`` (complete) events with microsecond ``ts`` /
    ``dur``; a span whose attrs carry a ``pid`` (merged worker spans)
    lands on that process track.  Counters are attached as one metadata
    event so the numbers travel with the trace file.
    """
    events: List[dict] = [
        {
            "name": "counters",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {
                "counters": dict(telemetry.get("counters", {})),
                "peaks": dict(telemetry.get("peaks", {})),
            },
        }
    ]
    for root in _spans(telemetry):
        _emit(root, events, pid=0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _emit(span: Span, events: List[dict], pid: int) -> None:
    pid = int(span.attrs.get("pid", pid))
    event = {
        "name": span.name,
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": span.duration * 1e6,
        "pid": pid,
        "tid": 0,
    }
    args = {k: v for k, v in span.attrs.items() if k != "pid"}
    if args:
        event["args"] = args
    events.append(event)
    for child in span.children:
        _emit(child, events, pid)


# ----------------------------------------------------------------------
# Summary (the `repro trace summary` payload)
# ----------------------------------------------------------------------
def summarize(telemetry: Mapping[str, Any], top: int = 12) -> dict:
    """Aggregate a telemetry block for human consumption.

    Returns ``{"wall_s", "span_count", "depth", "top_spans", "cache",
    "kernel", "shards"}`` where ``top_spans`` aggregates by span name
    (calls, total, self time) sorted by self time, ``cache`` reports the
    hit/miss/byte counters, ``kernel`` the dispatch counters, and
    ``shards`` the balance statistics over ``engine.shard`` spans.
    """
    roots = _spans(telemetry)
    by_name: Dict[str, dict] = {}
    shard_rows: List[dict] = []
    span_count = 0
    for root in roots:
        for span, _ in root.walk():
            span_count += 1
            entry = by_name.setdefault(
                span.name, {"calls": 0, "total_s": 0.0, "self_s": 0.0}
            )
            entry["calls"] += 1
            entry["total_s"] += span.duration
            entry["self_s"] += span.self_time
            if span.name == "engine.shard":
                shard_rows.append(
                    {
                        "shard": span.attrs.get("shard"),
                        "replicas": span.attrs.get("replicas"),
                        "seconds": span.duration,
                        "workers": sum(
                            1
                            for child in span.children
                            if "pid" in child.attrs
                        ),
                    }
                )
    counters = telemetry.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    lookups = hits + misses
    shards: Optional[dict] = None
    if shard_rows:
        seconds = [row["seconds"] for row in shard_rows]
        shards = {
            "count": len(shard_rows),
            "min_s": min(seconds),
            "max_s": max(seconds),
            "mean_s": sum(seconds) / len(seconds),
            "imbalance": max(seconds) / max(min(seconds), 1e-12),
            "rows": shard_rows,
        }
    return {
        "wall_s": sum(root.duration for root in roots),
        "span_count": span_count,
        "dropped_spans": telemetry.get("dropped_spans", 0),
        "depth": max((root.depth() for root in roots), default=0),
        "top_spans": [
            {"name": name, **entry}
            for name, entry in sorted(
                by_name.items(), key=lambda item: -item[1]["self_s"]
            )[:top]
        ],
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
            "bytes_read": counters.get("cache.bytes_read", 0),
            "bytes_written": counters.get("cache.bytes_written", 0),
        },
        "kernel": {
            name.removeprefix("engine.blocks."): value
            for name, value in sorted(counters.items())
            if name.startswith("engine.blocks.")
        },
        "counters": dict(counters),
        "peaks": dict(telemetry.get("peaks", {})),
        "shards": shards,
    }


def render_summary(summary: Mapping[str, Any]) -> str:
    """Plain-text rendering of :func:`summarize` (the CLI transcript)."""
    lines = [
        f"wall time      {summary['wall_s']:.3f}s over "
        f"{summary['span_count']} spans (depth {summary['depth']}"
        + (
            f", {summary['dropped_spans']} dropped)"
            if summary.get("dropped_spans")
            else ")"
        ),
        "",
        f"{'span':<34} {'calls':>6} {'total':>10} {'self':>10}",
    ]
    for row in summary["top_spans"]:
        lines.append(
            f"{row['name']:<34} {row['calls']:>6} "
            f"{row['total_s'] * 1e3:>8.1f}ms {row['self_s'] * 1e3:>8.1f}ms"
        )
    cache = summary["cache"]
    rate = (
        f"{cache['hit_rate'] * 100:.0f}%" if cache["hit_rate"] is not None
        else "n/a"
    )
    lines += [
        "",
        f"cache          {cache['hits']} hits / {cache['misses']} misses "
        f"(rate {rate}), {cache['bytes_read']}B read / "
        f"{cache['bytes_written']}B written",
    ]
    if summary["kernel"]:
        dispatches = ", ".join(
            f"{name}={int(value)}" for name, value in summary["kernel"].items()
        )
        lines.append(f"kernel blocks  {dispatches}")
    for name, value in summary.get("peaks", {}).items():
        lines.append(f"peak           {name} = {value:.0f}")
    shards = summary.get("shards")
    if shards:
        lines += [
            "",
            f"shards         {shards['count']} shards, "
            f"{shards['min_s'] * 1e3:.1f}-{shards['max_s'] * 1e3:.1f}ms "
            f"(mean {shards['mean_s'] * 1e3:.1f}ms, "
            f"imbalance {shards['imbalance']:.2f}x)",
            f"{'shard':>6} {'replicas':>9} {'seconds':>10} {'workers':>8}",
        ]
        for row in shards["rows"]:
            lines.append(
                f"{str(row['shard']):>6} {str(row['replicas']):>9} "
                f"{row['seconds']:>10.4f} {row['workers']:>8}"
            )
    return "\n".join(lines)
