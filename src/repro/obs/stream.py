"""Per-round metric streams recorded at chunk boundaries.

A :class:`Series` is an append-only ``(t, value)`` sequence — the
max-discrepancy trajectory of a consensus run, the count of still-active
replicas, the per-block max phi.  The engine appends samples **only at
chunk boundaries** (harvest checks, block ends, snapshot switches): the
points where it already pauses to look at the state.  Recording
therefore never changes how many rounds a block executes or how the RNG
stream is consumed — instrumentation cannot break ``block_rounds``
invariance or perturb a trajectory.

A :class:`StreamSet` is the named collection a
:class:`~repro.obs.trace.Tracer` owns; histograms (e.g.
rounds-to-convergence) are stored alongside the series as frozen
``(bin_edges, counts)`` pairs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Sequence


class Series:
    """Append-only ``(t, value)`` samples of one named observable."""

    __slots__ = ("name", "ts", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.ts: List[float] = []
        self.values: List[float] = []

    def append(self, t: float, value: float) -> None:
        self.ts.append(float(t))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.ts)

    def to_payload(self) -> dict:
        return {"t": list(self.ts), "value": list(self.values)}


class StreamSet:
    """Named series plus histograms, lazily created on first append."""

    def __init__(self) -> None:
        self._series: Dict[str, Series] = {}
        self._histograms: Dict[str, dict] = {}
        self._lock = threading.Lock()

    def series(self, name: str) -> Series:
        found = self._series.get(name)
        if found is None:
            with self._lock:
                found = self._series.setdefault(name, Series(name))
        return found

    def histogram(
        self,
        name: str,
        values: Sequence[float],
        bins: int = 16,
    ) -> None:
        """Record a frozen histogram of ``values`` under ``name``.

        Repeated recordings accumulate counts when the edges agree and
        re-bin the union otherwise (numpy chooses fresh edges).
        """
        import numpy as np

        data = np.asarray(values, dtype=np.float64)
        if data.size == 0:
            return
        with self._lock:
            existing = self._histograms.get(name)
        if existing is None:
            counts, edges = np.histogram(data, bins=bins)
        else:
            edges = np.asarray(existing["bin_edges"])
            counts, _ = np.histogram(
                np.clip(data, edges[0], edges[-1]), bins=edges
            )
            counts = counts + np.asarray(existing["counts"])
        with self._lock:
            self._histograms[name] = {
                "bin_edges": [float(e) for e in edges],
                "counts": [int(c) for c in counts],
            }

    def __bool__(self) -> bool:
        return bool(self._series or self._histograms)

    def to_payload(self) -> dict:
        return {
            "series": {
                name: series.to_payload()
                for name, series in sorted(self._series.items())
            },
            "histograms": {
                name: dict(h) for name, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "StreamSet":
        streams = cls()
        for name, body in payload.get("series", {}).items():
            series = streams.series(name)
            series.ts = [float(t) for t in body.get("t", [])]
            series.values = [float(v) for v in body.get("value", [])]
        for name, body in payload.get("histograms", {}).items():
            streams._histograms[name] = dict(body)
        return streams
