"""Persistence of experiment results.

Experiments produce :class:`~repro.sim.results.ResultTable` lists; this
module archives them as JSON bundles (one file per experiment run, with
the experiment id, seed, mode and timestamp) and loads them back for
comparison across runs — e.g. to diff a fresh reproduction against the
tables recorded in EXPERIMENTS.md.

This is the low-level flat-file layer.  The declarative run API's
:class:`~repro.api.ArtifactStore` builds on it (same table codec, same
:func:`diff_tables`) and adds a manifest index plus full run provenance;
new code should archive runs through the store.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ReproError
from repro.sim.results import ResultTable


class ResultsIOError(ReproError):
    """A result bundle could not be written or parsed."""


@dataclass
class ResultBundle:
    """One experiment run: metadata plus its tables."""

    experiment_id: str
    seed: int
    fast: bool
    tables: list[ResultTable]
    timestamp: float = field(default_factory=time.time)

    def to_payload(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "fast": self.fast,
            "timestamp": self.timestamp,
            "tables": [table.to_payload() for table in self.tables],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ResultBundle":
        try:
            tables = [
                ResultTable.from_payload(entry) for entry in payload["tables"]
            ]
            return cls(
                experiment_id=payload["experiment_id"],
                seed=payload["seed"],
                fast=payload["fast"],
                tables=tables,
                timestamp=payload.get("timestamp", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise ResultsIOError(f"malformed result payload: {error}") from error


def save_bundle(bundle: ResultBundle, directory: str | Path) -> Path:
    """Write ``bundle`` under ``directory``; returns the file path.

    File name pattern: ``<experiment-id>.<seed>.<fast|slow>.json`` —
    rerunning the same configuration overwrites the previous record,
    keeping one canonical artefact per configuration.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    mode = "fast" if bundle.fast else "slow"
    path = directory / f"{bundle.experiment_id}.{bundle.seed}.{mode}.json"
    path.write_text(json.dumps(bundle.to_payload(), indent=2, default=str))
    return path


def load_bundle(path: str | Path) -> ResultBundle:
    """Load one result bundle from ``path``."""
    path = Path(path)
    if not path.exists():
        raise ResultsIOError(f"no result bundle at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ResultsIOError(f"invalid JSON in {path}: {error}") from error
    return ResultBundle.from_payload(payload)


def load_all(directory: str | Path) -> list[ResultBundle]:
    """Load every bundle in ``directory``, sorted by experiment id."""
    directory = Path(directory)
    if not directory.exists():
        return []
    bundles = [load_bundle(p) for p in sorted(directory.glob("*.json"))]
    return sorted(bundles, key=lambda b: (b.experiment_id, b.seed))


def diff_tables(old: ResultTable, new: ResultTable, rel_tol: float = 0.25) -> list[str]:
    """Human-readable differences between two runs of the same table.

    Numeric cells are compared with relative tolerance ``rel_tol`` (Monte-
    Carlo tables fluctuate run to run); structural differences (columns,
    row counts) are always reported.
    """
    problems: list[str] = []
    if list(old.columns) != list(new.columns):
        problems.append(f"columns changed: {list(old.columns)} -> {list(new.columns)}")
        return problems
    if len(old.rows) != len(new.rows):
        problems.append(f"row count changed: {len(old.rows)} -> {len(new.rows)}")
        return problems
    for i, (row_old, row_new) in enumerate(zip(old.rows, new.rows)):
        for column, a, b in zip(old.columns, row_old, row_new):
            if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                    and not isinstance(a, bool) and not isinstance(b, bool):
                scale = max(abs(a), abs(b), 1e-12)
                if abs(a - b) / scale > rel_tol:
                    problems.append(
                        f"row {i}, column {column!r}: {a!r} -> {b!r}"
                    )
            elif a != b:
                problems.append(f"row {i}, column {column!r}: {a!r} -> {b!r}")
    return problems
