"""Variance of the convergence value (Theorem 2.2(2), Proposition 5.8).

For a ``d``-regular graph, centered initial values (``Avg(0) = 0``) and
the NodeModel with parameters ``alpha, k`` (equivalently the EdgeModel
with ``k = 1``), Proposition 5.8 sandwiches ``Var(F)`` via the Q-chain's
stationary values:

    core(xi) = (mu_0 - mu_+) sum_u xi_u^2
               + (mu_1 - mu_+) sum_{(u,v) in E^+} xi_u xi_v
    core(xi) - 1/n^5  <=  Var(F)  <=  core(xi) + 1/n^5.

Using ``0 <= sum_{E^+} xi_u xi_v + d ||xi||^2 <= 2 d ||xi||^2`` and
``mu_1 - mu_+ <= 0``, the paper derives the graph-independent envelope

    lower_env = [ (mu_0 - mu_+) - d (mu_1 - mu_+) ] ||xi||^2
                + 2 d (mu_1 - mu_+) ||xi||^2
    upper_env = [ (mu_0 - mu_+) - d (mu_1 - mu_+) ] ||xi||^2,

both ``Theta(||xi||^2 / n^2)`` — Theorem 2.2(2).  We compute the ``mu``
differences from the Lemma 5.7 closed form, which our tests validate
against the numerically solved stationary distribution.  (The paper's
final display substitutes ``ell = 1/(n^2 (3dk + d - 3k))``, which matches
the Lemma 5.7 normalisation only up to constants; we keep the exact form
and note the discrepancy in EXPERIMENTS.md.)

Corollary E.2 gives crude but *any-time* envelopes:

    NodeModel:  Var(M(t))   <= t (d_max K / (2m))^2
    EdgeModel:  Var(Avg(t)) <= t K^2 / n^2

with ``K`` the initial discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import networkx as nx
import numpy as np

from repro.dual.qchain import mu_closed_form
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.properties import require_regular

GraphLike = Union[nx.Graph, Adjacency]


def _as_adjacency(graph: GraphLike) -> Adjacency:
    return graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)


@dataclass(frozen=True)
class VarianceBounds:
    """Proposition 5.8 output: the core quadratic form and its envelope.

    ``lower``/``upper`` are the graph-aware bounds (core -/+ ``1/n^5``);
    ``lower_envelope``/``upper_envelope`` the graph-independent
    ``Theta(||xi||^2/n^2)`` forms of the Theorem 2.2(2) proof.
    """

    core: float
    lower: float
    upper: float
    lower_envelope: float
    upper_envelope: float
    mu0: float
    mu1: float
    mu_plus: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies within ``[lower, upper]``."""
        return self.lower <= value <= self.upper


def mu_differences(n: int, d: int, k: int, alpha: float) -> tuple[float, float]:
    """``(mu_0 - mu_+, mu_1 - mu_+)`` from Lemma 5.7.

    Algebraically these equal ``(1-alpha)(kd + d - 2k) ell`` and
    ``(1-alpha)(1-k) ell`` respectively; we compute them from the ``mu``
    values to stay bit-identical with :func:`mu_closed_form`.
    """
    mu0, mu1, mu_plus = mu_closed_form(n, d, k, alpha)
    return mu0 - mu_plus, mu1 - mu_plus


def edge_cross_term(graph: GraphLike, values: np.ndarray) -> float:
    """``sum_{(u,v) in E^+} xi_u xi_v`` over *directed* edges.

    Equal to ``2 sum_{{u,v} in E} xi_u xi_v``; computed via the directed
    edge arrays so irregular graphs are handled uniformly.
    """
    adjacency = _as_adjacency(graph)
    values = np.asarray(values, dtype=np.float64)
    return float(np.sum(values[adjacency.edge_tails] * values[adjacency.edge_heads]))


def variance_bounds(
    graph: GraphLike,
    initial_values: np.ndarray,
    alpha: float,
    k: int = 1,
    center_tolerance: float = 1e-9,
) -> VarianceBounds:
    """Proposition 5.8's bounds on ``Var(F)`` for a regular graph.

    ``initial_values`` must be centered (``Avg(0) = 0`` within
    ``center_tolerance``) — the proposition's standing assumption.
    """
    adjacency = _as_adjacency(graph)
    d = require_regular(adjacency, context="Proposition 5.8")
    values = np.asarray(initial_values, dtype=np.float64)
    if values.shape != (adjacency.n,):
        raise ParameterError(
            f"initial_values must have shape ({adjacency.n},), got {values.shape}"
        )
    scale = max(1.0, float(np.abs(values).max()))
    if abs(values.mean()) > center_tolerance * scale:
        raise ParameterError(
            "Proposition 5.8 assumes centered initial values (Avg(0) = 0); "
            "apply repro.core.initial.center_simple first"
        )
    n = adjacency.n
    diff0, diff1 = mu_differences(n, d, k, alpha)
    norm_sq = float(np.sum(values * values))
    cross = edge_cross_term(adjacency, values)
    core = diff0 * norm_sq + diff1 * cross
    slack = 1.0 / n**5
    upper_env = (diff0 - d * diff1) * norm_sq
    lower_env = upper_env + 2.0 * d * diff1 * norm_sq
    mu0, mu1, mu_plus = mu_closed_form(n, d, k, alpha)
    return VarianceBounds(
        core=core,
        lower=core - slack,
        upper=core + slack,
        lower_envelope=lower_env,
        upper_envelope=upper_env,
        mu0=mu0,
        mu1=mu1,
        mu_plus=mu_plus,
    )


def variance_envelope(
    n: int, d: int, k: int, alpha: float, norm_sq: float
) -> tuple[float, float]:
    """Graph-independent ``(lower, upper)`` envelope of Theorem 2.2(2).

    Depends only on ``(n, d, k, alpha)`` and ``||xi(0)||_2^2`` — this is
    the statement that the clique and the cycle have asymptotically the
    same ``Var(F)``.
    """
    if norm_sq < 0:
        raise ParameterError(f"norm_sq must be non-negative, got {norm_sq}")
    diff0, diff1 = mu_differences(n, d, k, alpha)
    upper = (diff0 - d * diff1) * norm_sq
    lower = upper + 2.0 * d * diff1 * norm_sq
    return lower, upper


def variance_quadratic_form(mu: np.ndarray, values: np.ndarray) -> float:
    """``sum_{u,v} mu(u,v) xi_u xi_v`` for a full stationary vector ``mu``.

    ``mu`` is indexed flat as ``u * n + v`` (the :class:`QChain` state
    order); this is Lemma 5.5's limit expression for
    ``E[W~(a) W~(b)]`` summed over all walk pairs, i.e. the exact
    asymptotic ``Var(Avg(t))`` before the ``1/n^5`` mixing slack.
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if mu.shape != (n * n,):
        raise ParameterError(f"mu must have shape ({n * n},), got {mu.shape}")
    outer = np.outer(values, values).reshape(-1)
    return float(np.sum(mu * outer))


def variance_time_bound_weighted(
    t: int, d_max: int, m: int, discrepancy: float
) -> float:
    """Corollary E.2(ii): ``Var(M(t)) <= t (d_max K / (2m))^2`` (NodeModel)."""
    if t < 0 or m < 1 or d_max < 1:
        raise ParameterError("need t >= 0, m >= 1, d_max >= 1")
    if discrepancy < 0:
        raise ParameterError("discrepancy must be non-negative")
    return t * (d_max * discrepancy / (2.0 * m)) ** 2


def variance_time_bound_avg(t: int, n: int, discrepancy: float) -> float:
    """Corollary E.2(iii): ``Var(Avg(t)) <= t K^2 / n^2`` (EdgeModel)."""
    if t < 0 or n < 1:
        raise ParameterError("need t >= 0, n >= 1")
    if discrepancy < 0:
        raise ParameterError("discrepancy must be non-negative")
    return t * discrepancy**2 / n**2


def paper_display_coefficient(n: int, d: int, k: int, alpha: float) -> float:
    """The paper's displayed upper coefficient
    ``2 k (d-1)(1-alpha) / (n^2 (3dk + d - 3k))`` (proof of Thm 2.2(2)).

    Kept verbatim for comparison; it uses the simplified normalisation
    ``ell = 1/(n^2 (3dk + d - 3k))``, which differs from the Lemma 5.7
    ``ell`` by a bounded factor (they agree asymptotically).  Experiments
    report both.
    """
    if n < 2 or d < 1 or not 1 <= k <= d:
        raise ParameterError(f"invalid (n, d, k) = ({n}, {d}, {k})")
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    return 2.0 * k * (d - 1.0) * (1.0 - alpha) / (n**2 * (3.0 * d * k + d - 3.0 * k))
