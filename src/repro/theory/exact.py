"""Exact finite-time moments of ``Avg(t)`` via Q-chain powers.

Chaining Proposition 5.1 (duality), Proposition 5.4 (walk second moments)
and the Q-chain of Section 5.3 gives, for a *regular* graph and centered
initial values (``Avg(0) = 0``):

    Var(Avg(t)) = (1/n^2) sum_{x,y} E[xi_x(t) xi_y(t)]
                = (1/n^2) sum_{x,y} sum_{u,v} Q^t((x,y),(u,v)) xi_u xi_v
                = sum_{u,v} rho_t(u,v) xi_u xi_v,

where ``rho_t = rho_0 Q^t`` and ``rho_0`` is uniform over all ``n^2``
ordered pairs (each pair of tagged walks starts at its own ``(x, y)``;
diagonal pairs are two distinct walks launched from one node — exactly
the chain's ``S_0`` states).  No Monte Carlo, no ``1/n^5`` slack: this is
the paper's variance *exactly, at every t*, limited only to graphs small
enough to build the ``n^2``-state matrix.

As ``t -> infinity`` the trajectory converges to the Lemma 5.5 / Prop 5.8
quadratic form ``sum mu(u,v) xi_u xi_v``, and the proof of Prop 5.8
remarks that it is non-decreasing — both verified in the tests.
"""

from __future__ import annotations

from typing import Sequence, Union

import networkx as nx
import numpy as np

from repro.dual.qchain import QChain
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency

GraphLike = Union[nx.Graph, Adjacency]


def exact_avg_variance(
    graph: GraphLike,
    initial_values: np.ndarray,
    alpha: float,
    k: int,
    t: int,
    center_tolerance: float = 1e-9,
) -> float:
    """Exact ``Var(Avg(t))`` for the NodeModel on a regular graph."""
    return exact_variance_trajectory(
        graph, initial_values, alpha, k, [t], center_tolerance=center_tolerance
    )[0]


def exact_variance_trajectory(
    graph: GraphLike,
    initial_values: np.ndarray,
    alpha: float,
    k: int,
    times: Sequence[int],
    center_tolerance: float = 1e-9,
) -> np.ndarray:
    """Exact ``Var(Avg(t))`` at each time in ``times`` (must be sorted).

    Work is O(n^4) per unit time step advanced (one vector-matrix product
    on the ``n^2``-state chain), so keep ``n`` and ``max(times)`` modest
    (n <= ~30, t <= ~10^4).
    """
    times = list(times)
    if not times:
        raise ParameterError("times must be non-empty")
    if any(t < 0 for t in times):
        raise ParameterError("times must be non-negative")
    if any(b < a for a, b in zip(times, times[1:])):
        raise ParameterError("times must be sorted ascending")

    chain = QChain(graph, alpha=alpha, k=k)
    n = chain.n
    values = np.asarray(initial_values, dtype=np.float64)
    if values.shape != (n,):
        raise ParameterError(f"initial_values must have shape ({n},)")
    scale = max(1.0, float(np.abs(values).max()))
    if abs(values.mean()) > center_tolerance * scale:
        raise ParameterError(
            "exact variance requires centered initial values (Avg(0) = 0)"
        )

    q = chain.transition_matrix()
    outer = np.outer(values, values).reshape(-1)
    # rho_0: uniform over ordered pairs (x, y).
    rho = np.full(n * n, 1.0 / (n * n))

    results = np.empty(len(times))
    current_t = 0
    for i, target in enumerate(times):
        while current_t < target:
            rho = rho @ q
            current_t += 1
        results[i] = float(np.dot(rho, outer))
    # Clamp tiny negative rounding residue: a variance is non-negative.
    return np.clip(results, 0.0, None)


def exact_limit_variance(
    graph: GraphLike, initial_values: np.ndarray, alpha: float, k: int
) -> float:
    """The ``t -> infinity`` limit: the Lemma 5.5 quadratic form.

    Equals ``Var(F)`` exactly (no ``1/n^5`` slack — that slack in
    Proposition 5.8 only accounts for *finite* mixing horizons).
    """
    chain = QChain(graph, alpha=alpha, k=k)
    values = np.asarray(initial_values, dtype=np.float64)
    if values.shape != (chain.n,):
        raise ParameterError(f"initial_values must have shape ({chain.n},)")
    mu = chain.stationary_closed_form()
    return float(np.dot(mu, np.outer(values, values).reshape(-1)))
