"""Expected one-step dynamics and the martingale structure (Lemma 4.1).

NodeModel (Appendix A / Eq. 42): with ``P`` the *simple* (non-lazy) walk
matrix,

    E[xi(t+1) | xi(t)] = [ I - (1-alpha)/n (I - P) ] xi(t),

and since the expected update matrix is a convex combination of ``I`` and
``P`` — both self-adjoint under ``<.,.>_pi`` with ``P 1 = 1`` — the
degree-weighted mean ``M(t) = <xi(t), 1>_pi`` is a martingale.

EdgeModel (Appendix D): with ``L`` the Laplacian,

    E[xi(t+1) | xi(t)] = [ I - (1-alpha)/(2m) L ] xi(t),

whose column sums are 1, so the *simple* average ``Avg(t)`` is a
martingale even on irregular graphs.

Both matrices are exposed so tests can verify the martingale identities
*exactly* (by enumerating the one-step law) rather than statistically.
"""

from __future__ import annotations

from typing import Union

import networkx as nx
import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.spectral import laplacian_matrix, simple_walk_matrix

GraphLike = Union[nx.Graph, Adjacency]


def node_model_expected_update(graph: GraphLike, alpha: float) -> np.ndarray:
    """``E[L] = I - (1-alpha)/n (I - P_simple)`` for the NodeModel.

    Independent of ``k``: the expected neighbour of a uniform ``k``-sample
    is a uniform neighbour (Lemma E.1(2) applies to each sample slot).
    """
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    p = simple_walk_matrix(graph)
    n = p.shape[0]
    return np.eye(n) - (1.0 - alpha) / n * (np.eye(n) - p)


def edge_model_expected_update(graph: GraphLike, alpha: float) -> np.ndarray:
    """``E[L] = I - (1-alpha)/(2m) L`` for the EdgeModel."""
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    laplacian = laplacian_matrix(graph)
    n = laplacian.shape[0]
    m = laplacian.trace() / 2.0
    return np.eye(n) - (1.0 - alpha) / (2.0 * m) * laplacian


def expected_state(update: np.ndarray, initial: np.ndarray, t: int) -> np.ndarray:
    """``E[xi(t)] = (E[L])^t xi(0)`` by iterated expectation (Eq. 42)."""
    if t < 0:
        raise ParameterError(f"t must be non-negative, got {t}")
    return np.linalg.matrix_power(update, t) @ np.asarray(initial, dtype=np.float64)


def martingale_weights(graph: GraphLike, model: str) -> np.ndarray:
    """The linear functional preserved in expectation by ``model``.

    ``"node"`` -> ``pi`` (degree weights, Lemma 4.1);
    ``"edge"`` -> uniform ``1/n`` (Proposition D.1(i)).
    """
    if isinstance(graph, Adjacency):
        degrees = graph.degrees.astype(np.float64)
    else:
        g = nx.convert_node_labels_to_integers(graph, ordering="sorted")
        degrees = np.array([g.degree(u) for u in range(g.number_of_nodes())], float)
    if model == "node":
        return degrees / degrees.sum()
    if model == "edge":
        return np.full(len(degrees), 1.0 / len(degrees))
    raise ParameterError(f"model must be 'node' or 'edge', got {model!r}")
