"""One-step potential contraction factors.

Proposition B.1 (NodeModel, lazy-walk matrix ``P``):

    E[phi(xi(t+1)) | xi(t)] <=
        (1 - (1-alpha)(1-lambda_2) [2 alpha + (1-alpha)(1+lambda_2)(1 - 1/k)] / n)
        * phi(xi(t)).

Proposition D.1(ii) (EdgeModel, Laplacian ``L``):

    E[phi_V(xi(t+1)) | xi(t)] <= (1 - alpha (1-alpha) lambda_2(L) / m)
        * phi_V(xi(t)).

Both factors are *exact upper bounds* on the expected one-step ratio; the
EXP-PB1 experiment measures the empirical ratio and checks it never
exceeds them (and matches them when ``xi(t) = f_2``).
"""

from __future__ import annotations

from repro.exceptions import ParameterError


def node_model_contraction_factor(
    n: int, lambda2: float, alpha: float, k: int
) -> float:
    """Proposition B.1's per-step factor for the NodeModel.

    ``lambda2`` is the second eigenvalue of the *lazy* walk matrix ``P``
    (in ``[0, 1)`` for connected graphs).
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if not 0.0 <= lambda2 < 1.0:
        raise ParameterError(f"lambda2 must be in [0, 1), got {lambda2}")
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    bracket = 2.0 * alpha + (1.0 - alpha) * (1.0 + lambda2) * (1.0 - 1.0 / k)
    return 1.0 - (1.0 - alpha) * (1.0 - lambda2) * bracket / n


def node_model_contraction_rate(n: int, lambda2: float, alpha: float, k: int) -> float:
    """Per-step decay rate ``1 - factor`` (convenient for ``T ~ log / rate``)."""
    return 1.0 - node_model_contraction_factor(n, lambda2, alpha, k)


def edge_model_contraction_factor(m: int, lambda2_l: float, alpha: float) -> float:
    """Proposition D.1(ii)'s per-step factor for the EdgeModel.

    ``lambda2_l`` is the algebraic connectivity ``lambda_2(L)``.
    """
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    if lambda2_l <= 0:
        raise ParameterError(f"lambda2(L) must be positive, got {lambda2_l}")
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    return 1.0 - alpha * (1.0 - alpha) * lambda2_l / m


def edge_model_contraction_rate(m: int, lambda2_l: float, alpha: float) -> float:
    """Per-step decay rate ``1 - factor`` for the EdgeModel."""
    return 1.0 - edge_model_contraction_factor(m, lambda2_l, alpha)


def mean_state_contraction_factor(n: int, lambda2: float, alpha: float) -> float:
    """Contraction of the *expected state* along ``f_2`` (Eq. 43).

    ``E[xi(t)] = q_2^t f_2`` for ``xi(0) = f_2``, where the expected update
    matrix is ``I - (1-alpha)/n (I - P_simple)`` (Appendix A) and hence

        q_2 = 1 - (1-alpha)(1 - lambda_2(P_simple)) / n
            = 1 - 2 (1-alpha)(1 - lambda_2(P_lazy)) / n.

    ``lambda2`` here is the library-standard *lazy* eigenvalue (Section 4);
    the factor 2 converts via ``lambda_simple = 2 lambda_lazy - 1``.
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if not 0.0 <= lambda2 < 1.0:
        raise ParameterError(f"lambda2 must be in [0, 1), got {lambda2}")
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    return 1.0 - 2.0 * (1.0 - alpha) * (1.0 - lambda2) / n
