"""Convergence-time bounds (Theorems 2.2(1), 2.4(1); Proposition B.2).

Upper bounds (w.h.p., up to constants):

    NodeModel:  T_eps = O( n log(n ||xi(0)||_2^2 / eps) / (1 - lambda_2(P)) )
    EdgeModel:  T_eps = O( m log(n ||xi(0)||_2^2 / eps) / lambda_2(L) )

Lower bounds for the adversarial eigenvector-aligned initial states
(Proposition B.2, ``xi(0) = n f_2``):

    NodeModel:  E[T_eps] = Omega( n log(n ||xi(0)||^2 / eps)
                                   / ((1-alpha)(1 - lambda_2(P))) )
    EdgeModel:  E[T_eps] = Omega( m log(n ||xi(0)||^2 / eps)
                                   / ((1-alpha) lambda_2(L)) )

These return the bound *expressions with constant 1*; experiments report
the ratio measured / bound, which Theorem 2.2 predicts to be Theta(1)
across graph families and sizes.  ``predicted_t_eps_*`` additionally
exposes the sharper estimate ``log(phi(0)/eps) / rate`` using the exact
one-step rates of :mod:`repro.theory.contraction`, which tracks measured
times closely (including the mild ``(1 + 1/k)``-style dependence on
``k``).
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError
from repro.theory.contraction import (
    edge_model_contraction_rate,
    node_model_contraction_rate,
)


def _log_term(n: int, norm_sq: float, epsilon: float) -> float:
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if norm_sq <= 0:
        raise ParameterError(f"||xi(0)||^2 must be positive, got {norm_sq}")
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    return math.log(n * norm_sq / epsilon)


def node_model_upper_bound(
    n: int, lambda2: float, norm_sq: float, epsilon: float
) -> float:
    """Theorem 2.2(1): ``n log(n ||xi||^2 / eps) / (1 - lambda_2(P))``."""
    if not 0.0 <= lambda2 < 1.0:
        raise ParameterError(f"lambda2 must be in [0, 1), got {lambda2}")
    return n * _log_term(n, norm_sq, epsilon) / (1.0 - lambda2)


def node_model_lower_bound(
    n: int, lambda2: float, norm_sq: float, epsilon: float, alpha: float
) -> float:
    """Proposition B.2 (NodeModel): the Omega(...) expression, constant 1."""
    if not 0.0 < alpha < 1.0:
        raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 <= lambda2 < 1.0:
        raise ParameterError(f"lambda2 must be in [0, 1), got {lambda2}")
    return n * _log_term(n, norm_sq, epsilon) / ((1.0 - alpha) * (1.0 - lambda2))


def edge_model_upper_bound(
    n: int, m: int, lambda2_l: float, norm_sq: float, epsilon: float
) -> float:
    """Theorem 2.4(1): ``m log(n ||xi||^2 / eps) / lambda_2(L)``."""
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    if lambda2_l <= 0:
        raise ParameterError(f"lambda2(L) must be positive, got {lambda2_l}")
    return m * _log_term(n, norm_sq, epsilon) / lambda2_l


def edge_model_lower_bound(
    n: int, m: int, lambda2_l: float, norm_sq: float, epsilon: float, alpha: float
) -> float:
    """Proposition B.2 (EdgeModel): the Omega(...) expression, constant 1."""
    if not 0.0 < alpha < 1.0:
        raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    if lambda2_l <= 0:
        raise ParameterError(f"lambda2(L) must be positive, got {lambda2_l}")
    return m * _log_term(n, norm_sq, epsilon) / ((1.0 - alpha) * lambda2_l)


def predicted_t_eps_node(
    n: int, lambda2: float, alpha: float, k: int, phi0: float, epsilon: float
) -> float:
    """Sharp NodeModel estimate ``log(phi(0)/eps) / rate`` (Prop. B.1 rate).

    Unlike the Theorem 2.2 expression this carries the exact dependence on
    ``alpha`` and ``k``, so the EXP-T221K experiment can check the claimed
    near-independence of ``k`` quantitatively.
    """
    if phi0 <= 0 or epsilon <= 0:
        raise ParameterError("phi0 and epsilon must be positive")
    if phi0 <= epsilon:
        return 0.0
    rate = node_model_contraction_rate(n, lambda2, alpha, k)
    if rate <= 0:
        raise ParameterError("contraction rate must be positive")
    return math.log(phi0 / epsilon) / rate


def predicted_t_eps_edge(
    m: int, lambda2_l: float, alpha: float, phi0: float, epsilon: float
) -> float:
    """Sharp EdgeModel estimate ``log(phi_V(0)/eps) / rate`` (Prop. D.1 rate)."""
    if phi0 <= 0 or epsilon <= 0:
        raise ParameterError("phi0 and epsilon must be positive")
    if phi0 <= epsilon:
        return 0.0
    rate = edge_model_contraction_rate(m, lambda2_l, alpha)
    if rate <= 0:
        raise ParameterError("contraction rate must be positive")
    return math.log(phi0 / epsilon) / rate


def voter_model_reference_bound(n: int, lambda2: float) -> float:
    """The ``O(n / (1 - lambda_2(P)))`` voter-model bound of [18] quoted in
    Section 2 — the comparison point showing the averaging process is
    faster by ``Omega(n / log n)`` when ``K`` and ``1/eps`` are polynomial.
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if not 0.0 <= lambda2 < 1.0:
        raise ParameterError(f"lambda2 must be in [0, 1), got {lambda2}")
    return n / (1.0 - lambda2)
