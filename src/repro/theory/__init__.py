"""Closed-form theory oracle.

Implements every quantitative statement of the paper so the experiments
can print *predicted vs measured* rows:

* :mod:`repro.theory.convergence` — the ``T_eps`` bounds of Theorems
  2.2(1) and 2.4(1) and the lower bounds of Proposition B.2,
* :mod:`repro.theory.contraction` — the exact one-step contraction factors
  of Proposition B.1 (NodeModel) and Proposition D.1(ii) (EdgeModel),
* :mod:`repro.theory.variance` — Lemma 5.7 / Proposition 5.8 variance
  bounds and the time-dependent envelopes of Corollary E.2,
* :mod:`repro.theory.martingale` — the expected one-step update matrices
  behind Lemma 4.1 and Proposition D.1(i),
* :mod:`repro.theory.absorbing` — exact mean-first-passage, pairwise
  meeting-time and full-coalescence-time expectations for the Section-5
  dual chains via absorbing-chain fundamental-matrix solves (the
  ``engine="exact"`` backend).
"""

from repro.theory.absorbing import (
    exact_coalescence_feasible,
    exact_coalescence_time,
    expected_meeting_time,
    mean_first_passage_times,
    meeting_time_matrix,
    walk_transition_matrix,
)
from repro.theory.contraction import (
    edge_model_contraction_factor,
    node_model_contraction_factor,
)
from repro.theory.convergence import (
    edge_model_lower_bound,
    edge_model_upper_bound,
    node_model_lower_bound,
    node_model_upper_bound,
)
from repro.theory.exact import (
    exact_avg_variance,
    exact_limit_variance,
    exact_variance_trajectory,
)
from repro.theory.mixing import (
    empirical_mixing_time,
    qchain_mixing_tolerance,
    spectral_mixing_bound,
    total_variation,
)
from repro.theory.martingale import (
    edge_model_expected_update,
    node_model_expected_update,
)
from repro.theory.variance import (
    VarianceBounds,
    variance_bounds,
    variance_envelope,
    variance_time_bound_avg,
    variance_time_bound_weighted,
)

__all__ = [
    "VarianceBounds",
    "edge_model_contraction_factor",
    "edge_model_expected_update",
    "empirical_mixing_time",
    "exact_avg_variance",
    "exact_coalescence_feasible",
    "exact_coalescence_time",
    "exact_limit_variance",
    "exact_variance_trajectory",
    "expected_meeting_time",
    "mean_first_passage_times",
    "meeting_time_matrix",
    "walk_transition_matrix",
    "edge_model_lower_bound",
    "edge_model_upper_bound",
    "node_model_contraction_factor",
    "node_model_expected_update",
    "qchain_mixing_tolerance",
    "spectral_mixing_bound",
    "total_variation",
    "node_model_lower_bound",
    "node_model_upper_bound",
    "variance_bounds",
    "variance_envelope",
    "variance_time_bound_avg",
    "variance_time_bound_weighted",
]
