"""Mixing-time utilities for the chains appearing in the analysis.

Lemma 5.5 takes ``T`` to be a mixing time of the Q-chain (total-variation
distance below ``1/(K^2 n^7)``); the convergence-time comparisons in
Sections 2-3 are phrased through the spectral gap.  This module provides

* :func:`total_variation` — TV distance between distributions,
* :func:`spectral_mixing_bound` — the classical
  ``t_mix(eps) <= log(1/(eps pi_min)) / (1 - lambda_star)`` bound for
  reversible chains,
* :func:`empirical_mixing_time` — smallest ``t`` with
  ``max_s TV(Q^t(s, .), mu) <= eps`` by direct matrix powering (works for
  non-reversible chains like the Q-chain with ``k > 1``),
* :func:`qchain_mixing_time` — the Lemma 5.5 tolerance specialised to the
  two-walk chain.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ParameterError


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """``TV(p, q) = (1/2) sum_i |p_i - q_i|``."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ParameterError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def spectral_mixing_bound(lambda_star: float, pi_min: float, epsilon: float) -> float:
    """Reversible-chain bound ``t_mix(eps) <= log(1/(eps pi_min)) /
    (1 - lambda_star)`` (Levin-Peres [39], Thm 12.4).

    ``lambda_star`` is the largest non-principal eigenvalue modulus.
    """
    if not 0.0 <= lambda_star < 1.0:
        raise ParameterError(f"lambda_star must be in [0, 1), got {lambda_star}")
    if not 0.0 < pi_min <= 1.0:
        raise ParameterError(f"pi_min must be in (0, 1], got {pi_min}")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return math.log(1.0 / (epsilon * pi_min)) / (1.0 - lambda_star)


def empirical_mixing_time(
    transition: np.ndarray,
    stationary: np.ndarray,
    epsilon: float,
    max_time: int = 1_000_000,
) -> int:
    """Smallest ``t`` with worst-start TV distance <= ``epsilon``.

    Uses repeated squaring to bracket the crossing, then binary search —
    O(size^3 log t) instead of O(size^3 t).  Valid for any ergodic chain,
    reversible or not.
    """
    size = transition.shape[0]
    if transition.shape != (size, size):
        raise ParameterError("transition must be square")
    if stationary.shape != (size,):
        raise ParameterError("stationary shape mismatch")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")

    def worst_tv(power: np.ndarray) -> float:
        return 0.5 * float(np.abs(power - stationary[None, :]).sum(axis=1).max())

    # Bracket by repeated squaring: powers 1, 2, 4, 8, ...
    if worst_tv(transition) <= epsilon:
        return 1
    powers = [transition]
    t = 1
    current = transition
    while t < max_time:
        current = current @ current
        t *= 2
        powers.append(current)
        if worst_tv(current) <= epsilon:
            break
    else:
        raise ParameterError(f"not mixed within {max_time} steps")
    if t > max_time:
        raise ParameterError(f"not mixed within {max_time} steps")

    # Binary search in (t/2, t]: reconstruct powers from the squarings.
    low, high = t // 2, t  # worst_tv at low > eps >= at high
    low_matrix = powers[-2]
    while high - low > 1:
        mid = (low + high) // 2
        mid_matrix = low_matrix @ _matrix_power(transition, mid - low)
        if worst_tv(mid_matrix) <= epsilon:
            high = mid
        else:
            low, low_matrix = mid, mid_matrix
    return high


def _matrix_power(matrix: np.ndarray, exponent: int) -> np.ndarray:
    return np.linalg.matrix_power(matrix, exponent)


def qchain_mixing_tolerance(n: int, discrepancy: float) -> float:
    """Lemma 5.5's per-state tolerance ``1 / (K^2 n^7)``.

    ``discrepancy`` is the initial ``K``; the lemma needs each transition
    probability within this tolerance of ``mu`` so the quadratic form is
    within ``1/n^5``.
    """
    if n < 1:
        raise ParameterError(f"n must be positive, got {n}")
    if discrepancy <= 0:
        raise ParameterError(f"discrepancy must be positive, got {discrepancy}")
    return 1.0 / (discrepancy**2 * float(n) ** 7)
