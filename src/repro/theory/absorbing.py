"""Exact absorbing-chain backend: MFPT, meeting and coalescence times.

The GPDistance route (SNIPPETS.md snippet 1): a hitting-time question
about a Markov chain becomes a linear solve once the target states are
made absorbing — with ``Q`` the transient-to-transient block of the
transition matrix, the fundamental matrix ``N = (I - Q)^{-1}`` gives
the expected absorption time from every transient state as ``m = N 1``.
This module applies that method to the Section-5 dual walk chains *as
the batch engine actually simulates them*, so the numbers it returns
are exact expectations of the quantities :func:`~repro.sim.montecarlo.
sample_meeting_times` and :class:`~repro.engine.dual.BatchCoalescing`
estimate by Monte Carlo — the ``engine="exact"`` backend.

Chain semantics (the asynchronous node-activation law)
------------------------------------------------------
One round selects one node uniformly at random.  A walk sitting on the
selected node moves with probability ``1 - alpha`` to a uniformly
random member of the selection's neighbour sample; walks elsewhere do
not move.  Because the sample ``S`` is a uniform ``k``-subset of the
selected node's neighbours and the walk picks a uniform member of
``S``, the *marginal* target is a uniform neighbour for every ``k`` —
exactly the ``k``-independence of the Q-chain's off-diagonal cases
(Eqs. 19–20).  The single-walk round law is therefore

    P[u -> w] = (1 - alpha) / (n * deg(u))      for each neighbour w,
    P[u -> u] = 1 - (1 - alpha) / n.

Three state spaces, in increasing size:

* **Single walk** (``n`` states) — :func:`mean_first_passage_times`
  makes a target set absorbing and solves for the expected hitting
  time from every node.
* **Walk pair** (``n (n - 1) / 2`` states) — two walks at *distinct*
  nodes can never share the selected node, so the pair chain factors
  into one-walk moves; :func:`meeting_time_matrix` builds the product
  chain on unordered pairs (the exchangeability lumping: ``(u, v)``
  and ``(v, u)`` are one state) with the diagonal absorbing and solves
  for every pair's expected meeting time at once.
* **Occupied set** (``2^n - n - 1`` transient states) —
  :func:`exact_coalescence_time` tracks the set of occupied nodes of
  the coalescing process (cluster labels are exchangeable, so the
  occupied set is a lossless lumping of the partition chain) and
  solves for the expected time until one node remains.  On complete
  graphs the set chain lumps further, to the cluster *count*, giving
  the closed form ``E[T_coal] = (n - 1)^2 / (1 - alpha)`` for any
  ``n``; generic graphs are limited by the exponential state space
  (see :func:`exact_coalescence_feasible`).

Laziness enters every off-diagonal entry as the factor ``1 - alpha``,
so all expected times scale exactly like ``1 / (1 - alpha)`` — the
slowdown law EXP-COAL measures.

Solvers
-------
``solver="dense"`` uses ``numpy.linalg.solve``; ``"sparse"`` assembles
``I - Q`` in CSR and factorises with SciPy's sparse LU; ``"cg"`` uses
the iterative BiCGStab (the chains are not symmetric) with an LU
fallback when it stalls.  ``"auto"`` picks dense below
:data:`DENSE_STATE_CUTOFF` states and the sparse LU above it; SciPy is
optional — without it ``"auto"`` stays dense and the explicitly sparse
solvers raise :class:`~repro.exceptions.ParameterError`.
"""

from __future__ import annotations

from typing import Sequence, Union

import networkx as nx
import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency

GraphLike = Union[nx.Graph, Adjacency]

#: ``"auto"`` solves dense up to this many transient states, sparse above.
DENSE_STATE_CUTOFF = 4096

#: Largest ``n`` for which the subset coalescence chain is built at all
#: (``2^n`` states); the smaller dense cap applies when SciPy is absent.
MAX_SPARSE_COALESCENCE_N = 14
MAX_DENSE_COALESCENCE_N = 11

SOLVER_CHOICES = ("auto", "dense", "sparse", "cg")


def scipy_available() -> bool:
    """Whether SciPy (the sparse LU/CG backends) is importable."""
    try:
        import scipy.sparse  # noqa: F401
        import scipy.sparse.linalg  # noqa: F401
    except Exception:  # pragma: no cover - depends on environment
        return False
    return True


def _as_adjacency(graph: GraphLike) -> Adjacency:
    return graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)


def _validate_alpha(alpha: float) -> float:
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    return float(alpha)


def validate_solver(solver: str) -> str:
    """Check a ``solver=`` selection against :data:`SOLVER_CHOICES`."""
    if solver not in SOLVER_CHOICES:
        raise ParameterError(
            f"solver must be one of {', '.join(map(repr, SOLVER_CHOICES))}, "
            f"got {solver!r}"
        )
    if solver in ("sparse", "cg") and not scipy_available():
        raise ParameterError(
            f"solver={solver!r} requires scipy, which is not importable; "
            "use solver='dense' or 'auto'"
        )
    return solver


# ----------------------------------------------------------------------
# Linear solves: m = (I - Q)^{-1} 1 in dense, sparse-LU or CG form
# ----------------------------------------------------------------------
def _solve_dense(size: int, rows, cols, vals, rhs: np.ndarray) -> np.ndarray:
    a = np.zeros((size, size))
    np.subtract.at(a, (rows, cols), vals)
    a[np.arange(size), np.arange(size)] += 1.0
    return np.linalg.solve(a, rhs)


def _solve_sparse(size, rows, cols, vals, rhs, use_cg: bool) -> np.ndarray:
    from scipy.sparse import coo_matrix, identity
    from scipy.sparse.linalg import bicgstab, splu

    q = coo_matrix(
        (np.asarray(vals), (np.asarray(rows), np.asarray(cols))),
        shape=(size, size),
    ).tocsc()
    a = (identity(size, format="csc") - q).tocsc()
    if use_cg:
        solution, info = bicgstab(a, rhs, rtol=1e-12, atol=0.0, maxiter=40 * size)
        if info == 0:
            return solution
        # Stalled iteration: fall through to the exact factorisation
        # rather than returning a half-converged expectation.
    return splu(a).solve(rhs)


def _solve_absorbing(
    size: int,
    rows: Sequence[int],
    cols: Sequence[int],
    vals: Sequence[float],
    solver: str,
    rhs: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``(I - Q) m = rhs`` for the COO-triplet transient block."""
    validate_solver(solver)
    if rhs is None:
        rhs = np.ones(size)
    if size == 0:
        return np.zeros(0)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    if solver == "auto":
        solver = (
            "dense"
            if size <= DENSE_STATE_CUTOFF or not scipy_available()
            else "sparse"
        )
    if solver == "dense":
        solution = _solve_dense(size, rows, cols, vals, rhs)
    else:
        solution = _solve_sparse(size, rows, cols, vals, rhs, solver == "cg")
    if not np.all(np.isfinite(solution)):
        raise ConvergenceError(
            "absorbing-chain solve produced non-finite expectations; "
            "the chain may not reach its absorbing set"
        )
    return solution


# ----------------------------------------------------------------------
# Single walk: the round law and mean first-passage times
# ----------------------------------------------------------------------
def walk_transition_matrix(graph: GraphLike, alpha: float = 0.0) -> np.ndarray:
    """Dense one-round transition matrix of a single dual walk.

    The asynchronous node-activation law (module docstring): the walk
    only moves in the ``1/n`` rounds that select its node, and then
    with probability ``1 - alpha`` to a uniform neighbour.
    """
    adjacency = _as_adjacency(graph)
    alpha = _validate_alpha(alpha)
    n = adjacency.n
    p = np.zeros((n, n))
    move = (1.0 - alpha) / n
    for u in range(n):
        neighbours = adjacency.neighbors_of(u)
        p[u, neighbours] = move / len(neighbours)
        p[u, u] = 1.0 - move
    return p


def mean_first_passage_times(
    graph: GraphLike,
    targets: Sequence[int] | int,
    alpha: float = 0.0,
    solver: str = "auto",
) -> np.ndarray:
    """Exact expected rounds for one walk to first hit ``targets``.

    Returns the ``(n,)`` vector of expectations (0 on the targets
    themselves) via the fundamental-matrix solve with the target set
    absorbing — the GPDistance MFPT method on the asynchronous round
    law, so the numbers are in *engine rounds*, directly comparable to
    :class:`~repro.engine.dual.BatchWalks` trajectories.
    """
    adjacency = _as_adjacency(graph)
    alpha = _validate_alpha(alpha)
    n = adjacency.n
    targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
    if targets.size == 0:
        raise ParameterError("targets must name at least one node")
    if targets.min() < 0 or targets.max() >= n:
        raise ParameterError(f"targets must be valid node indices in [0, {n})")
    transient = np.setdiff1d(np.arange(n), targets)
    index = -np.ones(n, dtype=np.int64)
    index[transient] = np.arange(transient.size)

    move = (1.0 - alpha) / n
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for row, u in enumerate(transient):
        neighbours = adjacency.neighbors_of(u)
        share = move / len(neighbours)
        rows.append(row)
        cols.append(row)
        vals.append(1.0 - move)
        for w in neighbours:
            if index[w] >= 0:
                rows.append(row)
                cols.append(int(index[w]))
                vals.append(share)
    expectations = _solve_absorbing(transient.size, rows, cols, vals, solver)
    result = np.zeros(n)
    result[transient] = expectations
    return result


# ----------------------------------------------------------------------
# Walk pairs: the meeting-time product chain on unordered pairs
# ----------------------------------------------------------------------
def _pair_index(n: int) -> np.ndarray:
    """Map ``(u, v), u < v`` to a flat state id (symmetric lumping)."""
    index = -np.ones((n, n), dtype=np.int64)
    state = 0
    for u in range(n):
        for v in range(u + 1, n):
            index[u, v] = index[v, u] = state
            state += 1
    return index


def meeting_time_matrix(
    graph: GraphLike, alpha: float = 0.0, solver: str = "auto"
) -> np.ndarray:
    """Exact expected pairwise meeting times, shape ``(n, n)``.

    Entry ``(u, v)`` is the expected number of rounds until two walks
    started on ``u`` and ``v`` first occupy one node (0 on the
    diagonal).  The product chain runs on unordered pairs — walks are
    exchangeable, so ``{u, v}`` is a lossless lumping of ``(u, v)`` /
    ``(v, u)`` — with the diagonal absorbing.  Because distinct nodes
    never share a selection, each round moves at most one walk of the
    pair: the transition law is two superposed single-walk laws, which
    makes the expectation identical for every selection fan-in ``k``
    (Eqs. 19–20) and leaves no parity obstruction on bipartite graphs
    even at ``alpha = 0``.
    """
    adjacency = _as_adjacency(graph)
    alpha = _validate_alpha(alpha)
    n = adjacency.n
    index = _pair_index(n)
    size = n * (n - 1) // 2
    move = (1.0 - alpha) / n

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    diag = np.zeros(size)
    for u in range(n):
        neighbours_u = adjacency.neighbors_of(u)
        for v in range(u + 1, n):
            src = int(index[u, v])
            out = 0.0
            for mover, other in ((u, v), (v, u)):
                neighbours = (
                    neighbours_u if mover == u else adjacency.neighbors_of(mover)
                )
                share = move / len(neighbours)
                for w in neighbours:
                    out += share
                    if w != other:  # w == other is the absorbing meeting
                        rows.append(src)
                        cols.append(int(index[w, other]))
                        vals.append(share)
            diag[src] = 1.0 - out
    rows.extend(range(size))
    cols.extend(range(size))
    vals.extend(diag.tolist())

    expectations = _solve_absorbing(size, rows, cols, vals, solver)
    matrix = np.zeros((n, n))
    for u in range(n):
        for v in range(u + 1, n):
            matrix[u, v] = matrix[v, u] = expectations[index[u, v]]
    return matrix


def expected_meeting_time(
    graph: GraphLike,
    u: int,
    v: int,
    alpha: float = 0.0,
    solver: str = "auto",
) -> float:
    """Exact expected meeting time of walks started on ``u`` and ``v``."""
    adjacency = _as_adjacency(graph)
    n = adjacency.n
    if not (0 <= u < n and 0 <= v < n):
        raise ParameterError(f"nodes must be in [0, {n}), got ({u}, {v})")
    return float(meeting_time_matrix(adjacency, alpha=alpha, solver=solver)[u, v])


# ----------------------------------------------------------------------
# Full coalescence: the occupied-set chain (with complete-graph lumping)
# ----------------------------------------------------------------------
def exact_coalescence_feasible(graph: GraphLike) -> bool:
    """Whether :func:`exact_coalescence_time` can solve this graph.

    Complete graphs lump to the cluster count and are feasible at any
    ``n``; any other graph needs the ``2^n``-state occupied-set chain,
    capped at :data:`MAX_SPARSE_COALESCENCE_N` nodes with SciPy and
    :data:`MAX_DENSE_COALESCENCE_N` without.
    """
    adjacency = _as_adjacency(graph)
    n = adjacency.n
    if _is_complete(adjacency):
        return True
    cap = (
        MAX_SPARSE_COALESCENCE_N
        if scipy_available()
        else MAX_DENSE_COALESCENCE_N
    )
    return n <= cap


def _is_complete(adjacency: Adjacency) -> bool:
    n = adjacency.n
    return n == 1 or (adjacency.is_regular and adjacency.degree == n - 1)


def _complete_graph_coalescence(n: int, alpha: float) -> float:
    """Closed form from the cluster-count lumping of the set chain.

    With ``c`` clusters on ``K_n`` a round merges with probability
    ``(c / n) (1 - alpha) (c - 1) / (n - 1)``, so the expectation
    telescopes: ``sum_{c=2}^{n} n (n - 1) / ((1 - alpha) c (c - 1))
    = (n - 1)^2 / (1 - alpha)``.
    """
    return (n - 1.0) ** 2 / (1.0 - alpha)


def exact_coalescence_time(
    graph: GraphLike, alpha: float = 0.0, solver: str = "auto"
) -> float:
    """Exact expected full-coalescence time from the all-occupied start.

    The expectation of the quantity
    :func:`repro.sim.montecarlo.sample_meeting_times` samples: one walk
    per node, co-located walks merge, time until a single walk remains,
    counted in engine rounds.  Cluster labels are exchangeable, so the
    occupied node *set* is a lossless lumping of the partition chain;
    complete graphs lump further to the cluster count (closed form).
    Raises :class:`~repro.exceptions.ParameterError` when the set chain
    is infeasible — see :func:`exact_coalescence_feasible`.
    """
    adjacency = _as_adjacency(graph)
    alpha = _validate_alpha(alpha)
    validate_solver(solver)
    n = adjacency.n
    if n == 1:
        return 0.0
    if _is_complete(adjacency):
        return _complete_graph_coalescence(n, alpha)
    if not exact_coalescence_feasible(adjacency):
        cap = (
            MAX_SPARSE_COALESCENCE_N
            if scipy_available()
            else MAX_DENSE_COALESCENCE_N
        )
        raise ParameterError(
            f"exact coalescence needs the 2^n occupied-set chain, "
            f"feasible only for n <= {cap} on non-complete graphs "
            f"(got n = {n}); use the Monte-Carlo engines instead"
        )

    # Transient states: occupied sets with >= 2 nodes, as bitmasks.
    masks = [m for m in range(1, 1 << n) if _popcount(m) >= 2]
    index = {mask: i for i, mask in enumerate(masks)}
    move = (1.0 - alpha) / n
    neighbour_lists = [adjacency.neighbors_of(u) for u in range(n)]

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for src, mask in enumerate(masks):
        stay = 1.0
        remaining = mask
        while remaining:
            u = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            neighbours = neighbour_lists[u]
            share = move / len(neighbours)
            for w in neighbours:
                stay -= share
                nxt = (mask & ~(1 << u)) | (1 << int(w))
                if _popcount(nxt) >= 2:
                    rows.append(src)
                    cols.append(index[nxt])
                    vals.append(share)
        rows.append(src)
        cols.append(src)
        vals.append(stay)

    expectations = _solve_absorbing(len(masks), rows, cols, vals, solver)
    return float(expectations[index[(1 << n) - 1]])


def _popcount(mask: int) -> int:
    return bin(mask).count("1")
