"""Request deduplication: concurrent identical submissions cost one run.

The service's identity of a computation is :meth:`RunSpec.key` — the
same content-addressed key the :class:`~repro.api.store.ArtifactStore`
files results under.  While a job for some key is *active* (queued,
claimed or running), every further submission of the same key is
coalesced: it gets its own job record (state ``coalesced``) pointing at
the active *primary*, never enters the queue, and resolves the moment
the primary's artefact lands in the store.  A million identical sweep
requests therefore cost one engine computation plus a million manifest
reads.

The index is a directory of marker files, one per active key (the file
name is a hash of the key — keys embed experiment ids and override
digests and can exceed filename limits; the key itself is stored inside
the marker).  Markers are only consulted and written under the queue's
submit lock, so the classic check-then-create race between two
submitters cannot mint two primaries.  A marker whose primary has
reached a terminal state is stale (e.g. the releasing process died
between finishing the job and unlinking the marker) and is simply
replaced by the next submission of that key.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Optional

from repro.locks import atomic_write_text, read_text


class DedupIndex:
    """Key -> active primary job id, backed by marker files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _marker(self, key: str) -> Path:
        return self.root / (hashlib.sha256(key.encode()).hexdigest()[:24] + ".json")

    def active_primary(
        self, key: str, is_active: Callable[[str], bool]
    ) -> Optional[str]:
        """The job id currently computing ``key``, or ``None``.

        ``is_active`` maps a job id to liveness; a marker pointing at a
        finished (or vanished) job is treated as absent.
        """
        marker = self._marker(key)
        try:
            payload = json.loads(read_text(marker, site="dedup.marker"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        job_id = payload.get("job")
        if not job_id or not is_active(job_id):
            return None
        return str(job_id)

    def register(self, key: str, job_id: str) -> None:
        """Record ``job_id`` as the primary for ``key`` (overwrites a
        stale marker; callers hold the submit lock)."""
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self._marker(key),
            json.dumps({"key": key, "job": job_id}),
            site="dedup.marker",
        )

    def markers(self):
        """All marker files as ``(path, payload_or_None)`` pairs.

        ``None`` payloads mark unreadable/corrupt markers; recovery and
        fsck garbage-collect both those and markers whose primary job
        no longer exists or is no longer active.
        """
        try:
            entries = sorted(self.root.glob("*.json"))
        except OSError:
            return []
        out = []
        for path in entries:
            try:
                out.append((path, json.loads(path.read_text())))
            except (FileNotFoundError, json.JSONDecodeError):
                out.append((path, None))
        return out

    def release(self, key: str, job_id: str) -> None:
        """Drop the marker for ``key`` if ``job_id`` still owns it.

        Called on every terminal transition of a primary.  The
        ownership check keeps a slow releaser (e.g. a worker that lost
        its job to the orchestrator's dead-worker sweep) from deleting
        the marker of the replacement primary.
        """
        marker = self._marker(key)
        try:
            payload = json.loads(read_text(marker, site="dedup.marker"))
        except (FileNotFoundError, json.JSONDecodeError):
            return
        if payload.get("job") == job_id:
            try:
                marker.unlink()
            except FileNotFoundError:
                pass
