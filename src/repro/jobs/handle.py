"""Client-side view of a submitted job: ``submit()`` and ``JobHandle``.

This is the async face of the declarative API.  Where
:func:`repro.api.execute` blocks the calling process,
:func:`submit` files a :class:`~repro.api.spec.RunSpec` with a service
root and returns immediately; a worker pool (``repro serve``) does the
computing, and the handle's :meth:`~JobHandle.wait` turns back into the
exact same :class:`~repro.api.spec.RunResult` a synchronous ``execute``
would have produced — loaded from the shared
:class:`~repro.api.store.ArtifactStore`, bit-identical tables and all,
because both paths run the same engine at the same seed.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.api.spec import RunResult, RunSpec
from repro.exceptions import ArtifactError, JobError
from repro.jobs.model import (
    CANCELLED,
    DEFAULT_MAX_RETRIES,
    DONE,
    FAILED,
    QUARANTINED,
    Job,
)
from repro.jobs.queue import JobQueue

#: Default service root, shared by the CLI subcommands.
DEFAULT_ROOT = ".repro_jobs"


def submit(
    spec: RunSpec,
    root: str | Path = DEFAULT_ROOT,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> "JobHandle":
    """File ``spec`` with the service at ``root``; non-blocking.

    Concurrent submissions of identical configurations (same
    ``spec.key()``) coalesce into one computation; the returned handle
    resolves through the primary job transparently.
    """
    queue = JobQueue(root)
    job = queue.submit(spec, max_retries=max_retries)
    return JobHandle(queue, job.id)


class JobHandle:
    """Pollable reference to one submitted job."""

    def __init__(self, queue: JobQueue | str | Path, job_id: str) -> None:
        self.queue = queue if isinstance(queue, JobQueue) else JobQueue(queue)
        self.job_id = job_id

    def status(self, follow: bool = True) -> Job:
        """The current job record (``follow`` resolves coalescence)."""
        job = self.queue.get(self.job_id)
        return self.queue.resolve(job) if follow else job

    def state(self) -> str:
        return self.status().state

    def progress(self) -> Optional[Dict[str, Any]]:
        """The live heartbeat of the executing job, if any."""
        return self.queue.read_heartbeat(self.status().id)

    def result(self) -> RunResult:
        """The archived result; raises :class:`JobError` unless done."""
        job = self.status()
        if job.state != DONE:
            raise JobError(
                f"job {self.job_id} is {job.state}, not done"
                + (f": {job.error}" if job.error else "")
            )
        try:
            return self.queue.store.load(job.key)
        except ArtifactError as error:
            raise JobError(
                f"job {self.job_id} finished but its artefact is missing: "
                f"{error}"
            ) from error

    def wait(
        self, timeout: Optional[float] = None, poll: float = 0.1
    ) -> RunResult:
        """Block until the job completes; returns its result.

        Raises :class:`JobError` on failure, quarantine, cancellation,
        or timeout.  Waiting is pure polling of the job record — the
        handle works from any process that can see the service root.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status()
            if job.state == DONE:
                return self.result()
            if job.state in (FAILED, QUARANTINED, CANCELLED):
                raise JobError(
                    f"job {self.job_id} {job.state}"
                    + (f": {job.error}" if job.error else "")
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise JobError(
                    f"timed out after {timeout:.1f}s waiting for job "
                    f"{self.job_id} (currently {job.state})"
                )
            time.sleep(poll)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobHandle({self.job_id!r}, root={str(self.queue.root)!r})"
