"""The orchestrator: spawns workers, buries the dead, requeues their jobs.

One supervising process owns the worker pool.  Its ``serve`` loop does
three things per tick:

1. **Respawn** — a worker subprocess that exited (crash, OOM kill)
   while the service should still be running is replaced, keeping the
   pool at its configured size.
2. **Dead-job sweep** — every claimed/running job's heartbeat is
   checked.  A job whose worker pid is gone, or whose heartbeat is
   older than ``heartbeat_timeout``, has lost its worker: it is
   requeued with capped exponential backoff (``jobs.retried``), or
   quarantined once it has burned ``max_retries`` attempts
   (``jobs.quarantined`` — the poison-job valve that keeps one
   crashing spec from eating the pool forever).
3. **Shutdown checks** — a ``STOP`` file (``repro jobs stop``) or, with
   ``until_idle``, a drained queue ends the loop; workers see the same
   STOP file and exit after their current job, so shutdown is clean by
   construction and SIGTERM is only the impatient fallback.

Supervision is pure queue-state observation: the orchestrator never
talks to workers directly, so it supervises workers it did not spawn
(e.g. extra workers started by hand on the same root) exactly as well
as its own.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.jobs.model import CLAIMED, RUNNING
from repro.jobs.queue import JobQueue


def _pid_alive(pid: Optional[int]) -> bool:
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


class Orchestrator:
    """Worker-pool supervisor over one :class:`JobQueue` root."""

    def __init__(
        self,
        root: str,
        workers: int = 2,
        heartbeat_timeout: float = 5.0,
        poll: float = 0.2,
        worker_poll: float = 0.1,
        heartbeat_interval: float = 0.5,
        imports: Sequence[str] = (),
    ) -> None:
        self.queue = JobQueue(root)
        self.workers = workers
        self.heartbeat_timeout = heartbeat_timeout
        self.poll = poll
        self.worker_poll = worker_poll
        self.heartbeat_interval = heartbeat_interval
        self.imports = list(imports)
        self.procs: List[subprocess.Popen] = []
        self._spawned = 0

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> subprocess.Popen:
        self._spawned += 1
        log = open(
            self.queue.root / "logs" / f"worker-{self._spawned}.log", "ab"
        )
        argv = [
            sys.executable, "-m", "repro.jobs.worker", str(self.queue.root),
            "--poll", str(self.worker_poll),
            "--heartbeat-interval", str(self.heartbeat_interval),
        ]
        for module in self.imports:
            argv.append(f"--import={module}")
        proc = subprocess.Popen(argv, stdout=log, stderr=log)
        log.close()
        return proc

    def start(self) -> None:
        """Create the layout, repair crash debris, bring the pool up.

        The :meth:`JobQueue.recover` pass runs before any worker
        spawns: orphaned temps are reaped, half-renamed records
        re-homed and dangling markers collected while nothing is racing
        the repair.
        """
        self.queue.ensure_layout()
        self.queue.recover()
        self.queue.clear_stop()
        while len(self.procs) < self.workers:
            self.procs.append(self._spawn_worker())

    def _respawn_dead(self) -> None:
        for index, proc in enumerate(self.procs):
            if proc.poll() is not None:
                self.procs[index] = self._spawn_worker()

    # ------------------------------------------------------------------
    # Dead-job sweep
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Requeue every claimed job whose worker is gone or silent.

        Returns the number of jobs moved (requeued or quarantined).
        """
        moved = 0
        now = time.time()
        local_host = socket.gethostname()
        for job in self.queue.jobs(states=(CLAIMED, RUNNING)):
            heartbeat = self.queue.read_heartbeat(job.id)
            last_seen = (
                heartbeat["t"] if heartbeat else (job.claimed_at or now)
            )
            stale = now - last_seen > self.heartbeat_timeout
            # A pid-liveness probe is only meaningful on the host that
            # issued the pid: for a worker on another host (or a legacy
            # record with no host) the heartbeat timeout is the sole
            # death signal — os.kill(pid, 0) here would interrogate an
            # unrelated local process that merely reuses the number.
            worker_host = job.worker_host or (
                heartbeat.get("host") if heartbeat else None
            )
            dead = worker_host == local_host and not _pid_alive(
                job.worker_pid
            )
            if not (stale or dead):
                continue
            reason = (
                f"worker {worker_host or '?'}:{job.worker_pid} "
                + ("died" if dead else
                   f"silent for {now - last_seen:.1f}s")
            )
            try:
                self.queue.requeue(job, reason)
                moved += 1
            except Exception:
                continue  # the worker beat us to a terminal transition
        return moved

    # ------------------------------------------------------------------
    # Serve loop
    # ------------------------------------------------------------------
    def serve(
        self,
        until_idle: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Supervise until STOP / drained (``until_idle``) / ``timeout``.

        Returns the final :meth:`JobQueue.stats` dict.  Always shuts
        the pool down before returning, even on an exception.
        """
        self.start()
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while True:
                if self.queue.stop_requested():
                    break
                self._respawn_dead()
                self.sweep()
                if until_idle and self.queue.idle():
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                time.sleep(self.poll)
        finally:
            self.shutdown()
        return self.queue.stats()

    def shutdown(self, grace: float = 5.0) -> None:
        """Stop the pool: STOP file, then SIGTERM, then SIGKILL."""
        self.queue.request_stop()
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline and any(
            proc.poll() is None for proc in self.procs
        ):
            time.sleep(0.05)
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in self.procs:
            try:
                proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                proc.kill()
                proc.wait()
        self.procs.clear()
        self.queue.clear_stop()


def serve(
    root: str,
    workers: int = 2,
    heartbeat_timeout: float = 5.0,
    until_idle: bool = False,
    timeout: Optional[float] = None,
    imports: Sequence[str] = (),
) -> Dict[str, Any]:
    """Run a worker pool over ``root``; returns the final stats."""
    orchestrator = Orchestrator(
        root,
        workers=workers,
        heartbeat_timeout=heartbeat_timeout,
        imports=imports,
    )
    return orchestrator.serve(until_idle=until_idle, timeout=timeout)
