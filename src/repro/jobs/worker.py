"""The worker: claims jobs, executes them, streams progress back.

A worker is a plain process (``python -m repro.jobs.worker ROOT``) with
no shared memory: everything it knows arrives through the queue
directories, everything it reports leaves through heartbeat files, job
records and the artefact store.  That is what makes the orchestrator's
supervision honest — killing a worker with ``SIGKILL`` mid-job loses
nothing but the partial computation, and the engine's disk cache means
even that is usually reclaimed on retry.

While a job runs, a daemon heartbeat thread rewrites
``heartbeats/<job>.json`` every ``heartbeat_interval`` seconds with the
worker pid and the run-scoped delta of the process-wide metric
registry — ``engine.replica_steps`` ticking upward in a heartbeat *is*
the partial-progress stream, shard by shard, without the engine knowing
the service exists.  Jobs submitted with ``spec.trace`` execute under a
tracer exactly as ``repro run --trace`` would, so the archived artefact
carries a telemetry block and ``repro trace summary`` works on
service-produced results.

Failure split: an exception out of :func:`repro.api.execute` is a
*deterministic* failure (bad spec, broken experiment) — retrying cannot
heal it, so the job goes straight to ``failed``.  Worker *death* is
transient by assumption and handled by the orchestrator's
heartbeat-timeout sweep (requeue with backoff, quarantine after
``max_retries``).
"""

from __future__ import annotations

import argparse
import importlib
import os
import socket
import sys
import threading
import time
import traceback
from typing import Optional, Sequence

from repro.api.spec import RunSpec
from repro.exceptions import JobError, StorageError
from repro.jobs.model import DONE, FAILED, RUNNING, Job
from repro.jobs.queue import JobQueue
from repro.obs.metrics import METRICS


class _DeadlineExceeded(Exception):
    """A job's ``spec.timeout_s`` wall-clock deadline expired."""


class _HeartbeatThread(threading.Thread):
    """Rewrites the job's heartbeat until stopped."""

    def __init__(self, queue: JobQueue, job: Job, interval: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{job.id}")
        self.queue = queue
        self.job = job
        self.interval = interval
        self.baseline = METRICS.snapshot()
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def beat(self) -> None:
        delta = METRICS.delta(self.baseline)
        self.queue.write_heartbeat(self.job, counters=delta["counters"])

    def stop(self) -> None:
        self._stop.set()


class Worker:
    """Claims and executes jobs from one queue root."""

    def __init__(
        self,
        root: str,
        poll: float = 0.2,
        heartbeat_interval: float = 0.5,
    ) -> None:
        self.queue = JobQueue(root)
        self.poll = poll
        self.heartbeat_interval = heartbeat_interval
        self.pid = os.getpid()
        self.host = socket.gethostname()

    @property
    def id(self) -> str:
        """``host:pid`` — pids are only meaningful on their own host."""
        return f"{self.host}:{self.pid}"

    # ------------------------------------------------------------------
    # Loop
    # ------------------------------------------------------------------
    def run(
        self,
        max_jobs: Optional[int] = None,
        idle_exit: Optional[float] = None,
    ) -> int:
        """Claim-and-execute until told to stop; returns jobs processed.

        Exits when the queue's STOP file appears, after ``max_jobs``
        jobs, or after ``idle_exit`` seconds without claimable work.
        """
        self.queue.ensure_layout()
        processed = 0
        idle_since = time.monotonic()
        while True:
            if self.queue.stop_requested():
                break
            if max_jobs is not None and processed >= max_jobs:
                break
            if self.run_one():
                processed += 1
                idle_since = time.monotonic()
                continue
            if (
                idle_exit is not None
                and time.monotonic() - idle_since > idle_exit
            ):
                break
            time.sleep(self.poll)
        return processed

    def run_one(self) -> bool:
        """Claim and fully process one job; False when queue is empty."""
        job = self.queue.claim(worker_pid=self.pid)
        if job is None:
            return False
        self.process(job)
        return True

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------
    def process(self, job: Job) -> Job:
        job.state = RUNNING
        self.queue.update(job)
        heartbeat = _HeartbeatThread(self.queue, job, self.heartbeat_interval)
        heartbeat.start()
        try:
            try:
                result = self._execute(job.spec)
            except _DeadlineExceeded as error:
                # A hung kernel is transient by policy: requeue with
                # backoff (quarantine after max_retries) instead of
                # leaving a stuck claim or declaring a deterministic
                # failure.  The abandoned daemon thread may run on; its
                # result is simply never saved.
                METRICS.count("jobs.deadline_kills")
                try:
                    return self.queue.requeue(job, str(error))
                except JobError:
                    METRICS.count("jobs.lost_ownership")
                    return job
            except Exception:
                return self._finish(
                    job, FAILED, traceback.format_exc(limit=20)
                )
            try:
                self.queue.store.save(result)
            except StorageError as error:
                # Operational failure (disk full), not a spec bug: fail
                # the job with the diagnosis, no traceback noise.
                return self._finish(job, FAILED, f"storage error: {error}")
            except Exception:
                return self._finish(
                    job, FAILED, traceback.format_exc(limit=20)
                )
            return self._finish(job, DONE, None)
        finally:
            heartbeat.stop()

    def _execute(self, spec: RunSpec):
        """Run ``spec``, bounded by its wall-clock deadline if it has one.

        The watchdog is a thread join, not SIGALRM: it works from any
        thread, composes with workers embedded in larger processes, and
        needs no signal handler coordination.  The execution happens in
        a daemon thread; if the deadline passes the worker abandons it
        and raises :class:`_DeadlineExceeded`.
        """
        from repro.api.run import execute

        if spec.timeout_s is None:
            return execute(spec)
        outcome: dict = {}

        def _run() -> None:
            try:
                outcome["result"] = execute(spec)
            except BaseException as error:  # delivered to the caller
                outcome["error"] = error

        thread = threading.Thread(
            target=_run, daemon=True, name=f"exec-{spec.experiment_id}"
        )
        thread.start()
        thread.join(spec.timeout_s)
        if thread.is_alive():
            raise _DeadlineExceeded(
                f"deadline of {spec.timeout_s:g}s exceeded by worker "
                f"{self.id}"
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["result"]

    def _finish(self, job: Job, state: str, error: str | None) -> Job:
        try:
            finished = self.queue.transition(job, state, error=error)
        except JobError:
            # The orchestrator requeued this job to another owner while
            # we were (slowly but successfully) computing.  The result
            # is already in the store under the spec key, so the
            # replacement run resolves to the identical artefact.
            METRICS.count("jobs.lost_ownership")
            return job
        METRICS.count("jobs.completed" if state == DONE else "jobs.failed")
        return finished


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Job-queue worker: claims RunSpecs and executes them",
    )
    parser.add_argument("root", help="service root directory")
    parser.add_argument("--poll", type=float, default=0.2,
                        help="seconds between claim attempts when idle")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5,
                        help="seconds between heartbeat writes")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit after this many jobs")
    parser.add_argument("--idle-exit", type=float, default=None,
                        help="exit after this many idle seconds")
    parser.add_argument("--import", dest="imports", action="append",
                        default=[], metavar="MODULE",
                        help=(
                            "import MODULE before serving (registers "
                            "extra experiments; repeatable)"
                        ))
    args = parser.parse_args(argv)
    for module in args.imports:
        importlib.import_module(module)
    worker = Worker(
        args.root, poll=args.poll, heartbeat_interval=args.heartbeat_interval
    )
    processed = worker.run(max_jobs=args.max_jobs, idle_exit=args.idle_exit)
    print(f"worker {worker.id}: processed {processed} job(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
