"""Service-level telemetry: one span per job, worker traces grafted in.

:func:`jobs_telemetry` folds a queue's job records into the same
schema-1 telemetry block :mod:`repro.obs.export` produces for a single
run, so the whole service timeline reuses the existing tooling —
``chrome_trace`` renders it in Perfetto with one track per worker pid,
``summarize`` aggregates it.  Each job becomes a ``job`` span (queued
wait + run phase as children); when a job executed with ``spec.trace``
its archived worker telemetry is re-rooted under the job's run span,
shifted onto the service clock via :meth:`repro.obs.trace.Span.shifted`
— the per-job merge of worker spans.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.jobs.model import DONE
from repro.jobs.queue import JobQueue
from repro.obs.export import TELEMETRY_SCHEMA
from repro.obs.trace import Span


def _job_span(queue: JobQueue, job: Any, t0: float, now: float) -> Span:
    end = job.finished_at or now
    claimed = job.claimed_at
    children: List[Span] = []
    if claimed is not None:
        children.append(
            Span("job.queued", job.submitted_at - t0, claimed - job.submitted_at)
        )
        run_attrs = (
            {"pid": job.worker_pid} if job.worker_pid is not None else {}
        )
        run = Span("job.run", claimed - t0, end - claimed, attrs=run_attrs)
        if job.state == DONE and job.spec.trace:
            try:
                telemetry = queue.store.load(job.key).telemetry
            except Exception:
                telemetry = None
            if telemetry:
                run.children = [
                    Span.from_payload(payload).shifted(claimed - t0)
                    for payload in telemetry.get("spans", [])
                ]
        children.append(run)
    else:
        children.append(
            Span("job.queued", job.submitted_at - t0, end - job.submitted_at)
        )
    return Span(
        "job",
        job.submitted_at - t0,
        end - job.submitted_at,
        attrs={
            "job": job.id,
            "experiment": job.spec.experiment_id,
            "key": job.key,
            "state": job.state,
            "attempts": job.attempts,
            **(
                {"pid": job.worker_pid}
                if job.worker_pid is not None else {}
            ),
        },
        children=children,
    )


def jobs_telemetry(queue: JobQueue) -> Dict[str, Any]:
    """A schema-1 telemetry block for the whole service timeline."""
    jobs = queue.jobs()
    now = time.time()
    t0 = min((job.submitted_at for job in jobs), default=now)
    spans = [_job_span(queue, job, t0, now) for job in jobs]
    stats = queue.stats()
    counters = {
        f"jobs.{name}": float(stats[name])
        for name in ("submitted", "deduped", "retried", "failed",
                     "quarantined", "done")
    }
    return {
        "schema": TELEMETRY_SCHEMA,
        "spans": [span.to_payload() for span in spans],
        "dropped_spans": 0,
        "counters": counters,
        "gauges": {},
        "peaks": {},
        "streams": {"series": {}, "histograms": {}},
    }
