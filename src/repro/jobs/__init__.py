"""Async job orchestration over the declarative run API.

The serving stack the ROADMAP's worker/orchestrator split asks for
(DESIGN.md section 10), in five cooperating pieces:

* :class:`~repro.jobs.queue.JobQueue` — a persistent on-disk queue of
  :class:`~repro.jobs.model.Job` records with rename-atomic claims.
* :mod:`repro.jobs.dedup` — concurrent identical submissions coalesce
  into one computation, fanned out through the
  :class:`~repro.api.store.ArtifactStore`.
* :class:`~repro.jobs.worker.Worker` — claims jobs, runs
  :func:`repro.api.execute`, streams heartbeat progress back.
* :class:`~repro.jobs.orchestrator.Orchestrator` — spawns/supervises
  the worker pool, requeues dead workers' jobs with capped exponential
  backoff, quarantines poison jobs after ``max_retries``.
* :func:`~repro.jobs.handle.submit` / :class:`~repro.jobs.handle.JobHandle`
  — the client face, re-exported as :func:`repro.api.submit`.
* :func:`~repro.jobs.fsck.fsck` +
  :meth:`~repro.jobs.queue.JobQueue.recover` — crash-consistency: the
  invariant checker behind ``repro fsck [--repair]`` and the recovery
  pass the orchestrator runs at serve-start (DESIGN.md section 11).

Quick tour::

    from repro.api import RunSpec, submit
    from repro.jobs import serve          # or: repro serve --root DIR

    handle = submit(RunSpec("EXP-F1"), root="jobs/")
    serve("jobs/", workers=2, until_idle=True)
    result = handle.wait(timeout=60)
"""

from repro.jobs.dedup import DedupIndex
from repro.jobs.fsck import fsck, queue_findings
from repro.jobs.handle import DEFAULT_ROOT, JobHandle, submit
from repro.jobs.model import (
    ACTIVE_STATES,
    CANCELLED,
    CLAIMED,
    COALESCED,
    DEFAULT_MAX_RETRIES,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    backoff_seconds,
)
from repro.jobs.orchestrator import Orchestrator, serve
from repro.jobs.queue import JobQueue
from repro.jobs.telemetry import jobs_telemetry
from repro.jobs.worker import Worker

__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "CLAIMED",
    "COALESCED",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_ROOT",
    "DONE",
    "DedupIndex",
    "FAILED",
    "Job",
    "JobHandle",
    "JobQueue",
    "Orchestrator",
    "QUARANTINED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "Worker",
    "backoff_seconds",
    "fsck",
    "jobs_telemetry",
    "queue_findings",
    "serve",
    "submit",
]
