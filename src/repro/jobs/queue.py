"""Persistent on-disk job queue with atomic claims.

Layout (everything under one service root, safe to ``rm -rf`` when
idle)::

    root/
      queued/<job>.json        eligible for claiming (FIFO by submit time)
      claimed/<job>.json       owned by a worker (states claimed|running)
      done|failed|quarantined|cancelled|coalesced/<job>.json
      heartbeats/<job>.json    worker liveness + progress counters
      keys/<hash>.json         dedup markers (see repro.jobs.dedup)
      store/                   ArtifactStore the results land in
      logs/                    worker stdout/stderr (orchestrator-spawned)
      submit.lock              FileLock serialising submissions
      STOP                     cooperative shutdown request

The concurrency design is rename-based: *moving a record between state
directories is the transaction*.  ``os.rename`` on one filesystem is
atomic, so when several workers race to claim a job exactly one rename
succeeds and the losers get ``FileNotFoundError`` and move on — no lock
is held while claiming or completing.  The only locked section is
submission, where the dedup check-then-register must be indivisible.

Metric counters (``jobs.submitted`` / ``jobs.deduped`` /
``jobs.retried`` / ``jobs.failed`` / ``jobs.completed`` /
``jobs.quarantined``) land in the process-wide
:data:`~repro.obs.metrics.METRICS` registry of whichever process
performed the transition; :meth:`JobQueue.stats` derives the same
totals from the records themselves, which is what the CLI reports —
record-derived numbers survive process boundaries.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.api.spec import RunSpec
from repro.api.store import ArtifactStore
from repro.exceptions import JobError
from repro.jobs.dedup import DedupIndex
from repro.jobs.model import (
    ACTIVE_STATES,
    CANCELLED,
    CLAIMED,
    COALESCED,
    DEFAULT_MAX_RETRIES,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    Job,
    backoff_seconds,
)
from repro.locks import FileLock, atomic_write_text
from repro.obs.metrics import METRICS

#: state -> directory name.  ``running`` keeps living in ``claimed/``:
#: the claim rename grants ownership, the running flag is bookkeeping.
STATE_DIRS = {
    QUEUED: "queued",
    CLAIMED: "claimed",
    RUNNING: "claimed",
    DONE: "done",
    FAILED: "failed",
    QUARANTINED: "quarantined",
    CANCELLED: "cancelled",
    COALESCED: "coalesced",
}
_DIR_NAMES = ("queued", "claimed", "done", "failed", "quarantined",
              "cancelled", "coalesced")
STOP_NAME = "STOP"


class JobQueue:
    """Directory-backed queue of :class:`~repro.jobs.model.Job`\\ s."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.dedup = DedupIndex(self.root / "keys")

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def ensure_layout(self) -> None:
        for name in _DIR_NAMES + ("heartbeats", "keys", "logs"):
            (self.root / name).mkdir(parents=True, exist_ok=True)

    def _dir(self, state: str) -> Path:
        return self.root / STATE_DIRS[state]

    def _path(self, job: Job) -> Path:
        return self._dir(job.state) / f"{job.id}.json"

    @property
    def store(self) -> ArtifactStore:
        """The artefact store results are fanned out through."""
        return ArtifactStore(self.root / "store")

    # ------------------------------------------------------------------
    # Submission (the one locked section: dedup must be indivisible)
    # ------------------------------------------------------------------
    def submit(
        self, spec: RunSpec, max_retries: int = DEFAULT_MAX_RETRIES
    ) -> Job:
        """Enqueue ``spec``; returns the new job record.

        A submission whose ``spec.key()`` matches a still-active job
        coalesces into it instead of enqueueing (state ``coalesced``,
        counted as ``jobs.deduped``).
        """
        self.ensure_layout()
        job = Job(spec=spec, max_retries=max_retries)
        with FileLock(self.root / "submit.lock"):
            primary = self.dedup.active_primary(job.key, self._is_active)
            if primary is not None:
                job.state = COALESCED
                job.coalesced_into = primary
                self._write(job)
                METRICS.count("jobs.submitted")
                METRICS.count("jobs.deduped")
                return job
            self._write(job)
            self.dedup.register(job.key, job.id)
        METRICS.count("jobs.submitted")
        return job

    def _is_active(self, job_id: str) -> bool:
        try:
            return self.get(job_id).active
        except JobError:
            return False

    # ------------------------------------------------------------------
    # Claiming (lock-free: the rename is the transaction)
    # ------------------------------------------------------------------
    def claim(self, worker_pid: int | None = None) -> Optional[Job]:
        """Atomically take ownership of the oldest eligible queued job.

        Returns ``None`` when nothing is claimable (empty queue, or all
        queued jobs still inside their retry backoff window).
        """
        now = time.time()
        candidates: List[Job] = []
        for job in self._read_dir("queued"):
            if job.not_before <= now:
                candidates.append(job)
        candidates.sort(key=lambda j: (j.submitted_at, j.id))
        pid = os.getpid() if worker_pid is None else worker_pid
        for job in candidates:
            source = self._dir(QUEUED) / f"{job.id}.json"
            target = self._dir(CLAIMED) / f"{job.id}.json"
            try:
                os.rename(source, target)
            except FileNotFoundError:
                continue  # another worker won this one
            job.state = CLAIMED
            job.claimed_at = time.time()
            job.worker_pid = pid
            self._write(job)
            self.write_heartbeat(job)
            return job
        return None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def update(self, job: Job) -> None:
        """Rewrite ``job``'s record in place (no state-directory move)."""
        self._write(job)

    def transition(self, job: Job, state: str, *, error: str | None = None,
                   ) -> Job:
        """Move ``job`` from its current state directory to ``state``'s.

        Raises :class:`JobError` if the job is no longer where the
        caller believes it is — e.g. a worker finishing a job the
        orchestrator already requeued to a new owner.  Terminal
        transitions release the dedup marker and drop the heartbeat.
        """
        source = self._path(job)
        job_after = Job.from_payload(job.to_payload())
        job_after.state = state
        if error is not None:
            job_after.error = error
        if state in (DONE, FAILED, QUARANTINED, CANCELLED):
            job_after.finished_at = time.time()
        target = self._path(job_after)
        if source != target:
            try:
                os.rename(source, target)
            except FileNotFoundError:
                raise JobError(
                    f"job {job.id} is no longer {job.state} (lost ownership)"
                ) from None
        self._write(job_after)
        if job_after.terminal:
            self.dedup.release(job_after.key, job_after.id)
            self._drop_heartbeat(job_after.id)
        return job_after

    def requeue(self, job: Job, reason: str) -> Job:
        """Return a claimed/running job to the queue with backoff.

        Used by the orchestrator's dead-worker sweep.  After
        ``max_retries`` requeues the job is quarantined instead
        (poison-job protection).  Counts ``jobs.retried`` or
        ``jobs.quarantined``.
        """
        if job.attempts + 1 > job.max_retries:
            quarantined = self.transition(job, QUARANTINED, error=reason)
            METRICS.count("jobs.quarantined")
            return quarantined
        source = self._path(job)
        job_after = Job.from_payload(job.to_payload())
        job_after.attempts += 1
        job_after.state = QUEUED
        job_after.claimed_at = None
        job_after.worker_pid = None
        job_after.error = reason
        job_after.not_before = time.time() + backoff_seconds(job_after.attempts)
        try:
            os.rename(source, self._path(job_after))
        except FileNotFoundError:
            raise JobError(
                f"job {job.id} is no longer {job.state} (lost ownership)"
            ) from None
        self._write(job_after)
        self._drop_heartbeat(job_after.id)
        METRICS.count("jobs.retried")
        return job_after

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or coalesced job (running work is not torn
        down — cancel the queue entry before a worker claims it)."""
        job = self.get(job_id)
        if job.state not in (QUEUED, COALESCED):
            raise JobError(
                f"only queued/coalesced jobs can be cancelled; "
                f"{job_id} is {job.state}"
            )
        return self.transition(job, CANCELLED, error="cancelled")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        for name in _DIR_NAMES:
            path = self.root / name / f"{job_id}.json"
            try:
                return Job.from_json(path.read_text())
            except FileNotFoundError:
                continue
        raise JobError(f"no job {job_id!r} under {self.root}")

    def resolve(self, job: Job) -> Job:
        """Follow a coalesced job to the primary doing its work.

        A coalesced job whose primary vanished (e.g. its record was
        pruned) is reported as-is; callers treat that as failed.
        """
        seen = set()
        while job.state == COALESCED and job.coalesced_into:
            if job.id in seen:  # defensive: cyclic records
                break
            seen.add(job.id)
            try:
                job = self.get(job.coalesced_into)
            except JobError:
                break
        return job

    def jobs(self, states: Iterable[str] | None = None) -> List[Job]:
        """All job records, oldest first (optionally filtered by state)."""
        wanted = set(states) if states is not None else None
        records = [
            job
            for name in _DIR_NAMES
            for job in self._read_dir(name)
            if wanted is None or job.state in wanted
        ]
        records.sort(key=lambda j: (j.submitted_at, j.id))
        return records

    def idle(self) -> bool:
        """True when no job is queued, claimed or running."""
        return not any(
            self._read_dir(name) for name in ("queued", "claimed")
        )

    def stats(self) -> Dict[str, Any]:
        """Service totals derived from the records (cross-process)."""
        jobs = self.jobs()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": len(jobs),
            "states": by_state,
            "submitted": len(jobs),
            "deduped": by_state.get(COALESCED, 0),
            "retried": sum(job.attempts for job in jobs),
            "failed": by_state.get(FAILED, 0),
            "quarantined": by_state.get(QUARANTINED, 0),
            "done": by_state.get(DONE, 0),
        }

    # ------------------------------------------------------------------
    # Heartbeats (worker liveness + streamed progress)
    # ------------------------------------------------------------------
    def heartbeat_path(self, job_id: str) -> Path:
        return self.root / "heartbeats" / f"{job_id}.json"

    def write_heartbeat(
        self, job: Job, counters: Dict[str, float] | None = None
    ) -> None:
        payload = {
            "job": job.id,
            "pid": job.worker_pid,
            "state": job.state,
            "t": time.time(),
            "counters": dict(counters or {}),
        }
        atomic_write_text(self.heartbeat_path(job.id), json.dumps(payload))

    def read_heartbeat(self, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.heartbeat_path(job_id).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _drop_heartbeat(self, job_id: str) -> None:
        try:
            self.heartbeat_path(job_id).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Cooperative shutdown
    # ------------------------------------------------------------------
    @property
    def stop_path(self) -> Path:
        return self.root / STOP_NAME

    def request_stop(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.stop_path.touch()

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Record IO
    # ------------------------------------------------------------------
    def _write(self, job: Job) -> None:
        atomic_write_text(self._path(job), job.to_json())

    def _read_dir(self, name: str) -> List[Job]:
        directory = self.root / name
        jobs: List[Job] = []
        try:
            entries = sorted(os.listdir(directory))
        except FileNotFoundError:
            return jobs
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            try:
                jobs.append(Job.from_json((directory / entry).read_text()))
            except (FileNotFoundError, JobError):
                continue  # claimed away mid-listing, or torn legacy file
        return jobs
