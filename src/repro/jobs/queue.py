"""Persistent on-disk job queue with atomic claims.

Layout (everything under one service root, safe to ``rm -rf`` when
idle)::

    root/
      queued/<job>.json        eligible for claiming (FIFO by submit time)
      claimed/<job>.json       owned by a worker (states claimed|running)
      done|failed|quarantined|cancelled|coalesced/<job>.json
      heartbeats/<job>.json    worker liveness + progress counters
      keys/<hash>.json         dedup markers (see repro.jobs.dedup)
      corrupt/<job>.json       unparseable records set aside by recover()
      store/                   ArtifactStore the results land in
      logs/                    worker stdout/stderr (orchestrator-spawned)
      submit.lock              FileLock serialising submissions
      STOP                     cooperative shutdown request

The concurrency design is rename-based: *moving a record between state
directories is the transaction*.  ``os.rename`` on one filesystem is
atomic, so when several workers race to claim a job exactly one rename
succeeds and the losers get ``FileNotFoundError`` and move on — no lock
is held while claiming or completing.  The only locked section is
submission, where the dedup check-then-register must be indivisible.

Metric counters (``jobs.submitted`` / ``jobs.deduped`` /
``jobs.retried`` / ``jobs.failed`` / ``jobs.completed`` /
``jobs.quarantined``) land in the process-wide
:data:`~repro.obs.metrics.METRICS` registry of whichever process
performed the transition; :meth:`JobQueue.stats` derives the same
totals from the records themselves, which is what the CLI reports —
record-derived numbers survive process boundaries.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.api.spec import RunSpec
from repro.api.store import ArtifactStore
from repro.exceptions import JobError
from repro.faults import injector as _faults
from repro.jobs.dedup import DedupIndex
from repro.jobs.model import (
    ACTIVE_STATES,
    CANCELLED,
    CLAIMED,
    COALESCED,
    DEFAULT_MAX_RETRIES,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    Job,
    backoff_seconds,
)
from repro.locks import FileLock, atomic_write_text, read_text
from repro.obs.metrics import METRICS

#: state -> directory name.  ``running`` keeps living in ``claimed/``:
#: the claim rename grants ownership, the running flag is bookkeeping.
STATE_DIRS = {
    QUEUED: "queued",
    CLAIMED: "claimed",
    RUNNING: "claimed",
    DONE: "done",
    FAILED: "failed",
    QUARANTINED: "quarantined",
    CANCELLED: "cancelled",
    COALESCED: "coalesced",
}
_DIR_NAMES = ("queued", "claimed", "done", "failed", "quarantined",
              "cancelled", "coalesced")
#: directory name -> canonical state for records found there.  The
#: directory is the transaction, so on recovery the directory wins over
#: whatever state a half-updated payload claims.
_DIR_STATES = {
    "queued": QUEUED,
    "claimed": CLAIMED,
    "done": DONE,
    "failed": FAILED,
    "quarantined": QUARANTINED,
    "cancelled": CANCELLED,
    "coalesced": COALESCED,
}
#: unparseable records are moved here (never deleted) by recovery/fsck.
CORRUPT_DIR = "corrupt"
STOP_NAME = "STOP"


class JobQueue:
    """Directory-backed queue of :class:`~repro.jobs.model.Job`\\ s."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.dedup = DedupIndex(self.root / "keys")

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def ensure_layout(self) -> None:
        for name in _DIR_NAMES + ("heartbeats", "keys", "logs"):
            (self.root / name).mkdir(parents=True, exist_ok=True)

    def _dir(self, state: str) -> Path:
        return self.root / STATE_DIRS[state]

    def _path(self, job: Job) -> Path:
        return self._dir(job.state) / f"{job.id}.json"

    @property
    def store(self) -> ArtifactStore:
        """The artefact store results are fanned out through."""
        return ArtifactStore(self.root / "store")

    # ------------------------------------------------------------------
    # Submission (the one locked section: dedup must be indivisible)
    # ------------------------------------------------------------------
    def submit(
        self, spec: RunSpec, max_retries: int = DEFAULT_MAX_RETRIES
    ) -> Job:
        """Enqueue ``spec``; returns the new job record.

        A submission whose ``spec.key()`` matches a still-active job
        coalesces into it instead of enqueueing (state ``coalesced``,
        counted as ``jobs.deduped``).
        """
        self.ensure_layout()
        job = Job(spec=spec, max_retries=max_retries)
        with FileLock(self.root / "submit.lock"):
            primary = self.dedup.active_primary(job.key, self._is_active)
            if primary is not None:
                job.state = COALESCED
                job.coalesced_into = primary
                self._write(job)
                METRICS.count("jobs.submitted")
                METRICS.count("jobs.deduped")
                return job
            self._write(job)
            self.dedup.register(job.key, job.id)
        METRICS.count("jobs.submitted")
        return job

    def _is_active(self, job_id: str) -> bool:
        try:
            return self.get(job_id).active
        except JobError:
            return False

    # ------------------------------------------------------------------
    # Claiming (lock-free: the rename is the transaction)
    # ------------------------------------------------------------------
    def claim(self, worker_pid: int | None = None) -> Optional[Job]:
        """Atomically take ownership of the oldest eligible queued job.

        Returns ``None`` when nothing is claimable (empty queue, or all
        queued jobs still inside their retry backoff window).
        """
        now = time.time()
        candidates: List[Job] = []
        for job in self._read_dir("queued"):
            if job.not_before <= now:
                candidates.append(job)
        candidates.sort(key=lambda j: (j.submitted_at, j.id))
        pid = os.getpid() if worker_pid is None else worker_pid
        for job in candidates:
            source = self._dir(QUEUED) / f"{job.id}.json"
            target = self._dir(CLAIMED) / f"{job.id}.json"
            _faults.on_replace("queue.claim", target, op_start=True)
            try:
                os.rename(source, target)
            except FileNotFoundError:
                continue  # another worker won this one
            _faults.on_published("queue.claim", target)
            job.state = CLAIMED
            job.claimed_at = time.time()
            job.worker_pid = pid
            job.worker_host = socket.gethostname()
            self._write(job)
            self.write_heartbeat(job)
            return job
        return None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def update(self, job: Job) -> None:
        """Rewrite ``job``'s record in place (no state-directory move)."""
        self._write(job)

    def transition(self, job: Job, state: str, *, error: str | None = None,
                   ) -> Job:
        """Move ``job`` from its current state directory to ``state``'s.

        Raises :class:`JobError` if the job is no longer where the
        caller believes it is — e.g. a worker finishing a job the
        orchestrator already requeued to a new owner.  Terminal
        transitions release the dedup marker and drop the heartbeat.
        """
        source = self._path(job)
        job_after = Job.from_payload(job.to_payload())
        job_after.state = state
        if error is not None:
            job_after.error = error
        if state in (DONE, FAILED, QUARANTINED, CANCELLED):
            job_after.finished_at = time.time()
        target = self._path(job_after)
        if source != target:
            _faults.on_replace("queue.transition", target, op_start=True)
            try:
                os.rename(source, target)
            except FileNotFoundError:
                raise JobError(
                    f"job {job.id} is no longer {job.state} (lost ownership)"
                ) from None
            _faults.on_published("queue.transition", target)
        self._write(job_after)
        if job_after.terminal:
            self.dedup.release(job_after.key, job_after.id)
            self._drop_heartbeat(job_after.id)
        return job_after

    def requeue(self, job: Job, reason: str) -> Job:
        """Return a claimed/running job to the queue with backoff.

        Used by the orchestrator's dead-worker sweep.  After
        ``max_retries`` requeues the job is quarantined instead
        (poison-job protection).  Counts ``jobs.retried`` or
        ``jobs.quarantined``.
        """
        if job.attempts + 1 > job.max_retries:
            quarantined = self.transition(job, QUARANTINED, error=reason)
            METRICS.count("jobs.quarantined")
            return quarantined
        source = self._path(job)
        job_after = Job.from_payload(job.to_payload())
        job_after.attempts += 1
        job_after.state = QUEUED
        job_after.claimed_at = None
        job_after.worker_pid = None
        job_after.worker_host = None
        job_after.error = reason
        job_after.not_before = time.time() + backoff_seconds(
            job_after.attempts, job_id=job_after.id
        )
        target = self._path(job_after)
        _faults.on_replace("queue.requeue", target, op_start=True)
        try:
            os.rename(source, target)
        except FileNotFoundError:
            raise JobError(
                f"job {job.id} is no longer {job.state} (lost ownership)"
            ) from None
        _faults.on_published("queue.requeue", target)
        self._write(job_after)
        self._drop_heartbeat(job_after.id)
        METRICS.count("jobs.retried")
        return job_after

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or coalesced job (running work is not torn
        down — cancel the queue entry before a worker claims it)."""
        job = self.get(job_id)
        if job.state not in (QUEUED, COALESCED):
            raise JobError(
                f"only queued/coalesced jobs can be cancelled; "
                f"{job_id} is {job.state}"
            )
        return self.transition(job, CANCELLED, error="cancelled")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        for name in _DIR_NAMES:
            path = self.root / name / f"{job_id}.json"
            try:
                return Job.from_json(read_text(path, site="queue.record"))
            except FileNotFoundError:
                continue
        raise JobError(f"no job {job_id!r} under {self.root}")

    def resolve(self, job: Job) -> Job:
        """Follow a coalesced job to the primary doing its work.

        A coalesced job whose primary vanished (e.g. its record was
        pruned) is reported as-is; callers treat that as failed.
        """
        seen = set()
        while job.state == COALESCED and job.coalesced_into:
            if job.id in seen:  # defensive: cyclic records
                break
            seen.add(job.id)
            try:
                job = self.get(job.coalesced_into)
            except JobError:
                break
        return job

    def jobs(self, states: Iterable[str] | None = None) -> List[Job]:
        """All job records, oldest first (optionally filtered by state)."""
        wanted = set(states) if states is not None else None
        records = [
            job
            for name in _DIR_NAMES
            for job in self._read_dir(name)
            if wanted is None or job.state in wanted
        ]
        records.sort(key=lambda j: (j.submitted_at, j.id))
        return records

    def idle(self) -> bool:
        """True when no job is queued, claimed or running."""
        return not any(
            self._read_dir(name) for name in ("queued", "claimed")
        )

    def stats(self) -> Dict[str, Any]:
        """Service totals derived from the records (cross-process)."""
        jobs = self.jobs()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": len(jobs),
            "states": by_state,
            "submitted": len(jobs),
            "deduped": by_state.get(COALESCED, 0),
            "retried": sum(job.attempts for job in jobs),
            "failed": by_state.get(FAILED, 0),
            "quarantined": by_state.get(QUARANTINED, 0),
            "done": by_state.get(DONE, 0),
        }

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(
        self, grace_s: float = 5.0, lock_grace_s: float | None = None
    ) -> Dict[str, int]:
        """Repair the on-disk state after crashes; returns what it fixed.

        Run at serve-start (and by ``repro fsck --repair``).  Every
        rename in this queue is atomic, so a crash can only leave four
        kinds of debris, each detected by an invariant and repaired:

        * **Orphaned temp files** — an ``atomic_write_text`` that died
          before its publishing rename.  Reaped.
        * **Half-renamed records** — a state rename published but the
          process died before rewriting the payload, so the record's
          ``state`` field disagrees with its directory.  The directory
          *is* the transaction, so the directory wins: a record found
          in ``claimed/`` claiming to be queued is un-claimed back to
          ``queued/`` (its claimer died mid-claim); a record in a
          terminal directory with an active payload gets its payload
          finalised and its dedup marker/heartbeat released.
        * **Unparseable records** — torn by a pre-atomic writer or
          corrupted by the medium.  Moved to ``corrupt/`` (never
          deleted) so a human can inspect them.
        * **Dangling bookkeeping** — dedup markers whose primary job is
          gone or finished, heartbeats for jobs no longer claimed,
          abandoned submit locks.  Garbage-collected.

        ``grace_s`` protects live activity: only files at least that
        old are touched, so ``recover`` is safe to run while workers
        are active.  ``lock_grace_s`` (default: the FileLock staleness
        threshold) bounds lock-file age separately.
        """
        self.ensure_layout()
        now = time.time()
        report = {
            "orphan_tmps": 0,
            "rehomed": 0,
            "corrupt_records": 0,
            "stale_markers": 0,
            "orphan_heartbeats": 0,
            "stale_locks": 0,
        }

        def _old(path: Path) -> bool:
            try:
                return now - path.stat().st_mtime >= grace_s
            except OSError:
                return False

        # Orphaned temp files (and abandoned lock-break asides).
        sweep_dirs = [self.root] + [
            self.root / name
            for name in _DIR_NAMES + ("heartbeats", "keys")
        ]
        for directory in sweep_dirs:
            for pattern in (".*.tmp", "*.stale.*"):
                for debris in directory.glob(pattern):
                    if debris.is_file() and _old(debris):
                        debris.unlink(missing_ok=True)
                        report["orphan_tmps"] += 1

        # Records: corrupt aside, half-renamed re-homed.
        corrupt_dir = self.root / CORRUPT_DIR
        for name in _DIR_NAMES:
            directory = self.root / name
            for path in sorted(directory.glob("*.json")):
                if not _old(path):
                    continue
                try:
                    job = Job.from_json(path.read_text())
                except (FileNotFoundError, JobError):
                    if path.exists():
                        corrupt_dir.mkdir(parents=True, exist_ok=True)
                        os.replace(path, corrupt_dir / path.name)
                        report["corrupt_records"] += 1
                    continue
                if STATE_DIRS[job.state] != name:
                    if self._rehome(job, name):
                        report["rehomed"] += 1

        # Dedup markers whose primary is gone or inactive.
        for marker, payload in self.dedup.markers():
            if not _old(marker):
                continue
            primary = str(payload.get("job") or "") if payload else ""
            if not primary or not self._is_active(primary):
                marker.unlink(missing_ok=True)
                report["stale_markers"] += 1

        # Heartbeats for jobs that are no longer claimed/running.
        claimed_ids = {
            path.stem for path in (self.root / "claimed").glob("*.json")
        }
        for heartbeat in (self.root / "heartbeats").glob("*.json"):
            if heartbeat.stem not in claimed_ids and _old(heartbeat):
                heartbeat.unlink(missing_ok=True)
                report["orphan_heartbeats"] += 1

        # Abandoned locks (a holder that died keeps everyone waiting
        # until staleness; recovery breaks them eagerly and atomically).
        lock_grace = 30.0 if lock_grace_s is None else lock_grace_s
        for lock_path in (self.root / "submit.lock",
                          self.root / "store" / "manifest.json.lock"):
            if not lock_path.exists():
                continue
            FileLock(lock_path, stale_after=lock_grace)._break_if_stale()
            if not lock_path.exists():
                report["stale_locks"] += 1

        METRICS.count("queue.recovered_orphans", report["orphan_tmps"])
        for key in ("rehomed", "corrupt_records", "stale_markers",
                    "orphan_heartbeats", "stale_locks"):
            if report[key]:
                METRICS.count(f"queue.recovered_{key}", report[key])
        return report

    def _rehome(self, job: Job, dir_name: str) -> bool:
        """Make ``job``'s payload agree with the directory it lives in."""
        path = self.root / dir_name / f"{job.id}.json"
        if dir_name == "claimed" and job.state == QUEUED:
            # Claim rename published, claimer died before the rewrite:
            # nobody owns this job, so un-claim it.
            target = self.root / "queued" / f"{job.id}.json"
            try:
                os.rename(path, target)
            except FileNotFoundError:
                return False
            job.claimed_at = None
            job.worker_pid = None
            job.worker_host = None
            atomic_write_text(target, job.to_json(), site="queue.record")
            return True
        job.state = _DIR_STATES[dir_name]
        if dir_name == "queued":
            job.claimed_at = None
            job.worker_pid = None
            job.worker_host = None
        if job.terminal and job.finished_at is None:
            job.finished_at = time.time()
        try:
            atomic_write_text(path, job.to_json(), site="queue.record")
        except FileNotFoundError:
            return False
        if job.terminal:
            self.dedup.release(job.key, job.id)
            self._drop_heartbeat(job.id)
        return True

    # ------------------------------------------------------------------
    # Heartbeats (worker liveness + streamed progress)
    # ------------------------------------------------------------------
    def heartbeat_path(self, job_id: str) -> Path:
        return self.root / "heartbeats" / f"{job_id}.json"

    def write_heartbeat(
        self, job: Job, counters: Dict[str, float] | None = None
    ) -> None:
        payload = {
            "job": job.id,
            "pid": _faults.heartbeat_pid("queue.heartbeat", job.worker_pid),
            "host": job.worker_host or socket.gethostname(),
            "state": job.state,
            "t": _faults.heartbeat_time("queue.heartbeat", time.time()),
            "counters": dict(counters or {}),
        }
        atomic_write_text(
            self.heartbeat_path(job.id),
            json.dumps(payload),
            site="queue.heartbeat",
        )

    def read_heartbeat(self, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(
                read_text(self.heartbeat_path(job_id), site="queue.heartbeat")
            )
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _drop_heartbeat(self, job_id: str) -> None:
        try:
            self.heartbeat_path(job_id).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Cooperative shutdown
    # ------------------------------------------------------------------
    @property
    def stop_path(self) -> Path:
        return self.root / STOP_NAME

    def request_stop(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.stop_path.touch()

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Record IO
    # ------------------------------------------------------------------
    def _write(self, job: Job) -> None:
        atomic_write_text(self._path(job), job.to_json(), site="queue.record")

    def _read_dir(self, name: str) -> List[Job]:
        directory = self.root / name
        jobs: List[Job] = []
        try:
            entries = sorted(os.listdir(directory))
        except FileNotFoundError:
            return jobs
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            try:
                jobs.append(
                    Job.from_json(
                        read_text(directory / entry, site="queue.record")
                    )
                )
            except (FileNotFoundError, JobError):
                continue  # claimed away mid-listing, or torn legacy file
        return jobs
