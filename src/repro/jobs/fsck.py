"""Service-wide integrity checking: ``repro fsck [--repair]``.

One pass over every persistent layer a service root owns — queue state
directories, dedup markers, heartbeats, locks, the artefact store, and
optionally an engine cache directory — verifying the invariants that
DESIGN.md section 11 promises and the chaos suite enforces:

* every record's ``state`` field agrees with the directory it lives in
  (the directory is the rename-transaction's truth);
* every record parses;
* no orphaned temp files or abandoned lock-break debris;
* every dedup marker points at an existing, still-active job;
* every heartbeat belongs to a claimed/running job;
* no lock file is older than the staleness threshold;
* every manifest entry names an existing artefact whose bytes match
  its recorded sha256, and every artefact file is indexed;
* every cache entry's bytes match its sidecar checksum.

Read-only by default: findings are reported, nothing is touched.  With
``repair=True`` the findings are fixed by the same code the hot paths
use — :meth:`~repro.jobs.queue.JobQueue.recover`,
:meth:`~repro.api.store.ArtifactStore.verify` and
:meth:`~repro.engine.cache.ResultCache.verify` — then re-checked, so a
repairing fsck reports whether the root actually came back clean.

Counted in the obs registry: ``fsck.findings`` and ``fsck.repairs``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exceptions import JobError
from repro.jobs.model import Job
from repro.jobs.queue import _DIR_NAMES, STATE_DIRS, JobQueue
from repro.obs.metrics import METRICS

#: Locks and debris older than this are considered abandoned.
DEFAULT_LOCK_STALE_S = 30.0


def queue_findings(
    queue: JobQueue,
    grace_s: float = 5.0,
    lock_stale_s: float = DEFAULT_LOCK_STALE_S,
) -> List[str]:
    """Read-only invariant check over one queue root.

    ``grace_s`` ignores files younger than that age, so an fsck racing
    live workers does not report in-flight writes as debris.
    """
    findings: List[str] = []
    now = time.time()

    def _old(path: Path) -> bool:
        try:
            return now - path.stat().st_mtime >= grace_s
        except OSError:
            return False

    sweep_dirs = [queue.root] + [
        queue.root / name for name in _DIR_NAMES + ("heartbeats", "keys")
    ]
    for directory in sweep_dirs:
        for pattern in (".*.tmp", "*.stale.*"):
            for debris in directory.glob(pattern):
                if debris.is_file() and _old(debris):
                    findings.append(
                        f"queue: orphan temp file "
                        f"{debris.relative_to(queue.root)}"
                    )

    for name in _DIR_NAMES:
        for path in sorted((queue.root / name).glob("*.json")):
            if not _old(path):
                continue
            try:
                job = Job.from_json(path.read_text())
            except (FileNotFoundError, JobError):
                if path.exists():
                    findings.append(f"queue: unparseable record {name}/{path.name}")
                continue
            if STATE_DIRS[job.state] != name:
                findings.append(
                    f"queue: record {path.name} in {name}/ claims state "
                    f"{job.state!r}"
                )

    for marker, payload in queue.dedup.markers():
        if not _old(marker):
            continue
        primary = str(payload.get("job") or "") if payload else ""
        if not primary:
            findings.append(f"queue: unparseable dedup marker {marker.name}")
        elif not queue._is_active(primary):
            findings.append(
                f"queue: dedup marker {marker.name} points at inactive "
                f"job {primary}"
            )

    claimed_ids = {p.stem for p in (queue.root / "claimed").glob("*.json")}
    for heartbeat in (queue.root / "heartbeats").glob("*.json"):
        if heartbeat.stem not in claimed_ids and _old(heartbeat):
            findings.append(
                f"queue: orphan heartbeat {heartbeat.name} "
                f"(job not claimed/running)"
            )

    for lock_path in (queue.root / "submit.lock",
                      queue.root / "store" / "manifest.json.lock"):
        try:
            age = now - lock_path.stat().st_mtime
        except OSError:
            continue
        if age >= lock_stale_s:
            findings.append(
                f"queue: stale lock {lock_path.name} (held {age:.1f}s)"
            )

    return findings


def fsck(
    root: str | Path,
    cache_dir: Optional[str | Path] = None,
    repair: bool = False,
    grace_s: float = 5.0,
    lock_stale_s: float = DEFAULT_LOCK_STALE_S,
) -> Dict[str, Any]:
    """Check (and with ``repair`` fix) every persistent layer of ``root``.

    Returns a report dict::

        {"clean": bool, "findings": [...], "repaired": N,
         "queue": {...}, "store": {...}, "cache": {...}?}

    ``clean`` reflects the state *after* any repairs: a repairing fsck
    re-checks and reports residual problems, a read-only fsck reports
    what it saw.
    """
    queue = JobQueue(root)
    report: Dict[str, Any] = {"root": str(root)}
    repaired = 0

    q_findings = queue_findings(
        queue, grace_s=grace_s, lock_stale_s=lock_stale_s
    )
    report["queue"] = {"findings": q_findings}
    if repair and q_findings:
        recovered = queue.recover(grace_s=grace_s, lock_grace_s=lock_stale_s)
        report["queue"]["recovered"] = recovered
        repaired += sum(recovered.values())

    store_report = queue.store.verify(repair=repair)
    report["store"] = store_report
    repaired += store_report["repaired"]

    if cache_dir is not None:
        from repro.engine.cache import ResultCache

        cache_report = ResultCache(cache_dir).verify(
            repair=repair, grace_s=grace_s
        )
        report["cache"] = cache_report
        repaired += cache_report["repaired"]

    findings = list(q_findings) + list(store_report["findings"])
    if "cache" in report:
        findings += list(report["cache"]["findings"])

    if repair and findings:
        residual = queue_findings(
            queue, grace_s=grace_s, lock_stale_s=lock_stale_s
        )
        residual += queue.store.verify(repair=False)["findings"]
        if cache_dir is not None:
            from repro.engine.cache import ResultCache

            residual += ResultCache(cache_dir).verify(
                repair=False, grace_s=grace_s
            )["findings"]
        report["residual"] = residual
        clean = not residual
    else:
        clean = not findings

    report["findings"] = findings
    report["repaired"] = repaired
    report["clean"] = clean
    if findings:
        METRICS.count("fsck.findings", len(findings))
    if repaired:
        METRICS.count("fsck.repairs", repaired)
    return report


__all__ = ["DEFAULT_LOCK_STALE_S", "fsck", "queue_findings"]
