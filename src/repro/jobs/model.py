"""The job record: one submitted :class:`~repro.api.spec.RunSpec` plus
its position in the service's lifecycle state machine.

State machine (DESIGN.md section 10)::

    queued ──claim──▶ claimed ──▶ running ──▶ done
      ▲                  │            │   └──▶ failed        (exec error)
      │                  └────────────┴──▶ requeue           (dead worker)
      └── backoff ◀──────┘   after max_retries ▶ quarantined
    queued ──cancel──▶ cancelled
    submit of an active key ──▶ coalesced (follows its primary)

``queued``/``claimed``/``running`` are *active*; ``done``/``failed``/
``quarantined``/``cancelled`` are *terminal*.  A ``coalesced`` job never
executes: it points at the primary job computing the identical
configuration and reports that job's progress (see
:mod:`repro.jobs.dedup`).

Records are plain JSON files, one per job, living in the state
directory that matches their ``state`` field (``running`` shares the
``claimed/`` directory — the claim rename, not the running flag, is
what grants ownership).  All writes go through
:func:`repro.locks.atomic_write_text`, so a record is never observed
half-written.
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Optional

from repro.api.spec import RunSpec
from repro.exceptions import JobError

JOB_SCHEMA = 1

QUEUED = "queued"
CLAIMED = "claimed"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"
CANCELLED = "cancelled"
COALESCED = "coalesced"

#: States in which a job still owns (or awaits) a computation.
ACTIVE_STATES = frozenset({QUEUED, CLAIMED, RUNNING})
#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, QUARANTINED, CANCELLED})
ALL_STATES = ACTIVE_STATES | TERMINAL_STATES | {COALESCED}

#: Default retry policy: first requeue after ~0.5s, doubling per
#: attempt, never more than BACKOFF_CAP_S between attempts.
DEFAULT_MAX_RETRIES = 3
BACKOFF_BASE_S = 0.5
BACKOFF_CAP_S = 30.0
#: Largest fraction of the capped delay the per-job jitter subtracts.
BACKOFF_JITTER_FRACTION = 0.5


def new_job_id() -> str:
    """A short collision-resistant job id (``j`` + 12 hex chars)."""
    return "j" + uuid.uuid4().hex[:12]


def backoff_seconds(attempt: int, base: float = BACKOFF_BASE_S,
                    cap: float = BACKOFF_CAP_S,
                    job_id: Optional[str] = None) -> float:
    """Capped exponential backoff before retry number ``attempt`` (>= 1).

    With a ``job_id`` the delay is de-synchronised: a dead-worker sweep
    requeues a whole batch at one instant, and identical delays would
    make every retry claim the queue simultaneously (a claim stampede).
    The jitter subtracts up to ``BACKOFF_JITTER_FRACTION`` of the
    capped delay, keyed off ``sha256(job_id:attempt)`` — deterministic
    per (job, attempt), so records and tests stay reproducible, while
    distinct jobs spread over ``[delay/2, delay]``.
    """
    delay = min(cap, base * (2.0 ** max(attempt - 1, 0)))
    if job_id is None:
        return delay
    digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return delay * (1.0 - BACKOFF_JITTER_FRACTION * unit)


@dataclass
class Job:
    """One unit of service work: a spec plus lifecycle bookkeeping."""

    spec: RunSpec
    id: str = field(default_factory=new_job_id)
    state: str = QUEUED
    #: Cached ``spec.key()`` — the dedup/store identity of the
    #: configuration (recomputing it needs the registry; the service
    #: must be able to reason about jobs without importing experiments).
    key: str = ""
    attempts: int = 0
    max_retries: int = DEFAULT_MAX_RETRIES
    submitted_at: float = field(default_factory=time.time)
    claimed_at: Optional[float] = None
    finished_at: Optional[float] = None
    worker_pid: Optional[int] = None
    #: Hostname of the claiming worker — pid liveness checks are only
    #: meaningful on the host that issued the pid (multi-host prep).
    worker_host: Optional[str] = None
    #: Earliest wall-clock time a requeued job may be claimed again.
    not_before: float = 0.0
    error: Optional[str] = None
    #: For ``coalesced`` jobs: the id of the primary computing this key.
    coalesced_into: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.key:
            self.key = self.spec.key()
        if self.state not in ALL_STATES:
            raise JobError(f"unknown job state {self.state!r}")

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def label(self) -> str:
        return f"{self.id} {self.spec.label()} [{self.state}]"

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        payload = asdict(self)
        payload["spec"] = self.spec.to_payload()
        payload["schema"] = JOB_SCHEMA
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Job":
        try:
            data = dict(payload)
            data.pop("schema", None)
            data["spec"] = RunSpec.from_payload(data["spec"])
            return cls(**data)
        except (KeyError, TypeError, ValueError) as error:
            raise JobError(f"malformed job record: {error}") from error

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Job":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise JobError(f"invalid job record JSON: {error}") from error
        return cls.from_payload(payload)
