"""Graph substrate: generators, compact adjacency, spectral toolkit.

The paper's processes run on arbitrary connected undirected graphs.  This
package provides

* :mod:`repro.graphs.generators` — named graph families used throughout the
  paper's discussion (cycle, clique, torus, hypercube, random regular,
  Erdős–Rényi, star, barbell, …) behind a single registry,
* :mod:`repro.graphs.adjacency` — an immutable CSR-style adjacency structure
  optimised for the simulators' inner loops,
* :mod:`repro.graphs.spectral` — the lazy random-walk matrix ``P``, the
  Laplacian ``L``, their second eigenpairs and the stationary distribution
  ``pi`` (Section 4 of the paper),
* :mod:`repro.graphs.properties` — structural predicates and the distance
  classes ``S_0 / S_1 / S_+`` of Definition 5.6.
"""

from repro.graphs.adjacency import Adjacency, collect_content_hashes
from repro.graphs.generators import (
    GRAPH_FAMILIES,
    barbell_graph,
    binary_tree_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    hypercube_graph,
    lollipop_graph,
    make_graph,
    path_graph,
    petersen_graph,
    random_geometric_connected,
    random_regular_graph,
    star_graph,
    torus_graph,
    two_cliques_graph,
)
from repro.graphs.properties import (
    degree_vector,
    distance_classes,
    is_bipartite,
    is_regular,
    isoperimetric_lower_bound,
    require_connected,
    require_regular,
)
from repro.graphs.spectral import (
    eigenvalue_gap,
    laplacian_matrix,
    lazy_walk_matrix,
    second_laplacian_eigenpair,
    second_walk_eigenpair,
    simple_walk_matrix,
    stationary_distribution,
)

__all__ = [
    "Adjacency",
    "GRAPH_FAMILIES",
    "barbell_graph",
    "binary_tree_graph",
    "collect_content_hashes",
    "complete_graph",
    "cycle_graph",
    "degree_vector",
    "distance_classes",
    "eigenvalue_gap",
    "erdos_renyi_graph",
    "hypercube_graph",
    "is_bipartite",
    "is_regular",
    "isoperimetric_lower_bound",
    "laplacian_matrix",
    "lazy_walk_matrix",
    "lollipop_graph",
    "make_graph",
    "path_graph",
    "petersen_graph",
    "random_geometric_connected",
    "random_regular_graph",
    "require_connected",
    "require_regular",
    "second_laplacian_eigenpair",
    "second_walk_eigenpair",
    "simple_walk_matrix",
    "star_graph",
    "stationary_distribution",
    "torus_graph",
    "two_cliques_graph",
]
