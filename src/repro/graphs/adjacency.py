"""Compact CSR-style adjacency used by the simulators' inner loops.

`networkx` graphs are convenient for construction and spectral analysis but
too slow for the per-step neighbour sampling the asynchronous processes
perform millions of times.  :class:`Adjacency` freezes a graph into three
NumPy arrays:

* ``neighbors`` — concatenated sorted neighbour lists,
* ``offsets`` — ``offsets[u]:offsets[u+1]`` slices node ``u``'s neighbours,
* ``degrees`` — per-node degrees.

It also precomputes the directed edge list (both orientations of every
undirected edge) so the EdgeModel can draw a uniform directed edge with a
single integer sample, matching Definition 2.3 exactly.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx
import numpy as np

from repro.exceptions import GraphError, NotConnectedError

#: Active sink for :func:`collect_content_hashes`, or ``None``.
_hash_sink: ContextVar[list | None] = ContextVar("adjacency_hash_sink", default=None)


@contextmanager
def collect_content_hashes() -> Iterator[list]:
    """Record the content hash of every :class:`Adjacency` frozen inside.

    The run API uses this to attach graph provenance to experiment
    results without threading a recorder through every runner: any graph
    a simulator freezes during the ``with`` block lands in the yielded
    list (in construction order, duplicates included).  Re-entrant;
    inner collectors shadow outer ones.
    """
    sink: list = []
    token = _hash_sink.set(sink)
    try:
        yield sink
    finally:
        _hash_sink.reset(token)


@dataclass(frozen=True)
class Adjacency:
    """Immutable adjacency structure of an undirected graph.

    Nodes are always relabelled to ``0..n-1`` in sorted order of the original
    labels; :attr:`labels` keeps the original labels for presentation.
    """

    neighbors: np.ndarray
    offsets: np.ndarray
    degrees: np.ndarray
    edge_tails: np.ndarray
    edge_heads: np.ndarray
    labels: tuple = field(repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: nx.Graph, require_connected: bool = True) -> "Adjacency":
        """Freeze a :class:`networkx.Graph` into an :class:`Adjacency`.

        Raises :class:`NotConnectedError` when ``require_connected`` is set
        and the graph is not connected (the paper's processes only converge
        on connected graphs), and :class:`GraphError` for empty graphs or
        graphs with self-loops (the models sample *neighbours*, which are
        distinct from the sampling node).
        """
        n = graph.number_of_nodes()
        if n == 0:
            raise GraphError("graph has no nodes")
        if any(u == v for u, v in nx.selfloop_edges(graph)):
            raise GraphError("graph must not contain self-loops")
        if require_connected and not nx.is_connected(graph):
            raise NotConnectedError(
                "graph must be connected for the averaging processes to converge"
            )

        try:
            labels = tuple(sorted(graph.nodes()))
        except TypeError:  # mixed label types: fall back to a stable repr order
            labels = tuple(sorted(graph.nodes(), key=_label_sort_key))
        index = {label: i for i, label in enumerate(labels)}

        degrees = np.zeros(n, dtype=np.int64)
        for label in labels:
            degrees[index[label]] = graph.degree(label)

        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        neighbors = np.empty(int(offsets[-1]), dtype=np.int64)
        cursor = offsets[:-1].copy()
        for label in labels:
            u = index[label]
            adjacent = sorted(index[w] for w in graph.neighbors(label))
            neighbors[cursor[u] : cursor[u] + len(adjacent)] = adjacent

        tails = []
        heads = []
        for label_u, label_v in graph.edges():
            u, v = index[label_u], index[label_v]
            tails.extend((u, v))
            heads.extend((v, u))
        edge_tails = np.asarray(tails, dtype=np.int64)
        edge_heads = np.asarray(heads, dtype=np.int64)

        adjacency = cls(
            neighbors=neighbors,
            offsets=offsets,
            degrees=degrees,
            edge_tails=edge_tails,
            edge_heads=edge_heads,
            labels=labels,
        )
        sink = _hash_sink.get()
        if sink is not None:
            sink.append(adjacency.content_hash())
        return adjacency

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.degrees)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.edge_tails) // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of directed edges, ``2m``."""
        return len(self.edge_tails)

    @property
    def d_min(self) -> int:
        """Minimum degree."""
        return int(self.degrees.min())

    @property
    def d_max(self) -> int:
        """Maximum degree."""
        return int(self.degrees.max())

    @property
    def is_regular(self) -> bool:
        """Whether every node has the same degree."""
        return self.d_min == self.d_max

    @property
    def degree(self) -> int:
        """Common degree of a regular graph.

        Raises :class:`GraphError` for irregular graphs; callers that merely
        want the degree vector should use :attr:`degrees`.
        """
        if not self.is_regular:
            raise GraphError("graph is not regular; use .degrees instead")
        return self.d_min

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def neighbors_of(self, u: int) -> np.ndarray:
        """Sorted neighbour array of node ``u`` (a view, do not mutate)."""
        return self.neighbors[self.offsets[u] : self.offsets[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge (binary search on sorted lists)."""
        row = self.neighbors_of(u)
        pos = int(np.searchsorted(row, v))
        return pos < len(row) and row[pos] == v

    def stationary_pi(self) -> np.ndarray:
        """Random-walk stationary distribution ``pi_u = d_u / 2m`` (Eq. 1)."""
        return self.degrees / float(self.num_directed_edges)

    # ------------------------------------------------------------------
    # Batched access (repro.engine)
    # ------------------------------------------------------------------
    def padded_neighbors(self) -> np.ndarray:
        """Dense ``(n, d_max)`` neighbour table.

        Row ``u`` holds ``u``'s sorted neighbours in its first ``d_u``
        slots; the remaining slots are zero-padding that samplers must
        never index past :attr:`degrees` ``[u]``.  The batch engine's
        dense backend samples neighbours for a whole replica batch with
        one fancy-indexing gather on this table.  Built lazily and
        cached on the (frozen) instance; the returned array is
        read-only.
        """
        cached = self.__dict__.get("_padded")
        if cached is None:
            table = np.zeros((self.n, self.d_max), dtype=np.int64)
            for u in range(self.n):
                start, end = self.offsets[u], self.offsets[u + 1]
                table[u, : end - start] = self.neighbors[start:end]
            table.setflags(write=False)
            cached = table
            object.__setattr__(self, "_padded", cached)
        return cached

    def content_hash(self) -> str:
        """Stable hex digest of the graph structure.

        Keys the engine's on-disk result cache: two adjacencies with the
        same node set and edge set (after relabelling) hash identically.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(np.ascontiguousarray(self.offsets).tobytes())
            digest.update(np.ascontiguousarray(self.neighbors).tobytes())
            cached = digest.hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    def to_networkx(self) -> nx.Graph:
        """Rebuild a :class:`networkx.Graph` on nodes ``0..n-1``."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        mask = self.edge_tails < self.edge_heads
        graph.add_edges_from(
            zip(self.edge_tails[mask].tolist(), self.edge_heads[mask].tolist())
        )
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Adjacency):
            return NotImplemented
        return (
            np.array_equal(self.neighbors, other.neighbors)
            and np.array_equal(self.offsets, other.offsets)
            and self.labels == other.labels
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self.n, self.m, self.labels))


def _label_sort_key(label) -> tuple:
    """Sort key tolerating mixed label types (ints, strings, tuples)."""
    return (str(type(label)), repr(label))
