"""Spectral toolkit: walk matrices, Laplacian, second eigenpairs.

Section 4 of the paper works with the *lazy* random-walk transition matrix
``P`` (``p(i,i) = 1/2``, ``p(i,j) = 1/(2 d_i)`` for edges ``(i,j)``), its
second-largest eigenvalue ``lambda_2(P)`` and eigenvector ``f_2(P)``, the
graph Laplacian ``L = D - A`` with second-smallest eigenvalue
``lambda_2(L)``, and the stationary distribution ``pi_i = d_i / 2m``.

``P`` is not symmetric for irregular graphs, but it is self-adjoint with
respect to the ``pi``-weighted inner product (Eq. 2).  We therefore compute
its spectrum via the similar symmetric matrix
``S = D^{1/2} P D^{-1/2}``, which is numerically robust and guarantees real
eigenvalues; eigenvectors are mapped back and normalised to
``<f, f>_pi = 1`` as the paper's proofs require (Appendix B).
"""

from __future__ import annotations

from typing import Tuple, Union

import networkx as nx
import numpy as np

from repro.graphs.adjacency import Adjacency

GraphLike = Union[nx.Graph, Adjacency]


def _as_networkx(graph: GraphLike) -> nx.Graph:
    if isinstance(graph, Adjacency):
        return graph.to_networkx()
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def adjacency_matrix(graph: GraphLike) -> np.ndarray:
    """Dense adjacency matrix ``A`` with nodes ordered ``0..n-1``."""
    g = _as_networkx(graph)
    return nx.to_numpy_array(g, nodelist=sorted(g.nodes()), dtype=float)


def degree_matrix(graph: GraphLike) -> np.ndarray:
    """Dense diagonal degree matrix ``D``."""
    return np.diag(adjacency_matrix(graph).sum(axis=1))


def laplacian_matrix(graph: GraphLike) -> np.ndarray:
    """Graph Laplacian ``L = D - A`` (symmetric positive semi-definite)."""
    a = adjacency_matrix(graph)
    return np.diag(a.sum(axis=1)) - a


def simple_walk_matrix(graph: GraphLike) -> np.ndarray:
    """Non-lazy walk matrix with ``p(i,j) = 1/d_i`` for each edge ``(i,j)``."""
    a = adjacency_matrix(graph)
    degrees = a.sum(axis=1)
    if np.any(degrees == 0):
        raise ValueError("graph has an isolated node; walk matrix undefined")
    return a / degrees[:, None]


def lazy_walk_matrix(graph: GraphLike) -> np.ndarray:
    """Lazy walk matrix ``P`` of Section 4: ``P = (I + P_simple) / 2``.

    Its eigenvalues lie in ``[0, 1]``, which the paper's Appendix B proofs
    rely on (``1 >= lambda_1 > lambda_2 >= ... >= lambda_n > 0`` for
    connected graphs, up to the boundary case ``lambda_n = 0``).
    """
    n = adjacency_matrix(graph).shape[0]
    return 0.5 * (np.eye(n) + simple_walk_matrix(graph))


def stationary_distribution(graph: GraphLike) -> np.ndarray:
    """Stationary distribution ``pi_i = d_i / 2m`` of the (lazy) walk."""
    a = adjacency_matrix(graph)
    degrees = a.sum(axis=1)
    return degrees / degrees.sum()


def _pi_symmetrised_spectrum(p: np.ndarray, pi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Eigen-decomposition of ``P`` via the similar symmetric matrix.

    Returns eigenvalues in descending order and eigenvectors (columns)
    normalised so that ``<f_i, f_j>_pi = delta_ij``.
    """
    sqrt_pi = np.sqrt(pi)
    symmetric = (sqrt_pi[:, None] * p) / sqrt_pi[None, :]
    # Enforce exact symmetry to shield eigh from rounding noise.
    symmetric = 0.5 * (symmetric + symmetric.T)
    eigenvalues, vectors = np.linalg.eigh(symmetric)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    vectors = vectors[:, order]
    # Map back: f = D_pi^{-1/2} v ; then <f, f>_pi = v.v = 1 already.
    f = vectors / sqrt_pi[:, None]
    return eigenvalues, f


def walk_spectrum(graph: GraphLike, lazy: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Full spectrum of the (lazy) walk matrix, ``pi``-orthonormal vectors.

    Returns ``(eigenvalues, F)`` with eigenvalues descending and column
    ``F[:, i]`` the eigenvector of ``eigenvalues[i]`` normalised to
    ``<f, f>_pi = 1``.
    """
    p = lazy_walk_matrix(graph) if lazy else simple_walk_matrix(graph)
    pi = stationary_distribution(graph)
    return _pi_symmetrised_spectrum(p, pi)


def second_walk_eigenpair(graph: GraphLike, lazy: bool = True) -> Tuple[float, np.ndarray]:
    """``(lambda_2(P), f_2(P))`` of the (lazy) walk matrix.

    ``f_2`` satisfies ``<f_2, f_2>_pi = 1`` and ``<1, f_2>_pi = 0``; it is
    the worst-case initial state of Proposition B.2.
    """
    eigenvalues, vectors = walk_spectrum(graph, lazy=lazy)
    return float(eigenvalues[1]), vectors[:, 1]


def eigenvalue_gap(graph: GraphLike, lazy: bool = True) -> float:
    """Eigenvalue gap ``1 - lambda_2(P)`` appearing in Theorem 2.2(1)."""
    lambda2, _ = second_walk_eigenpair(graph, lazy=lazy)
    return 1.0 - lambda2


def laplacian_spectrum(graph: GraphLike) -> Tuple[np.ndarray, np.ndarray]:
    """Laplacian eigenvalues ascending and orthonormal eigenvectors."""
    eigenvalues, vectors = np.linalg.eigh(laplacian_matrix(graph))
    return eigenvalues, vectors


def second_laplacian_eigenpair(graph: GraphLike) -> Tuple[float, np.ndarray]:
    """``(lambda_2(L), f_2(L))``: algebraic connectivity and Fiedler vector.

    ``lambda_2(L) > 0`` iff the graph is connected; it drives the
    EdgeModel's convergence-time bound (Theorem 2.4(1)), and ``f_2(L)`` is
    the matching worst-case initial state (Proposition B.2).
    """
    eigenvalues, vectors = laplacian_spectrum(graph)
    return float(eigenvalues[1]), vectors[:, 1]


def second_walk_eigenpair_sparse(
    graph: GraphLike, lazy: bool = True
) -> Tuple[float, np.ndarray]:
    """Sparse ``(lambda_2(P), f_2(P))`` via Lanczos on the symmetrised walk.

    Equivalent to :func:`second_walk_eigenpair` but scales to graphs with
    tens of thousands of nodes (the dense path is O(n^3)).  Used by the
    slow-mode convergence sweeps.
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    g = _as_networkx(graph)
    n = g.number_of_nodes()
    if n < 3:
        # eigsh needs k < n; fall back to the dense path.
        return second_walk_eigenpair(g, lazy=lazy)
    adjacency = nx.to_scipy_sparse_array(g, nodelist=sorted(g.nodes()), format="csr")
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(degrees)
    # S = D^{-1/2} A D^{-1/2}; eigenvalues of P_simple = eigenvalues of S.
    symmetric = sp.diags(inv_sqrt) @ adjacency @ sp.diags(inv_sqrt)
    eigenvalues, vectors = spla.eigsh(symmetric, k=2, which="LA")
    order = np.argsort(eigenvalues)[::-1]
    lambda_simple = float(eigenvalues[order[1]])
    v2 = vectors[:, order[1]]
    pi = degrees / degrees.sum()
    f2 = v2 / np.sqrt(pi)
    # Normalise to <f2, f2>_pi = 1 (eigsh returns unit 2-norm vectors,
    # which already gives this, but renormalise defensively).
    f2 = f2 / math_sqrt(pi_norm_squared(pi, f2))
    lambda2 = (1.0 + lambda_simple) / 2.0 if lazy else lambda_simple
    return lambda2, f2


def math_sqrt(x: float) -> float:
    """Guarded square root for normalisation."""
    if x <= 0:
        raise ValueError("cannot normalise a zero vector")
    return float(np.sqrt(x))


def pi_inner(pi: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
    """``pi``-weighted inner product ``<x, y>_pi = sum_u pi_u x_u y_u`` (Eq. 2)."""
    return float(np.sum(pi * x * y))


def pi_norm_squared(pi: np.ndarray, x: np.ndarray) -> float:
    """``||x||_pi^2 = <x, x>_pi``."""
    return pi_inner(pi, x, x)
