"""Structural graph predicates and the distance classes of Definition 5.6.

The concentration analysis (Section 5.3) partitions the state space
``V x V`` of the two-walk Q-chain by graph distance:

* ``S_0`` — both walks on the same node,
* ``S_1`` — walks on adjacent nodes,
* ``S_+`` — walks at distance two or more.

Lemma 5.7 proves the Q-chain's stationary distribution is constant on each
class.  :func:`distance_classes` computes the partition, and
:func:`isoperimetric_lower_bound` provides the Cheeger-style bound
``lambda_2(L) >= i(G)^2 / (2 d_max)`` used in Corollary E.2(i).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union

import networkx as nx
import numpy as np

from repro.exceptions import NotConnectedError, NotRegularError
from repro.graphs.adjacency import Adjacency

GraphLike = Union[nx.Graph, Adjacency]


def _as_networkx(graph: GraphLike) -> nx.Graph:
    if isinstance(graph, Adjacency):
        return graph.to_networkx()
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def degree_vector(graph: GraphLike) -> np.ndarray:
    """Vector of node degrees indexed by node ``0..n-1``."""
    if isinstance(graph, Adjacency):
        return graph.degrees.copy()
    g = _as_networkx(graph)
    return np.array([g.degree(u) for u in range(g.number_of_nodes())], dtype=np.int64)


def is_regular(graph: GraphLike) -> bool:
    """Whether every node has the same degree."""
    degrees = degree_vector(graph)
    return bool(degrees.min() == degrees.max())


def is_bipartite(graph: GraphLike) -> bool:
    """Whether the graph is two-colourable (no odd cycle).

    Bipartiteness is the structural obstruction the synchronous-coupling
    analyses hit at ``alpha = 0`` (a parity invariant on the product
    chain), which is why the dual samplers refuse ``alpha == 0`` on
    bipartite graphs — see
    :func:`repro.sim.montecarlo.sample_meeting_times`.
    """
    return bool(nx.is_bipartite(_as_networkx(graph)))


def require_connected(graph: GraphLike) -> None:
    """Raise :class:`NotConnectedError` unless ``graph`` is connected."""
    g = _as_networkx(graph)
    if g.number_of_nodes() == 0 or not nx.is_connected(g):
        raise NotConnectedError("graph must be connected")


def require_regular(graph: GraphLike, context: str = "") -> int:
    """Return the common degree, raising :class:`NotRegularError` otherwise.

    ``context`` names the result that needs regularity (e.g. "Lemma 5.7")
    so error messages point back at the paper.
    """
    degrees = degree_vector(graph)
    if degrees.min() != degrees.max():
        suffix = f" ({context})" if context else ""
        raise NotRegularError(f"a regular graph is required{suffix}")
    return int(degrees[0])


@dataclass(frozen=True)
class DistanceClasses:
    """Partition of ``V x V`` into ``S_0``, ``S_1`` and ``S_+`` (Def. 5.6).

    ``s0``, ``s1`` and ``s_plus`` are arrays of ``(u, v)`` pairs; counts are
    exposed for the normalisation identity Eq. (56):
    ``1 = n mu_0 + 2|E| mu_1 + (n^2 - 2|E| - n) mu_+``.
    """

    s0: np.ndarray
    s1: np.ndarray
    s_plus: np.ndarray

    @property
    def counts(self) -> tuple[int, int, int]:
        """``(|S_0|, |S_1|, |S_+|)``; sums to ``n^2``."""
        return (len(self.s0), len(self.s1), len(self.s_plus))

    def class_of(self) -> np.ndarray:
        """Dense ``n x n`` matrix with entry 0, 1 or 2 for the class of (u, v)."""
        n = int(max(self.s0[:, 0].max(), self.s1.max() if len(self.s1) else 0) + 1)
        matrix = np.full((n, n), 2, dtype=np.int8)
        matrix[self.s0[:, 0], self.s0[:, 1]] = 0
        if len(self.s1):
            matrix[self.s1[:, 0], self.s1[:, 1]] = 1
        return matrix


def distance_classes(graph: GraphLike) -> DistanceClasses:
    """Compute the Definition 5.6 partition of ``V x V``.

    ``S_1`` is exactly the set of directed edges ``E^+`` of Proposition 5.8;
    ``S_+`` collects every ordered pair at distance >= 2.
    """
    g = _as_networkx(graph)
    n = g.number_of_nodes()
    s0 = np.array([(u, u) for u in range(n)], dtype=np.int64)
    s1 = np.array(
        [(u, v) for u, v in g.edges()] + [(v, u) for u, v in g.edges()],
        dtype=np.int64,
    ).reshape(-1, 2)
    adjacent = {(int(u), int(v)) for u, v in s1}
    s_plus = np.array(
        [
            (u, v)
            for u, v in itertools.product(range(n), repeat=2)
            if u != v and (u, v) not in adjacent
        ],
        dtype=np.int64,
    ).reshape(-1, 2)
    return DistanceClasses(s0=s0, s1=s1, s_plus=s_plus)


def common_neighbor_counts(graph: GraphLike) -> np.ndarray:
    """Matrix ``c(u, v)`` of common-neighbour counts (``A^2`` off-diagonal).

    Lemma 5.7's proof tracks how ``c(u, v)`` cancels from the stationarity
    equations; the experiments use this to exercise graphs with widely
    varying ``c`` (cliques vs cycles vs Petersen).
    """
    g = _as_networkx(graph)
    a = nx.to_numpy_array(g, nodelist=sorted(g.nodes()), dtype=float)
    return (a @ a).astype(np.int64)


def isoperimetric_number_exact(graph: GraphLike, max_n: int = 16) -> float:
    """Exact isoperimetric number ``i(G) = min |E(S, ~S)| / |S|``.

    Enumerates all subsets with ``|S| <= n/2``; exponential, so guarded by
    ``max_n``.  Used only in tests to validate
    :func:`isoperimetric_lower_bound`.
    """
    g = _as_networkx(graph)
    n = g.number_of_nodes()
    if n > max_n:
        raise ValueError(f"exact isoperimetric number limited to n <= {max_n}")
    nodes = list(range(n))
    best = float("inf")
    for size in range(1, n // 2 + 1):
        for subset in itertools.combinations(nodes, size):
            boundary = nx.cut_size(g, subset)
            best = min(best, boundary / size)
    return best


def isoperimetric_lower_bound(graph: GraphLike, isoperimetric: float | None = None) -> float:
    """Cheeger-style bound ``lambda_2(L) >= i(G)^2 / (2 d_max)`` (Cor. E.2(i)).

    When ``isoperimetric`` is not given, a spectral *upper* estimate
    ``i(G) <= lambda_2(L) / ... `` is unavailable cheaply, so we fall back
    to the sweep-cut heuristic on the Fiedler vector, which yields a valid
    cut and therefore an upper bound on ``i(G)`` — making the returned
    quantity a heuristic, as documented in EXPERIMENTS.md.
    """
    g = _as_networkx(graph)
    d_max = max(dict(g.degree()).values())
    if isoperimetric is None:
        isoperimetric = _sweep_cut_isoperimetric(g)
    return isoperimetric**2 / (2.0 * d_max)


def _sweep_cut_isoperimetric(g: nx.Graph) -> float:
    """Upper bound on ``i(G)`` from the best sweep cut of the Fiedler vector."""
    from repro.graphs.spectral import second_laplacian_eigenpair

    _, fiedler = second_laplacian_eigenpair(g)
    order = np.argsort(fiedler)
    n = g.number_of_nodes()
    best = float("inf")
    prefix: set[int] = set()
    for i in range(n // 2):
        prefix.add(int(order[i]))
        boundary = nx.cut_size(g, prefix)
        best = min(best, boundary / len(prefix))
    return best
