"""Named graph families used by the paper's discussion and our experiments.

Every generator returns a connected :class:`networkx.Graph` with nodes
relabelled to ``0..n-1``.  The families mirror the graphs the paper singles
out: the clique and the cycle (whose ``Var(F)`` the paper proves to be
asymptotically identical), regular graphs in general (Theorem 2.2(2)),
the star (worst-case ``rho`` in [18]), expanders, and irregular families
for the degree-weighted martingale of Lemma 4.1.

:data:`GRAPH_FAMILIES` maps a family name to its generator so experiment
sweeps can be configured with plain strings, and :func:`make_graph`
dispatches through it.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import networkx as nx
import numpy as np

from repro.exceptions import GraphError, ParameterError
from repro.rng import SeedLike, as_generator


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes of ``graph`` to ``0..n-1`` preserving adjacency."""
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def _require_at_least(n: int, minimum: int, family: str) -> None:
    if n < minimum:
        raise ParameterError(f"{family} graph requires n >= {minimum}, got {n}")


def cycle_graph(n: int) -> nx.Graph:
    """Cycle ``C_n`` — the paper's running example of a poorly mixing graph."""
    _require_at_least(n, 3, "cycle")
    return nx.cycle_graph(n)


def path_graph(n: int) -> nx.Graph:
    """Path ``P_n`` (irregular: endpoints have degree 1)."""
    _require_at_least(n, 2, "path")
    return nx.path_graph(n)


def complete_graph(n: int) -> nx.Graph:
    """Clique ``K_n`` — the paper's running example of a well mixing graph."""
    _require_at_least(n, 2, "complete")
    return nx.complete_graph(n)


def star_graph(n: int) -> nx.Graph:
    """Star on ``n`` nodes (hub + ``n-1`` leaves); maximally irregular."""
    _require_at_least(n, 2, "star")
    return nx.star_graph(n - 1)


def torus_graph(n: int) -> nx.Graph:
    """4-regular 2-D torus on an ``r x r`` grid where ``r = round(sqrt(n))``.

    ``n`` must be a perfect square with ``r >= 3`` so that wrap-around edges
    do not create multi-edges.
    """
    r = int(round(math.sqrt(n)))
    if r * r != n:
        raise ParameterError(f"torus requires a perfect-square n, got {n}")
    if r < 3:
        raise ParameterError(f"torus requires n >= 9, got {n}")
    return _relabel(nx.grid_2d_graph(r, r, periodic=True))


def hypercube_graph(n: int) -> nx.Graph:
    """Hypercube ``Q_log2(n)``; ``n`` must be a power of two, ``n >= 4``."""
    dim = int(round(math.log2(n)))
    if 2**dim != n or dim < 2:
        raise ParameterError(f"hypercube requires n = 2^dim >= 4, got {n}")
    return _relabel(nx.hypercube_graph(dim))


def random_regular_graph(n: int, d: int, seed: SeedLike = None) -> nx.Graph:
    """Connected random ``d``-regular graph (an expander w.h.p. for d >= 3).

    Retries the configuration model until the sample is connected; for
    ``d >= 3`` this succeeds almost immediately.
    """
    if d < 2:
        raise ParameterError(f"random regular graph requires d >= 2, got {d}")
    if n <= d:
        raise ParameterError(f"random regular graph requires n > d, got n={n}, d={d}")
    if (n * d) % 2 != 0:
        raise ParameterError(f"n*d must be even for a d-regular graph, got n={n}, d={d}")
    rng = as_generator(seed)
    for _ in range(100):
        graph = nx.random_regular_graph(d, n, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return _relabel(graph)
    raise GraphError(
        f"failed to sample a connected {d}-regular graph on {n} nodes in 100 tries"
    )


def erdos_renyi_graph(n: int, p: float | None = None, seed: SeedLike = None) -> nx.Graph:
    """Connected Erdős–Rényi ``G(n, p)``; default ``p`` is ``3 ln n / n``.

    The default is comfortably above the ``ln n / n`` connectivity threshold,
    so rejection sampling for connectivity terminates quickly.
    """
    _require_at_least(n, 2, "erdos_renyi")
    if p is None:
        p = min(1.0, 3.0 * math.log(max(n, 2)) / n)
    if not 0.0 < p <= 1.0:
        raise ParameterError(f"edge probability must be in (0, 1], got {p}")
    rng = as_generator(seed)
    for _ in range(200):
        graph = nx.gnp_random_graph(n, p, seed=int(rng.integers(2**31)))
        if graph.number_of_nodes() and nx.is_connected(graph):
            return _relabel(graph)
    raise GraphError(f"failed to sample a connected G({n}, {p}) in 200 tries")


def barbell_graph(n: int) -> nx.Graph:
    """Barbell: two cliques of size ``n // 2`` joined by an edge (via a path).

    A classic small-conductance graph: ``lambda_2(L)`` is tiny, making both
    models' convergence-time bounds large.  ``n`` must be even and >= 6.
    """
    if n % 2 != 0 or n < 6:
        raise ParameterError(f"barbell requires even n >= 6, got {n}")
    return _relabel(nx.barbell_graph(n // 2, 0))


def lollipop_graph(n: int) -> nx.Graph:
    """Lollipop: clique of size ``ceil(n/2)`` with a path of the rest."""
    _require_at_least(n, 5, "lollipop")
    clique = (n + 1) // 2
    return _relabel(nx.lollipop_graph(clique, n - clique))


def two_cliques_graph(n: int, bridges: int = 1) -> nx.Graph:
    """Two cliques of size ``n // 2`` joined by ``bridges`` disjoint edges."""
    if n % 2 != 0 or n < 6:
        raise ParameterError(f"two_cliques requires even n >= 6, got {n}")
    half = n // 2
    if not 1 <= bridges <= half:
        raise ParameterError(f"bridges must be in [1, {half}], got {bridges}")
    graph = nx.disjoint_union(nx.complete_graph(half), nx.complete_graph(half))
    for i in range(bridges):
        graph.add_edge(i, half + i)
    return _relabel(graph)


def binary_tree_graph(n: int) -> nx.Graph:
    """Balanced binary tree truncated to ``n`` nodes (irregular, diameter ~log n)."""
    _require_at_least(n, 3, "binary_tree")
    height = max(1, math.ceil(math.log2(n + 1)) - 1)
    tree = nx.balanced_tree(2, height)
    nodes = sorted(tree.nodes())[:n]
    return _relabel(tree.subgraph(nodes).copy())


def petersen_graph(n: int = 10) -> nx.Graph:
    """The Petersen graph (3-regular, 10 nodes, girth 5) — a Q-chain test case."""
    if n != 10:
        raise ParameterError("the Petersen graph has exactly 10 nodes")
    return _relabel(nx.petersen_graph())


def random_geometric_connected(
    n: int, radius: float | None = None, seed: SeedLike = None
) -> nx.Graph:
    """Connected random geometric graph in the unit square (sensor networks).

    The default radius ``sqrt(3 ln n / (pi n))`` sits above the connectivity
    threshold.  Used by the sensor-network example, mirroring the gossip
    literature's standard testbed (Boyd et al. [14]).
    """
    _require_at_least(n, 2, "random_geometric")
    if radius is None:
        radius = math.sqrt(3.0 * math.log(max(n, 2)) / (math.pi * n))
    if radius <= 0:
        raise ParameterError(f"radius must be positive, got {radius}")
    rng = as_generator(seed)
    for _ in range(200):
        graph = nx.random_geometric_graph(n, radius, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return _relabel(graph)
    raise GraphError(
        f"failed to sample a connected geometric graph (n={n}, r={radius}) in 200 tries"
    )


#: Registry of graph families addressable by name in experiment configs.
GRAPH_FAMILIES: Dict[str, Callable[..., nx.Graph]] = {
    "cycle": cycle_graph,
    "path": path_graph,
    "complete": complete_graph,
    "star": star_graph,
    "torus": torus_graph,
    "hypercube": hypercube_graph,
    "random_regular": random_regular_graph,
    "erdos_renyi": erdos_renyi_graph,
    "barbell": barbell_graph,
    "lollipop": lollipop_graph,
    "two_cliques": two_cliques_graph,
    "binary_tree": binary_tree_graph,
    "petersen": petersen_graph,
    "random_geometric": random_geometric_connected,
}


def make_graph(family: str, n: int, **kwargs) -> nx.Graph:
    """Build a named graph family; see :data:`GRAPH_FAMILIES` for names."""
    try:
        generator = GRAPH_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(GRAPH_FAMILIES))
        raise ParameterError(f"unknown graph family {family!r}; known: {known}") from None
    return generator(n, **kwargs)
