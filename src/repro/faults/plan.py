"""Deterministic fault plans: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is a serialisable list of :class:`FaultRule`\\ s,
each naming an **injection site** (a seam in the persistence stack,
e.g. ``"queue.claim"`` or ``"store.manifest"``), the 1-based **op
index** of the IO operation at that site, and a fault **kind**.  The
plan is installed process-wide (:mod:`repro.faults.injector`) and the
instrumented seams consult it on every operation; with no plan
installed every seam is a single ``None`` check, mirroring the obs
tracer's disabled-overhead contract.

Fault kinds and the seam phase they fire at:

===============  ====================================================
``crash_before``  :class:`InjectedCrash` immediately **before** the
                  publishing rename — a temp file may be orphaned, the
                  target is untouched.
``crash_after``   :class:`InjectedCrash` immediately **after** the
                  publish — the new content is visible but none of the
                  caller's follow-up bookkeeping ran.  On read sites:
                  crash after the read; on lock sites: die *holding*
                  the lock.
``torn``          The written payload is truncated to ``arg`` (default
                  0.5) of its length **and** the process crashes after
                  the publish — a torn write as a crashing filesystem
                  would leave it.
``enospc``        ``OSError(ENOSPC)`` out of the write — disk full.
``corrupt``       The payload read back is bit-flipped at a
                  plan-deterministic position (silent media
                  corruption).
``stale_clock``   Heartbeat timestamps are skewed ``arg`` (default
                  3600) seconds into the past on **every** write.
``pid_reuse``     Heartbeat/claim pids are replaced by a live pid
                  (default: this process's parent) on **every** write
                  — the pid-liveness check must not be fooled.
===============  ====================================================

``stale_clock``/``pid_reuse`` are *filters* (they apply to every
matching operation; ``op`` is ignored), all other kinds are
*one-shot* (they fire at exactly the ``op``-th operation of their
site).  After any crash kind fires the plan is **dead**: every further
seam call raises :class:`InjectedCrash` too, because a crashed process
performs no more IO — this keeps in-process crash simulation coherent
(heartbeat threads stop beating, locked sections never release).

A plan also *observes*: :attr:`FaultPlan.observed` counts the ops seen
per site (the coverage map the chaos harness enumerates crash plans
from) and :attr:`FaultPlan.injected` logs every fired fault.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.metrics import METRICS

PLAN_SCHEMA = 1

#: Kinds that end the simulated process.
CRASH_KINDS = frozenset({"crash_before", "crash_after", "torn"})
#: Kinds that apply to every matching op (``op`` ignored).
FILTER_KINDS = frozenset({"stale_clock", "pid_reuse"})
ALL_KINDS = CRASH_KINDS | FILTER_KINDS | {"enospc", "corrupt"}

#: Injection-log entries kept per plan (filters would otherwise spam).
_MAX_LOG = 1000


class InjectedCrash(BaseException):
    """A simulated process death at an injection point.

    Deliberately a :class:`BaseException`: production code catching
    ``Exception`` (the worker's failure split, the store's cleanup
    paths) must treat an injected crash as death, not as a handleable
    error — exactly as a real ``SIGKILL`` would not be handleable.
    """

    def __init__(self, site: str, op: int, kind: str) -> None:
        super().__init__(f"injected {kind} at {site}#{op}")
        self.site = site
        self.op = op
        self.kind = kind


@dataclass(frozen=True)
class FaultRule:
    """One fault: ``kind`` at the ``op``-th operation of ``site``."""

    site: str
    op: int
    kind: str
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(sorted(ALL_KINDS))}"
            )


class FaultPlan:
    """Seeded, serialisable schedule of injected faults.

    Thread-safe: op counting takes an internal lock (heartbeat threads
    write concurrently with the main thread), rule lists are frozen at
    construction.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        seed: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self.name = name or (
            "+".join(f"{r.site}#{r.op}:{r.kind}" for r in self.rules)
            or "observe"
        )
        self.observed: Dict[str, int] = {}
        self.injected: List[Dict[str, Any]] = []
        self.crashed = False
        self._armed: Dict[str, Tuple[int, Optional[FaultRule]]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Rule lookup
    # ------------------------------------------------------------------
    def _match(self, site: str, op: int) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.site == site and rule.op == op:
                if rule.kind not in FILTER_KINDS:
                    return rule
        return None

    def _filter(self, kind: str, site: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind == kind and rule.site == site:
                return rule
        return None

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _log(self, site: str, op: int, kind: str, phase: str) -> None:
        METRICS.count("faults.injected")
        with self._lock:
            if len(self.injected) < _MAX_LOG:
                self.injected.append(
                    {"site": site, "op": op, "kind": kind, "phase": phase}
                )

    def _crash(self, site: str, op: int, kind: str, phase: str) -> None:
        self.crashed = True
        self._log(site, op, kind, phase)
        raise InjectedCrash(site, op, kind)

    def _check_dead(self, site: str) -> None:
        if self.crashed:
            raise InjectedCrash(site, 0, "dead")

    def _count(self, site: str) -> int:
        with self._lock:
            self.observed[site] = self.observed.get(site, 0) + 1
            return self.observed[site]

    # ------------------------------------------------------------------
    # Seam phases (called by repro.faults.injector)
    # ------------------------------------------------------------------
    def begin_write(self, site: str, path, data):
        """First phase of a write-op: counts it; enospc/torn fire here."""
        self._check_dead(site)
        op = self._count(site)
        rule = self._match(site, op)
        self._armed[site] = (op, rule)
        if rule is None:
            return data
        if rule.kind == "enospc":
            import errno
            import os as _os

            self._log(site, op, rule.kind, "write")
            raise OSError(
                errno.ENOSPC,
                "injected fault: no space left on device",
                _os.fspath(path),
            )
        if rule.kind == "torn":
            fraction = 0.5 if rule.arg is None else float(rule.arg)
            keep = max(0, int(len(data) * fraction))
            self._log(site, op, rule.kind, "write")
            return data[:keep]
        return data

    def at_replace(self, site: str, path, op_start: bool) -> None:
        """Immediately before the publishing rename.

        ``op_start`` marks bare renames (no write phase): the op is
        counted here instead.
        """
        self._check_dead(site)
        if op_start:
            op = self._count(site)
            self._armed[site] = (op, self._match(site, op))
        op, rule = self._armed.get(site, (self.observed.get(site, 0), None))
        if rule is not None and rule.kind == "crash_before":
            self._crash(site, op, rule.kind, "replace")

    def at_published(self, site: str, path) -> None:
        """Immediately after the publishing rename."""
        self._check_dead(site)
        op, rule = self._armed.pop(site, (self.observed.get(site, 0), None))
        if rule is not None and rule.kind in ("crash_after", "torn"):
            self._crash(site, op, rule.kind, "published")

    def on_read(self, site: str, path, data):
        """A read-back: corruption and read-side crashes fire here."""
        self._check_dead(site)
        op = self._count(site)
        rule = self._match(site, op)
        if rule is None:
            return data
        if rule.kind == "corrupt":
            self._log(site, op, rule.kind, "read")
            return _corrupt(data, rule)
        if rule.kind in ("crash_before", "crash_after"):
            self._crash(site, op, rule.kind, "read")
        return data

    def on_lock(self, site: str, path) -> None:
        """Fires right after a FileLock acquisition (die holding it)."""
        self._check_dead(site)
        op = self._count(site)
        rule = self._match(site, op)
        if rule is not None and rule.kind in ("crash_before", "crash_after"):
            self._crash(site, op, rule.kind, "lock")

    def heartbeat_time(self, site: str, t: float) -> float:
        rule = self._filter("stale_clock", site)
        if rule is None:
            return t
        self._log(site, 0, rule.kind, "filter")
        return t - (3600.0 if rule.arg is None else float(rule.arg))

    def heartbeat_pid(self, site: str, pid: Optional[int]) -> Optional[int]:
        rule = self._filter("pid_reuse", site)
        if rule is None:
            return pid
        import os as _os

        self._log(site, 0, rule.kind, "filter")
        return int(rule.arg) if rule.arg else _os.getppid()

    # ------------------------------------------------------------------
    # Construction and serialisation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        coverage: Mapping[str, int],
        kinds: Iterable[str] = ("crash_before", "crash_after", "torn",
                                "enospc", "corrupt"),
    ) -> "FaultPlan":
        """One seeded single-rule plan drawn from a coverage map.

        ``coverage`` maps site -> op count (from an observing run, see
        :func:`repro.faults.chaos.observe`); the (site, op, kind)
        triple is a deterministic function of ``seed``.
        """
        rng = random.Random(seed)
        sites = sorted(coverage)
        if not sites:
            raise ValueError("cannot draw a fault from empty coverage")
        site = rng.choice(sites)
        op = rng.randint(1, max(1, int(coverage[site])))
        kind = rng.choice(sorted(kinds))
        arg = None
        if kind == "torn":
            arg = round(rng.uniform(0.0, 0.9), 3)
        return cls(
            rules=[FaultRule(site, op, kind, arg)],
            seed=seed,
            name=f"seed{seed}:{site}#{op}:{kind}",
        )

    def to_payload(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "rules": [asdict(rule) for rule in self.rules],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        try:
            rules = [FaultRule(**entry) for entry in payload["rules"]]
            return cls(
                rules=rules,
                seed=payload.get("seed"),
                name=str(payload.get("name", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed fault plan payload: {error}") from error

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_payload(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.name!r}, rules={len(self.rules)})"


def _corrupt(data, rule: FaultRule):
    """Flip one position of ``data``, deterministically per rule."""
    if not data:
        return data
    position = (hash((rule.site, rule.op)) & 0x7FFFFFFF) % len(data)
    if isinstance(data, bytes):
        flipped = bytes([data[position] ^ 0xFF])
        return data[:position] + flipped + data[position + 1:]
    # str: overwrite with a character that breaks JSON wherever it lands
    return data[:position] + "\x00" + data[position + 1:]
