"""Chaos-harness helpers: coverage observation and plan matrices.

The chaos suite runs one *observing* pass of a scenario (no faults,
plan just counts ops per site), then derives plans from the coverage
map: :func:`crash_plans` enumerates a crash at **every** observed
(site, op) so no injection point goes untested, and
:func:`seeded_plans` pads the matrix with deterministic random
single-fault plans up to the requested size.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.faults.plan import FaultPlan, FaultRule
from repro.faults import injector


def observe(scenario: Callable[[], None]) -> Dict[str, int]:
    """Run ``scenario`` under an empty plan; return site -> op count.

    The empty plan injects nothing — it only records which seams fire
    and how often, which is the universe the crash matrix enumerates.
    """
    plan = FaultPlan(name="observe")
    with injector.injected(plan):
        scenario()
    return dict(plan.observed)


def crash_plans(coverage: Mapping[str, int]) -> List[FaultPlan]:
    """One ``crash_before`` and one ``crash_after`` plan per (site, op).

    This is the "crash at every injection point at least once"
    guarantee: every observed operation of every site gets killed on
    both sides of its publish.
    """
    plans: List[FaultPlan] = []
    for site in sorted(coverage):
        for op in range(1, int(coverage[site]) + 1):
            for kind in ("crash_before", "crash_after"):
                plans.append(
                    FaultPlan(
                        rules=[FaultRule(site, op, kind)],
                        name=f"{site}#{op}:{kind}",
                    )
                )
    return plans


def seeded_plans(
    coverage: Mapping[str, int], count: int, seed: int = 0
) -> List[FaultPlan]:
    """``count`` deterministic random single-fault plans over ``coverage``."""
    return [
        FaultPlan.random(seed * 100_003 + i, coverage) for i in range(count)
    ]


__all__ = ["crash_plans", "observe", "seeded_plans"]
