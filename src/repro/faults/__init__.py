"""Deterministic fault injection for the persistence stack.

``repro.faults`` lets tests (and brave operators) install a seeded
:class:`FaultPlan` that makes the low-level IO seams — atomic writes,
publishing renames, read-backs, lock acquisitions — fail in the ways
real storage fails: torn writes, crash on either side of a rename,
silent bit-flips, ``ENOSPC``, stale clocks, and pid reuse.  With no
plan installed every seam is a single ``None`` check (< 2% overhead,
same contract as the obs tracer).

See :mod:`repro.faults.plan` for the fault model,
:mod:`repro.faults.injector` for installation and the seam API, and
:mod:`repro.faults.chaos` for the coverage-driven plan matrices the
chaos suite runs.
"""

from repro.faults.plan import (
    ALL_KINDS,
    CRASH_KINDS,
    FILTER_KINDS,
    FaultPlan,
    FaultRule,
    InjectedCrash,
)
from repro.faults.injector import (
    active,
    crashed,
    injected,
    install,
    uninstall,
)
from repro.faults.chaos import crash_plans, observe, seeded_plans

__all__ = [
    "ALL_KINDS",
    "CRASH_KINDS",
    "FILTER_KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "active",
    "crash_plans",
    "crashed",
    "injected",
    "install",
    "observe",
    "seeded_plans",
    "uninstall",
]
