"""Process-wide fault-plan installation and the IO seams that consult it.

The persistence layers (``repro.locks``, ``repro.jobs.queue``,
``repro.api.store``, ``repro.engine.cache``) route every write,
publishing rename, read-back, and lock acquisition through the
``on_*`` functions below.  With no plan installed each seam is a
single module-global ``None`` check — the same disabled-overhead
contract the obs tracer keeps (< 2%, enforced by
``tests/test_faults.py``).

Install a plan for the duration of a block::

    from repro.faults import FaultPlan, FaultRule, injected

    plan = FaultPlan([FaultRule("queue.claim", 1, "crash_after")])
    with injected(plan):
        ...  # the first queued->claimed rename publishes, then "dies"

Installation is process-global, not thread-local, on purpose: a
worker's heartbeat thread must see the same simulated disk as the
worker's main thread.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.faults.plan import FaultPlan, InjectedCrash

_PLAN: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide (replacing any active plan)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    """Remove the active plan; every seam returns to its no-op path."""
    global _PLAN
    _PLAN = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _PLAN


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: install ``plan``, uninstall on exit."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def crashed() -> bool:
    """True when the active plan has already simulated process death.

    Cleanup code that would not run in a real crash (``finally``
    blocks releasing locks, deleting temp files) checks this to stay
    faithful: a dead process unwinds nothing.
    """
    return _PLAN is not None and _PLAN.crashed


# ----------------------------------------------------------------------
# Seams.  Fast path first in every one of them.
# ----------------------------------------------------------------------

def on_write(site: str, path, data):
    """Start of a write-op; returns the (possibly torn) payload.

    May raise ``OSError(ENOSPC)`` or :class:`InjectedCrash`.
    """
    if _PLAN is None:
        return data
    return _PLAN.begin_write(site, path, data)


def on_replace(site: str, path, op_start: bool = False) -> None:
    """Immediately before a publishing rename.

    ``op_start=True`` marks bare renames (queue state transitions)
    that have no preceding :func:`on_write` phase.
    """
    if _PLAN is None:
        return
    _PLAN.at_replace(site, path, op_start)


def on_published(site: str, path) -> None:
    """Immediately after a publishing rename succeeded."""
    if _PLAN is None:
        return
    _PLAN.at_published(site, path)


def on_read(site: str, path, data):
    """A completed read-back; returns the (possibly corrupted) data."""
    if _PLAN is None:
        return data
    return _PLAN.on_read(site, path, data)


def on_lock(site: str, path) -> None:
    """Right after a ``FileLock`` acquisition (crash kinds die holding it)."""
    if _PLAN is None:
        return
    _PLAN.on_lock(site, path)


def heartbeat_time(site: str, t: float) -> float:
    """Filter a heartbeat timestamp (``stale_clock`` skews it)."""
    if _PLAN is None:
        return t
    return _PLAN.heartbeat_time(site, t)


def heartbeat_pid(site: str, pid: Optional[int]) -> Optional[int]:
    """Filter a recorded pid (``pid_reuse`` substitutes a live one)."""
    if _PLAN is None:
        return pid
    return _PLAN.heartbeat_pid(site, pid)


__all__ = [
    "FaultPlan",
    "InjectedCrash",
    "active",
    "crashed",
    "heartbeat_pid",
    "heartbeat_time",
    "injected",
    "install",
    "on_lock",
    "on_published",
    "on_read",
    "on_replace",
    "on_write",
    "uninstall",
]
