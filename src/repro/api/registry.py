"""Experiment registry: declarative registration of paper artefacts.

Each experiment module declares itself with the :func:`experiment`
decorator: a stable id, the paper artefact it reproduces, a typed
parameter schema, and the ``fast`` / ``full`` scale presets as *data*
(replacing the former ``fast=True`` boolean and per-module ``if``
ladders).  The decorated runner keeps the legacy call convention
``run(fast=True, seed=0, **overrides)`` so existing callers (benchmarks,
notebooks) are unaffected, while the run API executes the underlying
function through :meth:`Experiment.run` with fully resolved parameters.

The registry replaces both the hand-maintained ``EXPERIMENTS`` dict and
the CLI's ``inspect.signature`` sniffing for the ``engine`` kwarg: which
parameters an experiment accepts is now declared, not guessed.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.engine.dynamic import SCHEDULE_KINDS
from repro.engine.kernels import KERNEL_CHOICES
from repro.exceptions import SpecError
from repro.sim.results import ResultTable

#: Sentinel for parameters that every preset must supply.
REQUIRED = object()

#: Names of the scale presets every experiment declares.
PRESETS = ("fast", "full")

_SCALARS = {"int": int, "float": float, "str": str, "bool": bool}
_SEQUENCES = {"ints": int, "floats": float}


@dataclass(frozen=True)
class ParamSpec:
    """Schema of one experiment parameter.

    ``kind`` is a scalar type (``int``, ``float``, ``str``, ``bool``) or
    the strings ``"ints"`` / ``"floats"`` for comma-separable sequences.
    ``default`` is :data:`REQUIRED` when every preset must supply the
    value.  ``choices`` restricts admissible values (e.g. the engine).
    """

    kind: Any
    help: str
    default: Any = REQUIRED
    choices: tuple = ()

    @property
    def kind_name(self) -> str:
        return self.kind if isinstance(self.kind, str) else self.kind.__name__

    def coerce(self, name: str, value: Any) -> Any:
        """Validate ``value`` (coercing CLI/JSON strings) or raise SpecError."""
        try:
            value = self._convert(value)
        except (TypeError, ValueError):
            raise SpecError(
                f"parameter {name!r} expects {self.kind_name}, "
                f"got {value!r}"
            ) from None
        if self.choices and value not in self.choices:
            raise SpecError(
                f"parameter {name!r} must be one of "
                f"{', '.join(map(repr, self.choices))}; got {value!r}"
            )
        return value

    def _convert(self, value: Any) -> Any:
        kind = self.kind_name
        if kind in _SEQUENCES:
            item = _SEQUENCES[kind]
            if isinstance(value, str):
                value = [part for part in value.split(",") if part.strip()]
            if not isinstance(value, (list, tuple)):
                raise ValueError(value)
            return [item(v) for v in value]
        scalar = _SCALARS[kind]
        if scalar is bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "1", "yes", "on"):
                    return True
                if lowered in ("false", "0", "no", "off"):
                    return False
            raise ValueError(value)
        if isinstance(value, bool):  # bool is an int subclass; reject it
            raise ValueError(value)
        if scalar in (int, float) and isinstance(value, str):
            return scalar(value)
        if scalar is float and isinstance(value, int):
            return float(value)
        if not isinstance(value, scalar):
            raise ValueError(value)
        return value


def engine_param(include_exact: bool = False) -> ParamSpec:
    """The shared ``engine`` parameter of the Monte-Carlo experiments.

    Experiments whose quantities have an absorbing-chain analytic
    backend (:mod:`repro.theory.absorbing`) pass ``include_exact=True``
    to additionally accept ``engine="exact"``, which replaces sampling
    with the fundamental-matrix expectation where feasible.
    """
    if include_exact:
        return ParamSpec(
            str,
            "replica simulator: vectorized batch engine, per-replica "
            "loop, or the exact absorbing-chain solver",
            default="batch",
            choices=("batch", "loop", "exact"),
        )
    return ParamSpec(
        str,
        "replica simulator: vectorized batch engine or per-replica loop",
        default="batch",
        choices=("batch", "loop"),
    )


def kernel_param() -> ParamSpec:
    """The shared ``kernel`` parameter of the Monte-Carlo experiments.

    Selects the batch engine's stepping kernel
    (:mod:`repro.engine.kernels`); ignored by ``engine="loop"``.
    ``auto`` consults the persisted calibration table when one exists
    (``repro bench calibrate``) and otherwise falls back to the
    jit-if-numba heuristic; ``jit``/``jit-par`` degrade to ``fused``
    without numba, and ``cupy`` runs on the NumPy array-API shim
    without CuPy.
    """
    return ParamSpec(
        str,
        "batch stepping kernel: auto (measured pick), per-round numpy, "
        "fused blocks, serial numba jit, threaded numba jit-par, or the "
        "cupy array-API backend (jit tiers fall back to fused without "
        "numba)",
        default="auto",
        choices=tuple(KERNEL_CHOICES),
    )


def threads_param() -> ParamSpec:
    """The shared ``threads`` parameter of the Monte-Carlo experiments.

    Requested thread count for the threaded ``jit-par`` kernel; the
    engine clamps it to the per-worker oversubscription cap and to
    numba's own limit, and other kernels ignore it.  ``None`` (the
    default) leaves the runtime default in place.
    """
    return ParamSpec(
        int,
        "kernel threads for jit-par (clamped so workers x threads never "
        "exceeds the machine); other kernels ignore it",
        default=None,
    )


def graph_schedule_param() -> ParamSpec:
    """The shared ``graph_schedule`` parameter of dynamic experiments.

    Selects how the snapshot stream is generated
    (:mod:`repro.engine.dynamic`): cyclic rotation, seeded random
    choice per segment, or an edge-rewiring churn stream.
    """
    return ParamSpec(
        str,
        "time-varying topology stream: cyclic rotation, seeded random "
        "snapshot choice, or an edge-rewiring churn stream",
        default="cyclic",
        choices=tuple(SCHEDULE_KINDS),
    )


@dataclass
class Experiment:
    """One registered paper artefact: runner plus declared schema."""

    id: str
    artefact: str
    fn: Callable[..., List[ResultTable]]
    params: Dict[str, ParamSpec]
    presets: Dict[str, Dict[str, Any]]
    module: str = ""
    legacy_runner: Callable[..., List[ResultTable]] = field(
        default=None, repr=False
    )

    @property
    def accepts_engine(self) -> bool:
        """Whether this experiment declares the ``engine`` parameter."""
        return "engine" in self.params

    @property
    def accepts_kernel(self) -> bool:
        """Whether this experiment declares the ``kernel`` parameter."""
        return "kernel" in self.params

    @property
    def accepts_threads(self) -> bool:
        """Whether this experiment declares the ``threads`` parameter."""
        return "threads" in self.params

    @property
    def accepts_graph_schedule(self) -> bool:
        """Whether this experiment declares ``graph_schedule``."""
        return "graph_schedule" in self.params

    def resolve(
        self, preset: str = "fast", overrides: Mapping[str, Any] | None = None
    ) -> Dict[str, Any]:
        """Fully resolved parameter dict: defaults < preset < overrides."""
        if preset not in self.presets:
            raise SpecError(
                f"experiment {self.id!r} has no preset {preset!r}; "
                f"declared presets: {', '.join(self.presets)}"
            )
        resolved = {
            name: spec.default
            for name, spec in self.params.items()
            if spec.default is not REQUIRED
        }
        resolved.update(self.presets[preset])
        for name, value in (overrides or {}).items():
            if name not in self.params:
                raise SpecError(
                    f"experiment {self.id!r} has no parameter {name!r}; "
                    f"declared parameters: {', '.join(self.params) or '(none)'}"
                )
            resolved[name] = self.params[name].coerce(name, value)
        missing = [name for name in self.params if name not in resolved]
        if missing:
            raise SpecError(
                f"experiment {self.id!r}: preset {preset!r} leaves required "
                f"parameters unset: {', '.join(missing)}"
            )
        return resolved

    def run(
        self,
        preset: str = "fast",
        seed: int = 0,
        overrides: Mapping[str, Any] | None = None,
    ) -> List[ResultTable]:
        """Execute the runner with resolved parameters (no provenance)."""
        return self.fn(seed=seed, **self.resolve(preset, overrides))


def merge_engine(
    experiment: Experiment,
    overrides: Mapping[str, Any] | None,
    engine: str | None,
    kernel: str | None = None,
    graph_schedule: str | None = None,
    threads: int | None = None,
) -> Dict[str, Any]:
    """Fold spec-level engine/kernel/threads/schedule selections into overrides.

    The single home of the rule every front end shares: each selection
    participates only when the experiment *declares* the corresponding
    parameter (the old CLI applied ``--engine`` solely to the
    Monte-Carlo runners), and an explicit override always wins.
    """
    merged = dict(overrides or {})
    if (
        engine is not None
        and experiment.accepts_engine
        and "engine" not in merged
    ):
        merged["engine"] = engine
    if (
        kernel is not None
        and experiment.accepts_kernel
        and "kernel" not in merged
    ):
        merged["kernel"] = kernel
    if (
        threads is not None
        and experiment.accepts_threads
        and "threads" not in merged
    ):
        merged["threads"] = threads
    if (
        graph_schedule is not None
        and experiment.accepts_graph_schedule
        and "graph_schedule" not in merged
    ):
        merged["graph_schedule"] = graph_schedule
    return merged


#: Experiment id -> :class:`Experiment`, in registration order.
REGISTRY: Dict[str, Experiment] = {}


def experiment(
    experiment_id: str,
    *,
    artefact: str,
    params: Mapping[str, ParamSpec] | None = None,
    presets: Mapping[str, Mapping[str, Any]] | None = None,
) -> Callable:
    """Register a runner under ``experiment_id`` with a declared schema.

    The decorated function must accept ``seed`` plus one keyword per
    declared parameter.  The decorator validates the declaration (preset
    keys must be declared parameters, both scale presets must exist, and
    each preset must complete the required parameters), registers the
    :class:`Experiment`, and returns a legacy-compatible wrapper
    ``run(fast=True, seed=0, **overrides)``.
    """

    def decorate(fn: Callable[..., List[ResultTable]]) -> Callable:
        declared = dict(params or {})
        scale = {name: dict(values) for name, values in (presets or {}).items()}
        for name in PRESETS:
            scale.setdefault(name, {})
        if experiment_id in REGISTRY:
            raise SpecError(f"duplicate experiment id {experiment_id!r}")
        exp = Experiment(
            id=experiment_id,
            artefact=artefact,
            fn=fn,
            params=declared,
            presets=scale,
            module=fn.__module__,
        )
        for preset_name, values in scale.items():
            unknown = [name for name in values if name not in declared]
            if unknown:
                raise SpecError(
                    f"experiment {experiment_id!r}: preset {preset_name!r} "
                    f"sets undeclared parameters: {', '.join(unknown)}"
                )
            exp.resolve(preset_name)  # raises if required params are unset
        REGISTRY[experiment_id] = exp

        @functools.wraps(fn)
        def legacy(fast: bool = True, seed: int = 0, **overrides):
            return exp.run(
                preset="fast" if fast else "full", seed=seed, overrides=overrides
            )

        legacy.experiment = exp
        exp.legacy_runner = legacy
        return legacy

    return decorate


def _ensure_loaded() -> None:
    """Import the experiment package so its decorators populate REGISTRY."""
    import repro.experiments  # noqa: F401  (registration side effect)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one registered experiment or raise a SpecError listing ids."""
    _ensure_loaded()
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise SpecError(
            f"unknown experiment id {experiment_id!r}; "
            f"known ids: {', '.join(REGISTRY)}"
        ) from None


def experiment_ids() -> List[str]:
    """All registered ids, in registration (DESIGN.md index) order."""
    _ensure_loaded()
    return list(REGISTRY)


def all_experiments() -> List[Experiment]:
    """All registered experiments, in registration order."""
    _ensure_loaded()
    return list(REGISTRY.values())
