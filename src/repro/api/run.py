"""Execution of :class:`~repro.api.RunSpec`\\ s with recorded provenance.

:func:`execute` is the single path every front end uses — the subcommand
CLI, the legacy shim, the sweep driver, and the CI smoke job all funnel
through it, so a spec archived today replays identically tomorrow.

With ``spec.trace`` the whole run executes under an enabled
:class:`~repro.obs.trace.Tracer`: the instrumented engine stack lights
up (spans, chunk-boundary streams, merged multiprocessing-worker
traces), the run's metric *delta* is taken against a pre-run snapshot of
the process-wide registry, and the frozen block lands on
``RunResult.telemetry`` — persisted by the artifact store, summarised by
``repro trace``.  Tracing never changes what a run computes (the
off-state contract in :mod:`repro.obs.trace` holds in the on-state too:
instrumentation reads, it never draws).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List

from repro.api.registry import get_experiment, merge_engine
from repro.api.spec import Provenance, RunResult, RunSpec
from repro.graphs.adjacency import collect_content_hashes


def resolve_spec(spec: RunSpec) -> Dict[str, Any]:
    """Resolved parameter dict for ``spec`` (defaults < preset < overrides).

    ``spec.engine``, ``spec.kernel``, ``spec.threads`` and
    ``spec.graph_schedule`` are folded in per
    :func:`repro.api.registry.merge_engine`: each participates only for
    experiments that declare the corresponding parameter, and explicit
    keys in ``spec.overrides`` win.
    """
    experiment = get_experiment(spec.experiment_id)
    return experiment.resolve(
        spec.preset,
        merge_engine(
            experiment, spec.overrides, spec.engine, spec.kernel,
            spec.graph_schedule, threads=spec.threads,
        ),
    )


def _kernel_provenance(
    parameters: Dict[str, Any],
) -> tuple[str | None, str | None, int | None]:
    """``(kernel, reason, threads)`` the engine will actually dispatch.

    Experiments that do not declare a ``kernel`` parameter report none;
    for the rest the requested name is resolved exactly as the batch
    models resolve it, so provenance records ``"fused"`` when a ``"jit"``
    request degraded (the silent-fallback fix), the auto-pick reason
    (``"calibrated"`` / ``"heuristic"``), and the post-cap effective
    thread count when a thread count was requested or a threaded kernel
    selected.
    """
    requested = parameters.get("kernel")
    if requested is None:
        return None, None, None
    from repro.engine.kernels import (
        autopick_kernel,
        effective_thread_count,
        resolve_kernel,
    )

    requested_threads = parameters.get("threads")
    try:
        if str(requested) == "auto":
            kernel, reason = autopick_kernel(
                "node",
                int(parameters.get("k") or 1),
                int(parameters.get("n") or 1),
                int(parameters.get("replicas") or 1),
            )
        else:
            kernel = resolve_kernel(str(requested))
            reason = "explicit" if kernel == str(requested) else "fallback"
    except Exception:
        return None, None, None
    threads = None
    if kernel == "jit-par" or requested_threads is not None:
        threads = effective_thread_count(
            None if requested_threads is None else int(requested_threads)
        )
    return kernel, reason, threads


def execute(spec: RunSpec) -> RunResult:
    """Run one spec and return its tables with full provenance."""
    import repro

    experiment = get_experiment(spec.experiment_id)
    parameters = resolve_spec(spec)
    telemetry = None
    if spec.trace:
        from repro.obs import METRICS, Tracer, activate, build_telemetry

        baseline = METRICS.snapshot()
        tracer = Tracer()
        with activate(tracer):
            with tracer.span(
                "run", experiment=spec.experiment_id, preset=spec.preset,
                seed=spec.seed,
            ), collect_content_hashes() as hashes:
                started = time.perf_counter()
                with tracer.span("experiment", id=spec.experiment_id):
                    tables = experiment.fn(seed=spec.seed, **parameters)
                wall_time = time.perf_counter() - started
        telemetry = build_telemetry(tracer, METRICS.delta(baseline))
    else:
        with collect_content_hashes() as hashes:
            started = time.perf_counter()
            tables = experiment.fn(seed=spec.seed, **parameters)
            wall_time = time.perf_counter() - started
    kernel, kernel_reason, threads = _kernel_provenance(parameters)
    return RunResult(
        spec=spec,
        tables=list(tables),
        provenance=Provenance(
            parameters=dict(parameters),
            engine=parameters.get("engine"),
            version=repro.__version__,
            graph_hashes=sorted(set(hashes)),
            wall_time_s=wall_time,
            timestamp=time.time(),
            kernel=kernel,
            kernel_reason=kernel_reason,
            threads=threads,
        ),
        telemetry=telemetry,
    )


def execute_many(
    specs: Iterable[RunSpec], *, memo: bool = True
) -> List[RunResult]:
    """Execute specs in order; fails fast on the first error.

    Identical configurations (equal :meth:`RunSpec.key`, i.e. identical
    resolved parameters and seed) invoke the engine **once**: later
    duplicates reuse the first run's tables and provenance under their
    own spec (output options like ``markdown`` never enter the key, so
    a memo hit is exact).  Hits count as ``api.memo_hits`` in
    :data:`~repro.obs.metrics.METRICS`.  Pass ``memo=False`` to force
    every spec through the engine, e.g. when timing runs.
    """
    results: List[RunResult] = []
    by_key: Dict[str, RunResult] = {}
    for spec in specs:
        key = spec.key() if memo else None
        if key is not None and key in by_key:
            first = by_key[key]
            from repro.obs.metrics import METRICS

            METRICS.count("api.memo_hits")
            results.append(
                RunResult(
                    spec=spec,
                    tables=list(first.tables),
                    provenance=first.provenance,
                    telemetry=first.telemetry,
                )
            )
            continue
        result = execute(spec)
        if key is not None:
            by_key[key] = result
        results.append(result)
    return results
