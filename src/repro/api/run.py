"""Execution of :class:`~repro.api.RunSpec`\\ s with recorded provenance.

:func:`execute` is the single path every front end uses — the subcommand
CLI, the legacy shim, the sweep driver, and the CI smoke job all funnel
through it, so a spec archived today replays identically tomorrow.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List

from repro.api.registry import get_experiment, merge_engine
from repro.api.spec import Provenance, RunResult, RunSpec
from repro.graphs.adjacency import collect_content_hashes


def resolve_spec(spec: RunSpec) -> Dict[str, Any]:
    """Resolved parameter dict for ``spec`` (defaults < preset < overrides).

    ``spec.engine``, ``spec.kernel`` and ``spec.graph_schedule`` are
    folded in per :func:`repro.api.registry.merge_engine`: each
    participates only for experiments that declare the corresponding
    parameter, and explicit keys in ``spec.overrides`` win.
    """
    experiment = get_experiment(spec.experiment_id)
    return experiment.resolve(
        spec.preset,
        merge_engine(
            experiment, spec.overrides, spec.engine, spec.kernel,
            spec.graph_schedule,
        ),
    )


def execute(spec: RunSpec) -> RunResult:
    """Run one spec and return its tables with full provenance."""
    import repro

    experiment = get_experiment(spec.experiment_id)
    parameters = resolve_spec(spec)
    with collect_content_hashes() as hashes:
        started = time.perf_counter()
        tables = experiment.fn(seed=spec.seed, **parameters)
        wall_time = time.perf_counter() - started
    return RunResult(
        spec=spec,
        tables=list(tables),
        provenance=Provenance(
            parameters=dict(parameters),
            engine=parameters.get("engine"),
            version=repro.__version__,
            graph_hashes=sorted(set(hashes)),
            wall_time_s=wall_time,
            timestamp=time.time(),
        ),
    )


def execute_many(specs: Iterable[RunSpec]) -> List[RunResult]:
    """Execute specs in order; fails fast on the first error."""
    return [execute(spec) for spec in specs]
