"""Spec-level parameter sweeps: one RunSpec per grid point.

Where :func:`repro.sim.sweep.sweep` evaluates an in-process callable
over a cartesian grid, this module expands a grid of *parameter
overrides* into concrete :class:`~repro.api.RunSpec`\\ s — the shape the
``repro sweep`` subcommand executes and archives.  Both share
:func:`repro.sim.sweep.grid`, so the enumeration order is identical.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Sequence

from repro.api.registry import get_experiment, merge_engine
from repro.api.spec import RunSpec
from repro.exceptions import SpecError
from repro.sim.results import ResultTable
from repro.sim.sweep import grid


def expand_grid(
    experiment_id: str,
    axes: Mapping[str, Sequence[Any]],
    *,
    preset: str = "fast",
    seed: int = 0,
    engine: str | None = None,
    kernel: str | None = None,
    threads: int | None = None,
    graph_schedule: str | None = None,
    overrides: Mapping[str, Any] | None = None,
) -> List[RunSpec]:
    """One validated :class:`RunSpec` per point of ``axes``' product.

    ``axes`` maps declared parameter names to candidate values;
    ``overrides`` holds scalar settings shared by every point.  Axis
    names must be declared parameters of the experiment and must not
    collide with ``overrides``.
    """
    experiment = get_experiment(experiment_id)
    if not axes:
        raise SpecError("a sweep needs at least one axis")
    common = dict(overrides or {})
    for name in axes:
        if name in common:
            raise SpecError(f"axis {name!r} collides with a fixed override")
        if name not in experiment.params:
            raise SpecError(
                f"experiment {experiment_id!r} has no parameter {name!r}; "
                f"declared parameters: {', '.join(experiment.params) or '(none)'}"
            )
    # Coerce every value up front: a bad grid fails before any point runs,
    # and the archived specs carry typed values, not CLI strings.
    coerced_axes = {
        name: [experiment.params[name].coerce(name, value) for value in values]
        for name, values in axes.items()
    }
    specs = []
    for point in grid(coerced_axes):
        spec = RunSpec(
            experiment_id=experiment_id,
            preset=preset,
            seed=seed,
            engine=engine,
            kernel=kernel,
            threads=threads,
            graph_schedule=graph_schedule,
            overrides={**common, **point},
        )
        experiment.resolve(
            preset,
            merge_engine(
                experiment, spec.overrides, spec.engine, spec.kernel,
                spec.graph_schedule, threads=spec.threads,
            ),
        )
        specs.append(spec)
    return specs


def summary_table(
    axes: Mapping[str, Sequence[Any]], results: Sequence
) -> ResultTable:
    """Compact per-point summary of executed sweep results."""
    names = list(axes)
    table = ResultTable(
        title="sweep summary",
        columns=[*names, "tables", "rows", "wall_time_s"],
    )
    for result in results:
        point = [result.spec.overrides.get(name) for name in names]
        table.add_row(
            *point,
            len(result.tables),
            sum(len(t.rows) for t in result.tables),
            result.provenance.wall_time_s,
        )
    return table
