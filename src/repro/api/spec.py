"""Typed, JSON-round-trippable run specifications and results.

A :class:`RunSpec` is the single currency of the run API: the CLI parses
one, the executor runs one, the artifact store files results under one.
It names an experiment, a scale preset (``fast`` / ``full``), explicit
parameter overrides, the seed, optional engine and kernel selections,
and output options — everything needed to reproduce a run from its
archived JSON.

A :class:`RunResult` pairs the produced tables with :class:`Provenance`:
the fully resolved parameters, the engine actually used, the package
version, the content hashes of every graph frozen during the run, and
wall time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping

from repro.exceptions import SpecError
from repro.sim.results import ResultTable

_SPEC_FIELDS = (
    "experiment_id", "preset", "seed", "engine", "kernel", "threads",
    "graph_schedule", "overrides", "markdown", "trace", "timeout_s",
)


def _normalise(value: Any) -> Any:
    """Map tuples to lists recursively so ``==`` survives a JSON cycle."""
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _normalise(v) for k, v in value.items()}
    return value


@dataclass
class RunSpec:
    """Declarative description of one experiment run."""

    experiment_id: str
    preset: str = "fast"
    seed: int = 0
    engine: str | None = None
    kernel: str | None = None
    threads: int | None = None
    graph_schedule: str | None = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    markdown: bool = False
    # Observability opt-in: attaches a telemetry block to the result.
    # Like markdown, trace is an output option — it never participates
    # in key(), because tracing must not change what a run computes.
    trace: bool = False
    # Wall-clock deadline for service execution (seconds).  Enforced by
    # the job worker's watchdog, not the engine: a hung kernel becomes
    # a retriable failure instead of a stuck claim.  An execution
    # option like markdown/trace — never part of key(), because a
    # deadline must not change what a run computes.
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.experiment_id, str) or not self.experiment_id:
            raise SpecError("experiment_id must be a non-empty string")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError(f"seed must be an int, got {self.seed!r}")
        if self.threads is not None:
            if (
                isinstance(self.threads, bool)
                or not isinstance(self.threads, int)
                or self.threads < 1
            ):
                raise SpecError(
                    f"threads must be a positive int or None, "
                    f"got {self.threads!r}"
                )
        if self.timeout_s is not None:
            if isinstance(self.timeout_s, bool) or not isinstance(
                self.timeout_s, (int, float)
            ):
                raise SpecError(
                    f"timeout_s must be a positive number or None, "
                    f"got {self.timeout_s!r}"
                )
            self.timeout_s = float(self.timeout_s)
            if self.timeout_s <= 0:
                raise SpecError(
                    f"timeout_s must be positive, got {self.timeout_s!r}"
                )
        self.overrides = {
            str(k): _normalise(v) for k, v in dict(self.overrides).items()
        }

    # ------------------------------------------------------------------
    # Serialisation (lossless round trip)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return _normalise(asdict(self))

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"run spec payload must be a mapping, got {payload!r}")
        unknown = [key for key in payload if key not in _SPEC_FIELDS]
        if unknown:
            raise SpecError(
                f"run spec payload has unknown fields: {', '.join(unknown)}"
            )
        if "experiment_id" not in payload:
            raise SpecError("run spec payload is missing 'experiment_id'")
        return cls(**dict(payload))

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid run spec JSON: {error}") from error
        return cls.from_payload(payload)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def _effective_overrides(self) -> Dict[str, Any]:
        """The resolution delta this spec's overrides and engine produce.

        Computed as the difference between the fully resolved parameters
        and the bare preset's resolution, so no-op settings — the engine
        field on an experiment that ignores it, an override equal to its
        preset/default value, a string that coerces to the preset value —
        do not split the configuration's identity.  For ids the registry
        does not know (e.g. specs written for a future version) or specs
        that do not resolve, the raw overrides are kept conservatively.
        """
        from repro.api.registry import get_experiment, merge_engine

        fallback = dict(self.overrides)
        if self.engine is not None and "engine" not in fallback:
            fallback["engine"] = self.engine
        if self.kernel is not None and "kernel" not in fallback:
            fallback["kernel"] = self.kernel
        if self.threads is not None and "threads" not in fallback:
            fallback["threads"] = self.threads
        if self.graph_schedule is not None and "graph_schedule" not in fallback:
            fallback["graph_schedule"] = self.graph_schedule
        try:
            experiment = get_experiment(self.experiment_id)
            merged = merge_engine(
                experiment, self.overrides, self.engine, self.kernel,
                self.graph_schedule, threads=self.threads,
            )
            resolved = experiment.resolve(self.preset, merged)
            baseline = experiment.resolve(self.preset)
        except SpecError:
            return fallback
        return {
            name: value
            for name, value in resolved.items()
            if _normalise(value) != _normalise(baseline[name])
        }

    def key(self) -> str:
        """Stable filesystem-safe identity of this configuration.

        Two specs that resolve to the same parameters (same experiment,
        preset, seed and effective overrides; output options do not
        participate) share a key, so re-running a configuration
        overwrites its archived artefact — one canonical record per
        configuration, as with ``repro.io.save_bundle``.
        """
        parts = [self.experiment_id, self.preset, f"s{self.seed}"]
        effective = self._effective_overrides()
        if effective:
            blob = json.dumps(_normalise(effective), sort_keys=True)
            parts.append(hashlib.sha256(blob.encode()).hexdigest()[:8])
        return ".".join(parts)

    def label(self) -> str:
        """Human-oriented one-line description."""
        extras = [self.preset, f"seed={self.seed}"]
        if self.engine is not None:
            extras.append(f"engine={self.engine}")
        if self.kernel is not None:
            extras.append(f"kernel={self.kernel}")
        if self.threads is not None:
            extras.append(f"threads={self.threads}")
        if self.graph_schedule is not None:
            extras.append(f"schedule={self.graph_schedule}")
        extras += [f"{k}={v}" for k, v in sorted(self.overrides.items())]
        return f"{self.experiment_id}[{', '.join(extras)}]"


@dataclass
class Provenance:
    """How a result was produced — enough to reproduce or audit it."""

    parameters: Dict[str, Any]
    engine: str | None
    version: str
    graph_hashes: List[str]
    wall_time_s: float
    timestamp: float
    #: The *effective* kernel the engine resolved to (e.g. a requested
    #: ``"jit"`` that degraded to ``"fused"``), when the run used one.
    kernel: str | None = None
    #: Why that kernel was picked: ``"explicit"`` (the caller named it),
    #: ``"calibrated"`` / ``"heuristic"`` (the two ``kernel="auto"``
    #: paths) or ``"fallback"`` (requested backend unavailable).
    kernel_reason: str | None = None
    #: Effective kernel threads (after the oversubscription cap), when
    #: the run requested a threaded kernel.
    threads: int | None = None

    def to_payload(self) -> dict:
        return _normalise(asdict(self))

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Provenance":
        try:
            return cls(
                parameters=dict(payload["parameters"]),
                engine=payload.get("engine"),
                version=payload["version"],
                graph_hashes=list(payload["graph_hashes"]),
                wall_time_s=float(payload["wall_time_s"]),
                timestamp=float(payload["timestamp"]),
                kernel=payload.get("kernel"),
                kernel_reason=payload.get("kernel_reason"),
                threads=payload.get("threads"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SpecError(f"malformed provenance payload: {error}") from error


@dataclass
class RunResult:
    """Tables plus provenance for one executed :class:`RunSpec`."""

    spec: RunSpec
    tables: List[ResultTable]
    provenance: Provenance
    #: Observability block (see :mod:`repro.obs.export`); present only
    #: when the run executed with ``spec.trace``.
    telemetry: Dict[str, Any] | None = None

    def to_payload(self) -> dict:
        payload = {
            "schema": 1,
            "spec": self.spec.to_payload(),
            "provenance": self.provenance.to_payload(),
            "tables": [table.to_payload() for table in self.tables],
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunResult":
        try:
            spec = RunSpec.from_payload(payload["spec"])
            provenance = Provenance.from_payload(payload["provenance"])
            tables = [
                ResultTable.from_payload(entry) for entry in payload["tables"]
            ]
        except (KeyError, TypeError) as error:
            raise SpecError(f"malformed run result payload: {error}") from error
        telemetry = payload.get("telemetry")
        return cls(
            spec=spec,
            tables=tables,
            provenance=provenance,
            telemetry=dict(telemetry) if telemetry is not None else None,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, default=str)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid run result JSON: {error}") from error
        return cls.from_payload(payload)
