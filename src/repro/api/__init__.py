"""The declarative run API: one execution path for every experiment.

This package replaces ad-hoc ``run(fast=..., seed=...)`` invocation with
four cooperating pieces (see DESIGN.md section 5):

* :class:`RunSpec` / :class:`RunResult` (:mod:`repro.api.spec`) — typed,
  JSON-round-trippable descriptions of a run and its outcome, the latter
  carrying full :class:`Provenance` (resolved parameters, engine,
  package version, graph content hashes, wall time).
* :func:`experiment` (:mod:`repro.api.registry`) — the registration
  decorator each experiment module uses to declare its id, paper
  artefact, parameter schema and ``fast`` / ``full`` presets as data.
* :func:`execute` (:mod:`repro.api.run`) — resolves a spec against the
  registry and runs it with provenance collection.
* :class:`ArtifactStore` (:mod:`repro.api.store`) — a manifest-indexed
  archive of results, reloadable and regression-diffable by spec.
* :func:`submit` / :class:`JobHandle` (:mod:`repro.jobs`) — the async
  face: file a spec with a ``repro serve`` worker pool and wait on the
  handle instead of blocking in-process (see DESIGN.md section 10).

Quick tour::

    from repro.api import ArtifactStore, RunSpec, execute

    result = execute(RunSpec("EXP-T222", preset="fast", seed=0,
                             overrides={"engine": "loop"}))
    ArtifactStore("results/").save(result)
"""

from repro.api.registry import (
    PRESETS,
    REGISTRY,
    REQUIRED,
    Experiment,
    ParamSpec,
    all_experiments,
    engine_param,
    graph_schedule_param,
    kernel_param,
    threads_param,
    experiment,
    experiment_ids,
    get_experiment,
)
from repro.api.run import execute, execute_many, resolve_spec
from repro.api.spec import Provenance, RunResult, RunSpec
from repro.api.store import ArtifactRecord, ArtifactStore, diff_results
from repro.api.sweep import expand_grid, summary_table
from repro.jobs.handle import JobHandle, submit

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "Experiment",
    "JobHandle",
    "PRESETS",
    "ParamSpec",
    "Provenance",
    "REGISTRY",
    "REQUIRED",
    "RunResult",
    "RunSpec",
    "all_experiments",
    "diff_results",
    "engine_param",
    "graph_schedule_param",
    "kernel_param",
    "execute",
    "execute_many",
    "expand_grid",
    "experiment",
    "experiment_ids",
    "get_experiment",
    "resolve_spec",
    "submit",
    "summary_table",
    "threads_param",
]
