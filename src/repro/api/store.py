"""Manifest-indexed archive of executed runs.

The :class:`ArtifactStore` absorbs the flat-file ``repro.io`` bundle
layer into a directory with one JSON artefact per run configuration plus
a ``manifest.json`` index, so archived runs can be listed, reloaded and
regression-diffed *by spec* instead of by guessing file names:

```
store/
  manifest.json                 {"schema": 1, "records": {key: record}}
  EXP-T222.fast.s0.json         RunResult payload (spec + provenance + tables)
  EXP-T222.fast.s0.1a2b3c4d.json  same configuration with overrides
```

Keys come from :meth:`RunSpec.key`; saving the same configuration twice
overwrites its artefact (one canonical record per configuration, the
``save_bundle`` convention).  Table comparison reuses
:func:`repro.io.diff_tables`, and legacy ``ResultBundle`` archives can be
absorbed with :meth:`ArtifactStore.import_bundle`.

The store is safe under concurrent writers — the job service points
many worker processes at one store.  Artefact and manifest writes are
atomic (unique temp file + ``os.replace``, so readers never see a torn
JSON), and the manifest's read-modify-write cycle in :meth:`save` runs
under a :class:`~repro.locks.FileLock`, so two workers archiving at
the same moment cannot drop each other's manifest entries.

The store is also *crash-consistent* (DESIGN.md section 11): every
manifest entry carries the sha256 of its artefact file, :meth:`load`
verifies it and quarantines corrupt artefacts (``quarantine/``, entry
dropped, ``store.quarantined`` counted) instead of returning bad data,
a corrupt manifest is rebuilt from the artefact files themselves, and
``ENOSPC`` surfaces as :class:`~repro.exceptions.StorageError` so the
job service can fail the affected job cleanly.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List

from repro.api.spec import RunResult, RunSpec
from repro.exceptions import ArtifactError, SpecError, StorageError
from repro.io import ResultBundle, diff_tables
from repro.locks import FileLock, atomic_write_text, read_text
from repro.obs.metrics import METRICS

MANIFEST_NAME = "manifest.json"
#: corrupt artefacts are moved here (never deleted) pending recompute.
QUARANTINE_DIR = "quarantine"
_SCHEMA = 1


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def diff_results(
    old: RunResult, new: RunResult, rel_tol: float = 0.25
) -> List[str]:
    """Human-readable differences between two runs (empty = match).

    Tables are paired by title; numeric cells compare with relative
    tolerance ``rel_tol`` via :func:`repro.io.diff_tables`.  Spec
    mismatches (different experiment) are reported first — diffing a run
    against a different experiment is almost certainly a mistake.
    """
    problems: List[str] = []
    if old.spec.experiment_id != new.spec.experiment_id:
        problems.append(
            "experiment changed: "
            f"{old.spec.experiment_id} -> {new.spec.experiment_id}"
        )
        return problems
    # Effective-kernel drift (e.g. one side's "jit" silently degraded to
    # "fused") explains many throughput regressions: surface it whenever
    # both provenances recorded a kernel.
    old_kernel = old.provenance.kernel
    new_kernel = new.provenance.kernel
    if (
        old_kernel is not None
        and new_kernel is not None
        and old_kernel != new_kernel
    ):
        problems.append(
            f"effective kernel changed: {old_kernel} -> {new_kernel}"
        )
    old_by_title = {table.title: table for table in old.tables}
    new_by_title = {table.title: table for table in new.tables}
    for title in old_by_title:
        if title not in new_by_title:
            problems.append(f"table {title!r} disappeared")
    for title in new_by_title:
        if title not in old_by_title:
            problems.append(f"table {title!r} appeared")
    for title, old_table in old_by_title.items():
        if title not in new_by_title:
            continue
        problems += [
            f"table {title!r}: {problem}"
            for problem in diff_tables(
                old_table, new_by_title[title], rel_tol=rel_tol
            )
        ]
    return problems


@dataclass
class ArtifactRecord:
    """One manifest entry: where a run lives and what produced it."""

    key: str
    file: str
    experiment_id: str
    preset: str
    seed: int
    overrides: Dict[str, Any]
    version: str
    wall_time_s: float
    timestamp: float
    #: sha256 of the artefact file's exact bytes.  Empty for records
    #: written before checksumming existed; those skip verification.
    sha256: str = ""

    @classmethod
    def from_result(
        cls, result: RunResult, file: str, sha256: str = ""
    ) -> "ArtifactRecord":
        spec, prov = result.spec, result.provenance
        return cls(
            key=spec.key(),
            file=file,
            experiment_id=spec.experiment_id,
            preset=spec.preset,
            seed=spec.seed,
            overrides=dict(spec.overrides),
            version=prov.version,
            wall_time_s=prov.wall_time_s,
            timestamp=prov.timestamp,
            sha256=sha256,
        )


class ArtifactStore:
    """Directory-backed archive of :class:`RunResult`\\ s."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(
        self, heal: bool = True, locked: bool = False
    ) -> Dict[str, ArtifactRecord]:
        """Parse the manifest; a corrupt one is rebuilt, not fatal.

        The manifest is an *index*, the artefact files are the truth:
        when the index is unparseable (torn legacy write, bit rot) it
        is reconstructed by scanning the artefacts
        (:meth:`rebuild_manifest`) instead of bricking the store.
        ``heal=False`` reports the corruption as an
        :class:`ArtifactError` instead (fsck's read-only mode);
        ``locked=True`` tells the rebuild the caller already holds the
        manifest lock (:class:`FileLock` is not reentrant).
        """
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(
                read_text(self.manifest_path, site="store.manifest")
            )
            records = {
                key: ArtifactRecord(**entry)
                for key, entry in payload["records"].items()
            }
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            if not heal:
                raise ArtifactError(
                    f"corrupt manifest at {self.manifest_path}: {error}"
                ) from error
            METRICS.count("store.manifest_rebuilt")
            return self.rebuild_manifest(locked=locked)
        return records

    def _write_manifest(self, records: Dict[str, ArtifactRecord]) -> None:
        payload = {
            "schema": _SCHEMA,
            "records": {key: asdict(record) for key, record in records.items()},
        }
        try:
            atomic_write_text(
                self.manifest_path,
                json.dumps(payload, indent=2, sort_keys=True),
                site="store.manifest",
            )
        except OSError as error:
            if error.errno == errno.ENOSPC:
                raise StorageError(
                    f"disk full while writing manifest "
                    f"{self.manifest_path}: {error}"
                ) from error
            raise

    def _manifest_lock(self) -> FileLock:
        return FileLock(self.root / (MANIFEST_NAME + ".lock"))

    def rebuild_manifest(
        self, locked: bool = False
    ) -> Dict[str, ArtifactRecord]:
        """Reconstruct the manifest by scanning the artefact files.

        Every parseable ``*.json`` artefact gets a fresh entry (with a
        freshly computed checksum — the rebuilt index trusts the bytes
        it actually read); unparseable files are skipped and left for
        :meth:`verify` to report.  The file name, not the re-derived
        spec key, is the entry's key: names were minted from keys at
        save time and survive registry drift.
        """
        records: Dict[str, ArtifactRecord] = {}
        for path in sorted(self.root.glob("*.json")):
            if path.name == MANIFEST_NAME:
                continue
            try:
                text = path.read_text()
                result = RunResult.from_json(text)
            except (OSError, SpecError):
                continue
            record = ArtifactRecord.from_result(
                result, path.name, sha256=_sha256(text)
            )
            record.key = path.stem
            records[path.stem] = record
        if locked:
            self._write_manifest(records)
        else:
            with self._manifest_lock():
                self._write_manifest(records)
        return records

    # ------------------------------------------------------------------
    # Save / load / list
    # ------------------------------------------------------------------
    def save(self, result: RunResult) -> Path:
        """Archive ``result``; returns the artefact path.

        Re-saving the same configuration (same :meth:`RunSpec.key`)
        overwrites the previous artefact and manifest entry.  Safe
        under concurrent writers: the artefact lands atomically and
        the manifest update is serialised by a file lock.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        key = result.spec.key()
        file_name = f"{key}.json"
        text = result.to_json()
        try:
            atomic_write_text(
                self.root / file_name, text, site="store.artifact"
            )
        except OSError as error:
            if error.errno == errno.ENOSPC:
                raise StorageError(
                    f"disk full while archiving {key!r} under "
                    f"{self.root}: {error}"
                ) from error
            raise
        with self._manifest_lock():
            records = self._read_manifest(locked=True)
            records[key] = ArtifactRecord.from_result(
                result, file_name, sha256=_sha256(text)
            )
            self._write_manifest(records)
        return self.root / file_name

    def records(self) -> List[ArtifactRecord]:
        """All manifest entries, sorted by (experiment id, preset, seed)."""
        return sorted(
            self._read_manifest().values(),
            key=lambda r: (r.experiment_id, r.preset, r.seed, r.key),
        )

    def find(
        self,
        experiment_id: str | None = None,
        preset: str | None = None,
        seed: int | None = None,
    ) -> List[ArtifactRecord]:
        """Manifest entries matching every given filter."""
        return [
            record
            for record in self.records()
            if (experiment_id is None or record.experiment_id == experiment_id)
            and (preset is None or record.preset == preset)
            and (seed is None or record.seed == seed)
        ]

    def load(self, key: str) -> RunResult:
        """Reload one archived run by its manifest key.

        The artefact's bytes are verified against the manifest
        checksum; a mismatch (or unparseable content) quarantines the
        file and drops the entry, so the raised
        :class:`ArtifactError` means "recompute this key" — the next
        submission of the configuration runs instead of serving rot.
        A missing artefact file likewise drops its dangling entry.
        """
        records = self._read_manifest()
        if key not in records:
            raise ArtifactError(
                f"no artefact {key!r} in {self.root}; "
                f"known keys: {', '.join(sorted(records)) or '(none)'}"
            )
        record = records[key]
        path = self.root / record.file
        try:
            text = read_text(path, site="store.artifact")
        except FileNotFoundError:
            self._drop_record(key)
            raise ArtifactError(
                f"manifest entry {key!r} points at missing {path}; "
                f"entry dropped — resubmit to recompute"
            ) from None
        if record.sha256 and _sha256(text) != record.sha256:
            self._quarantine(key, record)
            raise ArtifactError(
                f"artefact {key!r} failed its checksum (corrupt read from "
                f"{path}); quarantined — resubmit to recompute"
            )
        try:
            return RunResult.from_json(text)
        except SpecError as error:
            self._quarantine(key, record)
            raise ArtifactError(
                f"artefact {key!r} is unparseable ({error}); "
                f"quarantined — resubmit to recompute"
            ) from error

    def _drop_record(self, key: str) -> None:
        with self._manifest_lock():
            records = self._read_manifest(locked=True)
            if key in records:
                del records[key]
                self._write_manifest(records)

    def _quarantine(self, key: str, record: ArtifactRecord) -> None:
        """Move a corrupt artefact aside and forget its manifest entry."""
        METRICS.count("store.quarantined")
        quarantine = self.root / QUARANTINE_DIR
        quarantine.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(self.root / record.file, quarantine / record.file)
        except FileNotFoundError:
            pass
        self._drop_record(key)

    def load_spec(self, spec: RunSpec) -> RunResult:
        """Reload the archived run of ``spec``'s configuration."""
        return self.load(spec.key())

    def latest(self, experiment_id: str) -> RunResult:
        """Most recently saved run of ``experiment_id``."""
        matches = self.find(experiment_id=experiment_id)
        if not matches:
            raise ArtifactError(
                f"no archived runs of {experiment_id!r} in {self.root}"
            )
        newest = max(matches, key=lambda record: record.timestamp)
        return self.load(newest.key)

    # ------------------------------------------------------------------
    # Integrity checking (repro fsck)
    # ------------------------------------------------------------------
    def verify(self, repair: bool = False) -> Dict[str, Any]:
        """Check manifest <-> artefact agreement; optionally repair.

        Findings: a corrupt manifest, entries whose file is missing,
        checksum mismatches, unparseable artefacts, and artefact files
        the manifest does not index.  With ``repair=True`` each finding
        is fixed the same way the hot path would fix it (rebuild,
        drop, quarantine, re-index).  Returns ``{"findings": [...],
        "repaired": N}``; an empty findings list means clean.
        """
        findings: List[str] = []
        repaired = 0
        try:
            records = self._read_manifest(heal=False)
        except ArtifactError as error:
            findings.append(f"manifest: {error}")
            if not repair:
                return {"findings": findings, "repaired": repaired}
            records = self.rebuild_manifest()
            METRICS.count("store.manifest_rebuilt")
            repaired += 1
        indexed = set()
        for key, record in sorted(records.items()):
            path = self.root / record.file
            indexed.add(record.file)
            try:
                text = path.read_text()
            except FileNotFoundError:
                findings.append(
                    f"entry {key}: missing artefact file {record.file}"
                )
                if repair:
                    self._drop_record(key)
                    repaired += 1
                continue
            if record.sha256 and _sha256(text) != record.sha256:
                findings.append(f"entry {key}: checksum mismatch")
                if repair:
                    self._quarantine(key, record)
                    repaired += 1
                continue
            try:
                RunResult.from_json(text)
            except SpecError as error:
                findings.append(f"entry {key}: unparseable ({error})")
                if repair:
                    self._quarantine(key, record)
                    repaired += 1
        for path in sorted(self.root.glob("*.json")):
            if path.name == MANIFEST_NAME or path.name in indexed:
                continue
            findings.append(f"unindexed artefact file {path.name}")
            if repair:
                try:
                    text = path.read_text()
                    result = RunResult.from_json(text)
                except (OSError, SpecError):
                    continue  # unparseable strays stay for inspection
                with self._manifest_lock():
                    live = self._read_manifest(locked=True)
                    record = ArtifactRecord.from_result(
                        result, path.name, sha256=_sha256(text)
                    )
                    record.key = path.stem
                    live[path.stem] = record
                    self._write_manifest(live)
                repaired += 1
        return {"findings": findings, "repaired": repaired}

    # ------------------------------------------------------------------
    # Regression diffing
    # ------------------------------------------------------------------
    def diff(
        self, old: RunResult, new: RunResult, rel_tol: float = 0.25
    ) -> List[str]:
        """Regression-diff two runs; see :func:`diff_results`."""
        return diff_results(old, new, rel_tol=rel_tol)

    # ------------------------------------------------------------------
    # Legacy absorption
    # ------------------------------------------------------------------
    def import_bundle(self, bundle: ResultBundle) -> Path:
        """Absorb a legacy ``repro.io.ResultBundle`` into the store.

        The bundle's ``fast`` flag maps onto the preset; provenance
        fields the flat format never recorded are marked unknown.
        """
        from repro.api.spec import Provenance

        spec = RunSpec(
            experiment_id=bundle.experiment_id,
            preset="fast" if bundle.fast else "full",
            seed=bundle.seed,
        )
        result = RunResult(
            spec=spec,
            tables=list(bundle.tables),
            provenance=Provenance(
                parameters={},
                engine=None,
                version="unknown",
                graph_hashes=[],
                wall_time_s=0.0,
                timestamp=bundle.timestamp,
            ),
        )
        return self.save(result)
