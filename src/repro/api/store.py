"""Manifest-indexed archive of executed runs.

The :class:`ArtifactStore` absorbs the flat-file ``repro.io`` bundle
layer into a directory with one JSON artefact per run configuration plus
a ``manifest.json`` index, so archived runs can be listed, reloaded and
regression-diffed *by spec* instead of by guessing file names:

```
store/
  manifest.json                 {"schema": 1, "records": {key: record}}
  EXP-T222.fast.s0.json         RunResult payload (spec + provenance + tables)
  EXP-T222.fast.s0.1a2b3c4d.json  same configuration with overrides
```

Keys come from :meth:`RunSpec.key`; saving the same configuration twice
overwrites its artefact (one canonical record per configuration, the
``save_bundle`` convention).  Table comparison reuses
:func:`repro.io.diff_tables`, and legacy ``ResultBundle`` archives can be
absorbed with :meth:`ArtifactStore.import_bundle`.

The store is safe under concurrent writers — the job service points
many worker processes at one store.  Artefact and manifest writes are
atomic (unique temp file + ``os.replace``, so readers never see a torn
JSON), and the manifest's read-modify-write cycle in :meth:`save` runs
under a :class:`~repro.locks.FileLock`, so two workers archiving at
the same moment cannot drop each other's manifest entries.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List

from repro.api.spec import RunResult, RunSpec
from repro.exceptions import ArtifactError
from repro.io import ResultBundle, diff_tables
from repro.locks import FileLock, atomic_write_text

MANIFEST_NAME = "manifest.json"
_SCHEMA = 1


def diff_results(
    old: RunResult, new: RunResult, rel_tol: float = 0.25
) -> List[str]:
    """Human-readable differences between two runs (empty = match).

    Tables are paired by title; numeric cells compare with relative
    tolerance ``rel_tol`` via :func:`repro.io.diff_tables`.  Spec
    mismatches (different experiment) are reported first — diffing a run
    against a different experiment is almost certainly a mistake.
    """
    problems: List[str] = []
    if old.spec.experiment_id != new.spec.experiment_id:
        problems.append(
            "experiment changed: "
            f"{old.spec.experiment_id} -> {new.spec.experiment_id}"
        )
        return problems
    # Effective-kernel drift (e.g. one side's "jit" silently degraded to
    # "fused") explains many throughput regressions: surface it whenever
    # both provenances recorded a kernel.
    old_kernel = old.provenance.kernel
    new_kernel = new.provenance.kernel
    if (
        old_kernel is not None
        and new_kernel is not None
        and old_kernel != new_kernel
    ):
        problems.append(
            f"effective kernel changed: {old_kernel} -> {new_kernel}"
        )
    old_by_title = {table.title: table for table in old.tables}
    new_by_title = {table.title: table for table in new.tables}
    for title in old_by_title:
        if title not in new_by_title:
            problems.append(f"table {title!r} disappeared")
    for title in new_by_title:
        if title not in old_by_title:
            problems.append(f"table {title!r} appeared")
    for title, old_table in old_by_title.items():
        if title not in new_by_title:
            continue
        problems += [
            f"table {title!r}: {problem}"
            for problem in diff_tables(
                old_table, new_by_title[title], rel_tol=rel_tol
            )
        ]
    return problems


@dataclass
class ArtifactRecord:
    """One manifest entry: where a run lives and what produced it."""

    key: str
    file: str
    experiment_id: str
    preset: str
    seed: int
    overrides: Dict[str, Any]
    version: str
    wall_time_s: float
    timestamp: float

    @classmethod
    def from_result(cls, result: RunResult, file: str) -> "ArtifactRecord":
        spec, prov = result.spec, result.provenance
        return cls(
            key=spec.key(),
            file=file,
            experiment_id=spec.experiment_id,
            preset=spec.preset,
            seed=spec.seed,
            overrides=dict(spec.overrides),
            version=prov.version,
            wall_time_s=prov.wall_time_s,
            timestamp=prov.timestamp,
        )


class ArtifactStore:
    """Directory-backed archive of :class:`RunResult`\\ s."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self) -> Dict[str, ArtifactRecord]:
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
            records = {
                key: ArtifactRecord(**entry)
                for key, entry in payload["records"].items()
            }
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ArtifactError(
                f"corrupt manifest at {self.manifest_path}: {error}"
            ) from error
        return records

    def _write_manifest(self, records: Dict[str, ArtifactRecord]) -> None:
        payload = {
            "schema": _SCHEMA,
            "records": {key: asdict(record) for key, record in records.items()},
        }
        atomic_write_text(
            self.manifest_path, json.dumps(payload, indent=2, sort_keys=True)
        )

    def _manifest_lock(self) -> FileLock:
        return FileLock(self.root / (MANIFEST_NAME + ".lock"))

    # ------------------------------------------------------------------
    # Save / load / list
    # ------------------------------------------------------------------
    def save(self, result: RunResult) -> Path:
        """Archive ``result``; returns the artefact path.

        Re-saving the same configuration (same :meth:`RunSpec.key`)
        overwrites the previous artefact and manifest entry.  Safe
        under concurrent writers: the artefact lands atomically and
        the manifest update is serialised by a file lock.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        key = result.spec.key()
        file_name = f"{key}.json"
        atomic_write_text(self.root / file_name, result.to_json())
        with self._manifest_lock():
            records = self._read_manifest()
            records[key] = ArtifactRecord.from_result(result, file_name)
            self._write_manifest(records)
        return self.root / file_name

    def records(self) -> List[ArtifactRecord]:
        """All manifest entries, sorted by (experiment id, preset, seed)."""
        return sorted(
            self._read_manifest().values(),
            key=lambda r: (r.experiment_id, r.preset, r.seed, r.key),
        )

    def find(
        self,
        experiment_id: str | None = None,
        preset: str | None = None,
        seed: int | None = None,
    ) -> List[ArtifactRecord]:
        """Manifest entries matching every given filter."""
        return [
            record
            for record in self.records()
            if (experiment_id is None or record.experiment_id == experiment_id)
            and (preset is None or record.preset == preset)
            and (seed is None or record.seed == seed)
        ]

    def load(self, key: str) -> RunResult:
        """Reload one archived run by its manifest key."""
        records = self._read_manifest()
        if key not in records:
            raise ArtifactError(
                f"no artefact {key!r} in {self.root}; "
                f"known keys: {', '.join(sorted(records)) or '(none)'}"
            )
        path = self.root / records[key].file
        if not path.exists():
            raise ArtifactError(f"manifest entry {key!r} points at missing {path}")
        return RunResult.from_json(path.read_text())

    def load_spec(self, spec: RunSpec) -> RunResult:
        """Reload the archived run of ``spec``'s configuration."""
        return self.load(spec.key())

    def latest(self, experiment_id: str) -> RunResult:
        """Most recently saved run of ``experiment_id``."""
        matches = self.find(experiment_id=experiment_id)
        if not matches:
            raise ArtifactError(
                f"no archived runs of {experiment_id!r} in {self.root}"
            )
        newest = max(matches, key=lambda record: record.timestamp)
        return self.load(newest.key)

    # ------------------------------------------------------------------
    # Regression diffing
    # ------------------------------------------------------------------
    def diff(
        self, old: RunResult, new: RunResult, rel_tol: float = 0.25
    ) -> List[str]:
        """Regression-diff two runs; see :func:`diff_results`."""
        return diff_results(old, new, rel_tol=rel_tol)

    # ------------------------------------------------------------------
    # Legacy absorption
    # ------------------------------------------------------------------
    def import_bundle(self, bundle: ResultBundle) -> Path:
        """Absorb a legacy ``repro.io.ResultBundle`` into the store.

        The bundle's ``fast`` flag maps onto the preset; provenance
        fields the flat format never recorded are marked unknown.
        """
        from repro.api.spec import Provenance

        spec = RunSpec(
            experiment_id=bundle.experiment_id,
            preset="fast" if bundle.fast else "full",
            seed=bundle.seed,
        )
        result = RunResult(
            spec=spec,
            tables=list(bundle.tables),
            provenance=Provenance(
                parameters={},
                engine=None,
                version="unknown",
                graph_hashes=[],
                wall_time_s=0.0,
                timestamp=bundle.timestamp,
            ),
        )
        return self.save(result)
