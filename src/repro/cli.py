"""Command-line front end of the declarative run API.

Subcommand interface (the only execution path is
:func:`repro.api.execute`, so CLI runs and archived specs replay
identically)::

    python -m repro.cli run EXP-T222 --set engine=loop --json
    python -m repro.cli run --full --save results/
    python -m repro.cli list --json
    python -m repro.cli sweep EXP-T222 --set n=24,36 --save results/
    python -m repro.cli diff results/EXP-T222.fast.s0.json results/other.json
    python -m repro.cli run EXP-F1 --trace --save results/
    python -m repro.cli trace summary results/EXP-F1.fast.s0.json
    python -m repro.cli trace export results/EXP-F1.fast.s0.json --chrome t.json
    python -m repro.cli cache stats .cache/

Job service (async execution over the same specs, DESIGN.md section 10)::

    python -m repro.cli submit EXP-F1 --root jobs/
    python -m repro.cli serve --root jobs/ --workers 2 --until-idle
    python -m repro.cli status JOB --root jobs/
    python -m repro.cli fetch JOB --root jobs/ --wait --timeout 60
    python -m repro.cli jobs list --root jobs/ --json
    python -m repro.cli jobs cancel JOB --root jobs/
    python -m repro.cli jobs stop --root jobs/

``run`` accepts ``--set key=value`` overrides against each experiment's
declared parameter schema, ``--json`` to emit archived-format payloads,
and ``--save DIR`` to file results in an :class:`~repro.api.ArtifactStore`.
Dynamic-graph experiments additionally take ``--schedule
cyclic|random|rewire``, ``--switch-every N`` and ``--snapshots N``
(each applied, like ``--engine``, only where the experiment declares
the parameter).  The dual-side experiments (EXP-F1, EXP-F4, EXP-L57,
EXP-COAL) honour ``--engine batch|loop`` too — their duality checks,
two-walk occupancy estimates and coalescence-time samples run through
:mod:`repro.engine.dual` by default — and EXP-COAL additionally takes
``--engine exact``, replacing Monte-Carlo with the absorbing-chain
expectations of :mod:`repro.theory.absorbing` where feasible.  The
duality harness of EXP-F1/EXP-F4 honours ``--kernel`` for its primal
forward runs.
``diff`` exits 0 when the runs match within tolerance, 1 otherwise.

``--kernel`` selects the batch engine's stepping kernel (``auto`` |
``numpy`` | ``fused`` | ``jit`` | ``jit-par`` | ``cupy``) and
``--threads`` the thread budget of the threaded ``jit-par`` tier;
``repro bench calibrate [--smoke]`` measures the kernel grid on this
machine and persists the calibration table ``kernel="auto"`` consults
(see :mod:`repro.engine.calibration`).

The pre-subcommand invocation ``python -m repro.cli [ids...] [--slow]
[--engine batch|loop] [--kernel auto|numpy|fused|jit] [--markdown]
[--save DIR] [--list]`` keeps working through a thin compatibility shim
that translates it onto the same API.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.api import (
    REQUIRED,
    ArtifactStore,
    RunResult,
    RunSpec,
    all_experiments,
    diff_results,
    execute,
    expand_grid,
    experiment_ids,
    get_experiment,
    resolve_spec,
    summary_table,
)
from repro.engine.dynamic import SCHEDULE_KINDS
from repro.engine.kernels import KERNEL_CHOICES
from repro.exceptions import ArtifactError, ReproError
from repro.io import ResultBundle, save_bundle
from repro.jobs.handle import DEFAULT_ROOT as JOBS_DEFAULT_ROOT

SUBCOMMANDS = (
    "run", "list", "sweep", "diff", "trace", "cache", "bench",
    "serve", "submit", "status", "fetch", "jobs", "fsck",
)


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The legacy pre-subcommand parser (compatibility shim)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce experiments from 'Distributed Averaging in Opinion "
            "Dynamics' (PODC 2023).  Legacy interface; prefer the "
            "subcommands: repro run | list | sweep | diff"
        ),
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. EXP-F1 EXP-T222); default: all",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--slow",
        action="store_true",
        help="use the full-scale parameters (the 'full' preset)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--engine",
        choices=("batch", "loop", "exact"),
        default="batch",
        help=(
            "replica simulator for Monte-Carlo experiments: the vectorized "
            "batch engine (default), the legacy per-replica loop, or the "
            "exact absorbing-chain solver (experiments that support it)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help=(
            "stepping kernel of the batch engine: auto (measured pick; "
            "default), the legacy per-round numpy path, fused multi-round "
            "blocks, the serial/threaded numba jits, or the cupy array-API "
            "backend (jit tiers fall back to fused without numba)"
        ),
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="kernel threads for --kernel jit-par (clamped to the machine)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render tables as markdown"
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="archive result tables as JSON bundles under DIR",
    )
    return parser


def build_cli_parser() -> argparse.ArgumentParser:
    """The subcommand parser: repro run | list | sweep | diff."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce experiments from 'Distributed Averaging in Opinion "
            "Dynamics' (PODC 2023) via declarative run specs"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute experiments and print/archive tables")
    run.add_argument("ids", nargs="*", metavar="EXPERIMENT",
                     help="experiment ids; default: all")
    run.add_argument("--preset", choices=("fast", "full"), default="fast",
                     help="scale preset (default: fast)")
    run.add_argument("--full", action="store_true",
                     help="shorthand for --preset full")
    run.add_argument("--seed", type=int, default=0, help="experiment seed")
    run.add_argument("--engine", choices=("batch", "loop", "exact"),
                     default=None,
                     help="replica simulator for Monte-Carlo experiments "
                          "('exact' where the experiment supports the "
                          "absorbing-chain solver)")
    run.add_argument("--kernel", choices=KERNEL_CHOICES, default=None,
                     help="stepping kernel of the batch engine")
    run.add_argument("--threads", type=int, default=None,
                     help="kernel threads for jit-par (experiments that "
                          "declare the parameter)")
    run.add_argument("--schedule", dest="graph_schedule",
                     choices=SCHEDULE_KINDS, default=None,
                     help="snapshot stream of dynamic-graph experiments")
    run.add_argument("--switch-every", dest="switch_every", type=int,
                     default=None,
                     help="rounds per topology segment (dynamic experiments)")
    run.add_argument("--snapshots", dest="snapshots", type=int, default=None,
                     help="snapshot pool size (dynamic experiments)")
    run.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="override a declared parameter (repeatable)")
    run.add_argument("--markdown", action="store_true",
                     help="render tables as markdown")
    run.add_argument("--trace", action="store_true",
                     help=(
                         "run under the observability tracer and attach a "
                         "telemetry block to each result (see repro trace)"
                     ))
    run.add_argument("--json", action="store_true",
                     help="emit RunResult JSON payloads instead of tables")
    run.add_argument("--save", metavar="DIR", default=None,
                     help="archive results in an ArtifactStore at DIR")

    lst = sub.add_parser("list", help="list registered experiments")
    lst.add_argument("--json", action="store_true",
                     help="emit the registry (ids, schemas, presets) as JSON")

    swp = sub.add_parser("sweep", help="run one experiment over a parameter grid")
    swp.add_argument("id", metavar="EXPERIMENT", help="experiment id")
    swp.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="KEY=V1[,V2,...]",
                     help=(
                         "axis (comma-separated values) or fixed override; "
                         "for list-typed parameters commas build one value "
                         "and ';' separates axis values"
                     ))
    swp.add_argument("--preset", choices=("fast", "full"), default="fast")
    swp.add_argument("--seed", type=int, default=0)
    swp.add_argument("--engine", choices=("batch", "loop", "exact"),
                     default=None)
    swp.add_argument("--kernel", choices=KERNEL_CHOICES, default=None)
    swp.add_argument("--threads", type=int, default=None)
    swp.add_argument("--schedule", dest="graph_schedule",
                     choices=SCHEDULE_KINDS, default=None)
    swp.add_argument("--switch-every", dest="switch_every", type=int,
                     default=None)
    swp.add_argument("--snapshots", dest="snapshots", type=int, default=None)
    swp.add_argument("--markdown", action="store_true")
    swp.add_argument("--json", action="store_true",
                     help="emit results + summary as JSON")
    swp.add_argument("--save", metavar="DIR", default=None,
                     help="archive every point in an ArtifactStore at DIR")

    dif = sub.add_parser(
        "diff", help="regression-diff two archived runs (exit 1 on drift)"
    )
    dif.add_argument("left", help="artefact file, store key, or experiment id")
    dif.add_argument("right", help="artefact file, store key, or experiment id")
    dif.add_argument("--store", metavar="DIR", default=None,
                     help="ArtifactStore to resolve keys/ids against")
    dif.add_argument("--rel-tol", type=float, default=0.25,
                     help="relative tolerance for numeric cells (default 0.25)")
    dif.add_argument("--json", action="store_true",
                     help="emit the differences as JSON")

    trc = sub.add_parser(
        "trace", help="inspect/export the telemetry of a traced run"
    )
    trc_sub = trc.add_subparsers(dest="action", required=True)
    tsm = trc_sub.add_parser(
        "summary",
        help="top spans by self time, cache stats, shard balance",
    )
    tsm.add_argument("artifact",
                     help="artefact file, store key, or experiment id")
    tsm.add_argument("--store", metavar="DIR", default=None,
                     help="ArtifactStore to resolve keys/ids against")
    tsm.add_argument("--top", type=int, default=12,
                     help="span rows to show (default 12)")
    tsm.add_argument("--json", action="store_true",
                     help="emit the summary as JSON")
    tex = trc_sub.add_parser(
        "export", help="export the span tree (Chrome trace event format)"
    )
    tex.add_argument("artifact",
                     help="artefact file, store key, or experiment id")
    tex.add_argument("--store", metavar="DIR", default=None,
                     help="ArtifactStore to resolve keys/ids against")
    tex.add_argument("--chrome", metavar="OUT", default=None,
                     help="write chrome://tracing JSON to OUT (else stdout)")

    cch = sub.add_parser(
        "cache", help="inspect/evict the engine's on-disk result cache"
    )
    cch_sub = cch.add_subparsers(dest="action", required=True)
    cst = cch_sub.add_parser(
        "stats", help="entries, total bytes, hit/miss since process start"
    )
    cst.add_argument("dir", metavar="DIR", help="cache directory")
    cst.add_argument("--json", action="store_true",
                     help="emit the statistics as JSON")
    ccl = cch_sub.add_parser("clear", help="delete cache entries")
    ccl.add_argument("dir", metavar="DIR", help="cache directory")
    ccl.add_argument("--older-than", dest="older_than", type=float,
                     default=None, metavar="SECONDS",
                     help="evict only entries older than this age")

    bch = sub.add_parser(
        "bench", help="benchmark/calibrate the batch engine's kernels"
    )
    bch_sub = bch.add_subparsers(dest="action", required=True)
    bcl = bch_sub.add_parser(
        "calibrate",
        help=(
            "measure the kernel grid on this machine and persist the "
            "calibration table kernel=auto consults"
        ),
    )
    bcl.add_argument("--smoke", action="store_true",
                     help="seconds-scale grid (one tiny shape per model "
                          "kind) for CI")
    bcl.add_argument("--out", metavar="PATH", default=None,
                     help="write the table here instead of the default "
                          "($REPRO_CALIBRATION or ~/.cache/repro/"
                          "kernel_calibration.json)")
    bcl.add_argument("--rounds", type=int, default=None,
                     help="measured rounds per cell (default 512, 64 with "
                          "--smoke)")
    bcl.add_argument("--repeats", type=int, default=2,
                     help="best-of repeats per cell (default 2)")
    bcl.add_argument("--json", action="store_true",
                     help="emit the table payload as JSON")

    # ------------------------------------------------------------------
    # Job service (repro.jobs)
    # ------------------------------------------------------------------
    def add_root(p: argparse.ArgumentParser) -> None:
        p.add_argument("--root", metavar="DIR", default=JOBS_DEFAULT_ROOT,
                       help=f"service root (default: {JOBS_DEFAULT_ROOT})")

    srv = sub.add_parser(
        "serve", help="run a worker pool over a job-queue root"
    )
    add_root(srv)
    srv.add_argument("--workers", type=int, default=2,
                     help="worker processes to keep alive (default 2)")
    srv.add_argument("--heartbeat-timeout", dest="heartbeat_timeout",
                     type=float, default=5.0,
                     help=(
                         "seconds of heartbeat silence after which a "
                         "claimed job is requeued (default 5)"
                     ))
    srv.add_argument("--until-idle", dest="until_idle", action="store_true",
                     help="exit (cleanly) once the queue drains")
    srv.add_argument("--timeout", type=float, default=None,
                     help="stop serving after this many seconds")
    srv.add_argument("--json", action="store_true",
                     help="emit the final service stats as JSON")

    sbm = sub.add_parser(
        "submit", help="file run specs with the job service (non-blocking)"
    )
    sbm.add_argument("ids", nargs="+", metavar="EXPERIMENT",
                     help="experiment ids to submit")
    add_root(sbm)
    sbm.add_argument("--preset", choices=("fast", "full"), default="fast")
    sbm.add_argument("--seed", type=int, default=0)
    sbm.add_argument("--engine", choices=("batch", "loop", "exact"),
                     default=None)
    sbm.add_argument("--kernel", choices=KERNEL_CHOICES, default=None)
    sbm.add_argument("--threads", type=int, default=None)
    sbm.add_argument("--schedule", dest="graph_schedule",
                     choices=SCHEDULE_KINDS, default=None)
    sbm.add_argument("--switch-every", dest="switch_every", type=int,
                     default=None)
    sbm.add_argument("--snapshots", dest="snapshots", type=int, default=None)
    sbm.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="KEY=VALUE")
    sbm.add_argument("--trace", action="store_true",
                     help="execute under the tracer (telemetry on the artefact)")
    sbm.add_argument("--max-retries", dest="max_retries", type=int, default=3,
                     help="requeues before quarantine (default 3)")
    sbm.add_argument("--timeout-s", dest="timeout_s", type=float, default=None,
                     metavar="SECONDS",
                     help=(
                         "wall-clock deadline per job; a worker abandons "
                         "the run past it and the job retries with backoff"
                     ))
    sbm.add_argument("--wait", action="store_true",
                     help="block until completion and print the result")
    sbm.add_argument("--timeout", type=float, default=None,
                     help="with --wait: give up after this many seconds")
    sbm.add_argument("--markdown", action="store_true")
    sbm.add_argument("--json", action="store_true",
                     help="emit job ids (and, with --wait, results) as JSON")

    sts = sub.add_parser("status", help="report one job's lifecycle state")
    sts.add_argument("job", metavar="JOB", help="job id")
    add_root(sts)
    sts.add_argument("--json", action="store_true")

    fch = sub.add_parser("fetch", help="retrieve a completed job's result")
    fch.add_argument("job", metavar="JOB", help="job id")
    add_root(fch)
    fch.add_argument("--wait", action="store_true",
                     help="block until the job completes first")
    fch.add_argument("--timeout", type=float, default=None,
                     help="with --wait: give up after this many seconds")
    fch.add_argument("--markdown", action="store_true")
    fch.add_argument("--json", action="store_true",
                     help="emit the full RunResult payload as JSON")

    jbs = sub.add_parser("jobs", help="inspect/manage the job queue")
    jbs_sub = jbs.add_subparsers(dest="action", required=True)
    jls = jbs_sub.add_parser("list", help="all job records plus service stats")
    add_root(jls)
    jls.add_argument("--json", action="store_true")
    jcn = jbs_sub.add_parser("cancel", help="cancel a queued/coalesced job")
    jcn.add_argument("job", metavar="JOB", help="job id")
    add_root(jcn)
    jst = jbs_sub.add_parser(
        "stop", help="ask serve loops and workers on this root to exit"
    )
    add_root(jst)
    jtr = jbs_sub.add_parser(
        "trace", help="service timeline as a telemetry block / Chrome trace"
    )
    add_root(jtr)
    jtr.add_argument("--chrome", metavar="OUT", default=None,
                     help="write chrome://tracing JSON to OUT (else stdout)")

    fsk = sub.add_parser(
        "fsck",
        help="check (or repair) a service root's on-disk invariants",
    )
    add_root(fsk)
    fsk.add_argument("--cache", metavar="DIR", default=None,
                     help="also check an engine cache directory")
    fsk.add_argument("--repair", action="store_true",
                     help="fix findings in place (default: read-only report)")
    fsk.add_argument("--grace", type=float, default=5.0, metavar="SECONDS",
                     help=(
                         "ignore files younger than this, so live workers' "
                         "in-flight writes are not reported (default 5)"
                     ))
    fsk.add_argument("--json", action="store_true",
                     help="emit the full report as JSON")
    return parser


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _parse_overrides(pairs: Sequence[str]) -> Dict[str, str]:
    overrides: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"--set expects KEY=VALUE, got {pair!r}")
        overrides[key] = value
    return overrides


def _coerce_overrides(experiment_id: str, raw: Dict[str, str]) -> Dict[str, Any]:
    """Coerce CLI strings against the declared schema where possible.

    Unknown keys pass through untouched so resolution reports them with
    the experiment's full parameter list.
    """
    params = get_experiment(experiment_id).params
    return {
        key: params[key].coerce(key, value) if key in params else value
        for key, value in raw.items()
    }


def _fold_dynamic_flags(
    experiment_id: str, overrides: Dict[str, Any], args: argparse.Namespace
) -> Dict[str, Any]:
    """Fold ``--switch-every`` / ``--snapshots`` into override form.

    Like ``--engine``, each flag applies only to experiments that
    declare the corresponding parameter, and an explicit ``--set``
    override always wins.
    """
    params = get_experiment(experiment_id).params
    for name in ("switch_every", "snapshots"):
        value = getattr(args, name, None)
        if value is not None and name in params and name not in overrides:
            overrides[name] = params[name].coerce(name, value)
    return overrides


def _check_ids(ids: Sequence[str]) -> int:
    known = experiment_ids()
    unknown = [i for i in ids if i not in known]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print(f"known ids: {', '.join(known)}", file=sys.stderr)
        return 2
    return 0


def _print_result(result: RunResult, markdown: bool, elapsed: float) -> None:
    print(f"\n### {result.spec.experiment_id}  ({elapsed:.1f}s)\n")
    for table in result.tables:
        print(table.render_markdown() if markdown else table.render())
        print()


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _run_cmd(args: argparse.Namespace) -> int:
    ids = args.ids or experiment_ids()
    status = _check_ids(ids)
    if status:
        return status
    preset = "full" if args.full else args.preset
    store = ArtifactStore(args.save) if args.save else None
    # Build and fully resolve every spec before executing any: a bad
    # --set override must fail up front, not midway through a run-all.
    specs = []
    for experiment_id in ids:
        spec = RunSpec(
            experiment_id=experiment_id,
            preset=preset,
            seed=args.seed,
            engine=args.engine,
            kernel=args.kernel,
            threads=args.threads,
            graph_schedule=args.graph_schedule,
            overrides=_fold_dynamic_flags(
                experiment_id,
                _coerce_overrides(
                    experiment_id, _parse_overrides(args.overrides)
                ),
                args,
            ),
            markdown=args.markdown,
            trace=args.trace,
        )
        resolve_spec(spec)
        specs.append(spec)
    payloads = []
    for spec in specs:
        result = execute(spec)
        if args.json:
            payloads.append(result.to_payload())
        else:
            _print_result(result, args.markdown, result.provenance.wall_time_s)
        if store is not None:
            path = store.save(result)
            if not args.json:
                print(f"saved -> {path}")
    if args.json:
        print(json.dumps(payloads, indent=2, default=str))
    return 0


def _list_cmd(args: argparse.Namespace) -> int:
    experiments = all_experiments()
    if args.json:
        payload = [
            {
                "id": exp.id,
                "artefact": exp.artefact,
                "module": exp.module,
                "params": {
                    name: {
                        "kind": spec.kind_name,
                        "help": spec.help,
                        "default": (
                            "required" if spec.default is REQUIRED
                            else spec.default
                        ),
                        "choices": list(spec.choices),
                    }
                    for name, spec in exp.params.items()
                },
                "presets": exp.presets,
            }
            for exp in experiments
        ]
        print(json.dumps(payload, indent=2, default=str))
        return 0
    width = max(len(exp.id) for exp in experiments)
    for exp in experiments:
        print(f"{exp.id.ljust(width)}  {exp.artefact}")
    return 0


def _sweep_cmd(args: argparse.Namespace) -> int:
    status = _check_ids([args.id])
    if status:
        return status
    params = get_experiment(args.id).params
    axes: Dict[str, List[str]] = {}
    fixed: Dict[str, str] = {}
    for key, value in _parse_overrides(args.overrides).items():
        # For list-typed parameters a comma is part of one value
        # (`--set sizes=16,32` fixes sizes=[16, 32], same as under
        # `run`); axis points for them are separated by ';'
        # (`--set sizes=16,32;48,64` sweeps two size lists).
        is_sequence = key in params and params[key].kind_name in (
            "ints", "floats"
        )
        separator = ";" if is_sequence else ","
        values = [part for part in value.split(separator) if part != ""]
        if len(values) > 1:
            axes[key] = values
        else:
            fixed[key] = values[0] if values else value
    if not axes:
        raise ReproError(
            "sweep needs at least one multi-valued --set axis "
            "(e.g. --set n=24,36; use ';' between axis values of "
            "list-typed parameters)"
        )
    specs = expand_grid(
        args.id,
        axes,
        preset=args.preset,
        seed=args.seed,
        engine=args.engine,
        kernel=args.kernel,
        threads=args.threads,
        graph_schedule=args.graph_schedule,
        overrides=_fold_dynamic_flags(
            args.id, _coerce_overrides(args.id, fixed), args
        ),
    )
    store = ArtifactStore(args.save) if args.save else None
    results = []
    for spec in specs:
        result = execute(spec)
        results.append(result)
        if not args.json:
            _print_result(result, args.markdown, result.provenance.wall_time_s)
        if store is not None:
            path = store.save(result)
            if not args.json:
                print(f"saved -> {path}")
    summary = summary_table(axes, results)
    timings = _cell_timings(axes, results)
    if args.json:
        print(json.dumps(
            {
                "results": [result.to_payload() for result in results],
                "summary": summary.to_payload(),
                "timings": timings,
            },
            indent=2,
            default=str,
        ))
    else:
        print(summary.render_markdown() if args.markdown else summary.render())
        print()
        print(_render_cell_timings(timings))
    return 0


def _cell_timings(
    axes: Dict[str, List[str]], results: List[RunResult]
) -> List[dict]:
    """Per-cell wall times, slowest first — the adaptive governor's
    first real input signal (see ROADMAP)."""
    rows = []
    for result in results:
        resolved = result.provenance.parameters
        cell = {
            name: resolved.get(name, result.spec.overrides.get(name))
            for name in axes
        }
        rows.append({
            "cell": cell,
            "wall_time_s": result.provenance.wall_time_s,
            "key": result.spec.key(),
        })
    rows.sort(key=lambda row: -row["wall_time_s"])
    return rows


def _render_cell_timings(timings: List[dict], top: int = 8) -> str:
    total = sum(row["wall_time_s"] for row in timings)
    lines = [f"slowest cells ({total:.1f}s total):"]
    for row in timings[:top]:
        cell = ", ".join(f"{k}={v}" for k, v in row["cell"].items())
        share = row["wall_time_s"] / total if total else 0.0
        lines.append(
            f"  {row['wall_time_s']:>8.2f}s  {share:>4.0%}  {cell}"
        )
    return "\n".join(lines)


def _diff_operand(token: str, store: ArtifactStore | None) -> RunResult:
    path = Path(token)
    if path.is_file():
        return RunResult.from_json(path.read_text())
    if store is None:
        raise ArtifactError(
            f"{token!r} is not an artefact file; pass --store DIR to "
            "resolve store keys or experiment ids"
        )
    try:
        return store.load(token)
    except ArtifactError:
        # Fall back to experiment-id resolution only when the manifest
        # does not know the token as a key; a known key that fails to
        # load (e.g. its artefact file was deleted) is a real error.
        if any(record.key == token for record in store.records()):
            raise
        return store.latest(token)


def _trace_cmd(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store) if args.store else None
    result = _diff_operand(args.artifact, store)
    if result.telemetry is None:
        print(
            f"error: {args.artifact!r} carries no telemetry; re-run the "
            "experiment with --trace",
            file=sys.stderr,
        )
        return 2
    if args.action == "summary":
        from repro.obs import render_summary, summarize

        summary = summarize(result.telemetry, top=args.top)
        if args.json:
            print(json.dumps(summary, indent=2, default=str))
        else:
            print(f"trace of {result.spec.label()}")
            print()
            print(render_summary(summary))
        return 0
    from repro.obs import chrome_trace

    payload = json.dumps(chrome_trace(result.telemetry), default=str)
    if args.chrome:
        Path(args.chrome).write_text(payload)
        print(f"wrote -> {args.chrome}")
    else:
        print(payload)
    return 0


def _cache_cmd(args: argparse.Namespace) -> int:
    from repro.engine.cache import ResultCache

    directory = Path(args.dir)
    if not directory.is_dir():
        print(f"error: {args.dir!r} is not a directory", file=sys.stderr)
        return 2
    cache = ResultCache(directory)
    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(f"cache      {stats['directory']}")
            print(f"entries    {stats['entries']}")
            print(f"bytes      {stats['total_bytes']}")
            print(
                f"process    {stats['hits']} hits / {stats['misses']} misses, "
                f"{stats['bytes_read']}B read / "
                f"{stats['bytes_written']}B written"
            )
        return 0
    removed = cache.clear(older_than_seconds=args.older_than)
    scope = (
        f" older than {args.older_than:.0f}s"
        if args.older_than is not None
        else ""
    )
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}{scope}")
    return 0


def _bench_cmd(args: argparse.Namespace) -> int:
    from repro.engine.calibration import calibrate

    table, path = calibrate(
        smoke=args.smoke,
        out=Path(args.out) if args.out else None,
        rounds=args.rounds,
        repeats=args.repeats,
    )
    if args.json:
        payload = table.to_payload()
        payload["path"] = str(path)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"calibrated {len(table.cells)} cell(s) -> {path}")
    for cell in table.cells:
        rates = ", ".join(
            f"{kernel}={rate:.3g}" if rate is not None else f"{kernel}=n/a"
            for kernel, rate in sorted(cell.rates.items())
        )
        print(
            f"  {cell.kind:<4} k={cell.k} n={cell.n} B={cell.replicas}: "
            f"{rates}  (replica-rounds/s)"
        )
    return 0


# ----------------------------------------------------------------------
# Job service subcommands
# ----------------------------------------------------------------------
def _serve_cmd(args: argparse.Namespace) -> int:
    from repro.jobs import Orchestrator

    orchestrator = Orchestrator(
        args.root,
        workers=args.workers,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    try:
        stats = orchestrator.serve(
            until_idle=args.until_idle, timeout=args.timeout
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive
        orchestrator.shutdown()
        stats = orchestrator.queue.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        states = ", ".join(
            f"{state}={count}"
            for state, count in sorted(stats["states"].items())
        ) or "(none)"
        print(
            f"served {stats['jobs']} job(s): {states}; "
            f"deduped={stats['deduped']} retried={stats['retried']}"
        )
    return 0


def _submit_cmd(args: argparse.Namespace) -> int:
    from repro.jobs import submit

    status = _check_ids(args.ids)
    if status:
        return status
    # Validate every spec up front, exactly as `run` does: a bad
    # override must fail before anything enters the queue.
    specs = []
    for experiment_id in args.ids:
        spec = RunSpec(
            experiment_id=experiment_id,
            preset=args.preset,
            seed=args.seed,
            engine=args.engine,
            kernel=args.kernel,
            threads=args.threads,
            graph_schedule=args.graph_schedule,
            overrides=_fold_dynamic_flags(
                experiment_id,
                _coerce_overrides(
                    experiment_id, _parse_overrides(args.overrides)
                ),
                args,
            ),
            markdown=args.markdown,
            trace=args.trace,
            timeout_s=args.timeout_s,
        )
        resolve_spec(spec)
        specs.append(spec)
    handles = [
        submit(spec, root=args.root, max_retries=args.max_retries)
        for spec in specs
    ]
    payloads = []
    for handle in handles:
        job = handle.status(follow=False)
        entry = {
            "job": job.id,
            "key": job.key,
            "state": job.state,
            "coalesced_into": job.coalesced_into,
        }
        if args.json and not args.wait:
            payloads.append(entry)
        elif not args.json:
            note = (
                f" (coalesced into {job.coalesced_into})"
                if job.coalesced_into else ""
            )
            print(f"submitted {job.id}  {job.spec.label()}{note}")
    if args.wait:
        for handle in handles:
            result = handle.wait(timeout=args.timeout)
            if args.json:
                payloads.append(result.to_payload())
            else:
                _print_result(
                    result, args.markdown, result.provenance.wall_time_s
                )
    if args.json:
        print(json.dumps(payloads, indent=2, default=str))
    return 0


def _job_payload(queue: "JobQueue", job: "Job") -> dict:  # noqa: F821
    heartbeat = queue.read_heartbeat(job.id)
    payload = job.to_payload()
    payload["heartbeat"] = heartbeat
    return payload


def _status_cmd(args: argparse.Namespace) -> int:
    from repro.jobs import JobQueue

    queue = JobQueue(args.root)
    job = queue.get(args.job)
    resolved = queue.resolve(job)
    if args.json:
        payload = _job_payload(queue, job)
        if resolved.id != job.id:
            payload["resolved"] = _job_payload(queue, resolved)
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    print(f"job        {job.id}")
    print(f"spec       {job.spec.label()}")
    print(f"state      {job.state}"
          + (f" (follows {resolved.id}: {resolved.state})"
             if resolved.id != job.id else ""))
    print(f"attempts   {resolved.attempts}/{resolved.max_retries}")
    if resolved.error:
        print(f"error      {resolved.error.strip().splitlines()[-1]}")
    heartbeat = queue.read_heartbeat(resolved.id)
    if heartbeat:
        age = time.time() - heartbeat["t"]
        steps = heartbeat.get("counters", {}).get("engine.replica_steps")
        progress = f", {steps:.0f} replica-steps" if steps else ""
        print(f"worker     pid {heartbeat['pid']}, heartbeat {age:.1f}s ago"
              f"{progress}")
    return 0


def _fetch_cmd(args: argparse.Namespace) -> int:
    from repro.jobs import JobHandle, JobQueue

    handle = JobHandle(JobQueue(args.root), args.job)
    result = (
        handle.wait(timeout=args.timeout) if args.wait else handle.result()
    )
    if args.json:
        print(json.dumps(result.to_payload(), indent=2, default=str))
    else:
        _print_result(result, args.markdown, result.provenance.wall_time_s)
    return 0


def _jobs_cmd(args: argparse.Namespace) -> int:
    from repro.jobs import JobQueue, jobs_telemetry

    queue = JobQueue(args.root)
    if args.action == "list":
        jobs = queue.jobs()
        stats = queue.stats()
        if args.json:
            print(json.dumps(
                {
                    "jobs": [_job_payload(queue, job) for job in jobs],
                    "stats": stats,
                },
                indent=2, sort_keys=True, default=str,
            ))
            return 0
        if not jobs:
            print(f"no jobs under {queue.root}")
            return 0
        for job in jobs:
            target = f" -> {job.coalesced_into}" if job.coalesced_into else ""
            print(
                f"{job.id}  {job.state:<11}  attempts={job.attempts}  "
                f"{job.spec.label()}{target}"
            )
        states = ", ".join(
            f"{state}={count}"
            for state, count in sorted(stats["states"].items())
        )
        print(f"\n{stats['jobs']} job(s): {states}; "
              f"deduped={stats['deduped']} retried={stats['retried']}")
        return 0
    if args.action == "cancel":
        job = queue.cancel(args.job)
        print(f"cancelled {job.id}")
        return 0
    if args.action == "stop":
        queue.request_stop()
        print(f"stop requested -> {queue.stop_path}")
        return 0
    # action == "trace": the service timeline through the obs tooling.
    telemetry = jobs_telemetry(queue)
    if args.chrome:
        from repro.obs import chrome_trace

        Path(args.chrome).write_text(
            json.dumps(chrome_trace(telemetry), default=str)
        )
        print(f"wrote -> {args.chrome}")
    else:
        print(json.dumps(telemetry, indent=2, default=str))
    return 0


def _fsck_cmd(args: argparse.Namespace) -> int:
    from repro.jobs import fsck

    report = fsck(
        args.root,
        cache_dir=args.cache,
        repair=args.repair,
        grace_s=args.grace,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
        return 0 if report["clean"] else 1
    for finding in report["findings"]:
        print(finding)
    verdict = "clean" if report["clean"] else "NOT clean"
    tail = f", repaired {report['repaired']}" if args.repair else ""
    print(
        f"fsck {args.root}: {len(report['findings'])} finding(s){tail} "
        f"-> {verdict}"
    )
    return 0 if report["clean"] else 1


def _diff_cmd(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store) if args.store else None
    left = _diff_operand(args.left, store)
    right = _diff_operand(args.right, store)
    problems = diff_results(left, right, rel_tol=args.rel_tol)
    if args.json:
        print(json.dumps({"differences": problems}, indent=2))
    else:
        for problem in problems:
            print(problem)
        if not problems:
            print(
                f"match: {left.spec.label()} vs {right.spec.label()} "
                f"(rel_tol={args.rel_tol})"
            )
    return 1 if problems else 0


# ----------------------------------------------------------------------
# Legacy shim
# ----------------------------------------------------------------------
def _legacy_main(argv: Sequence[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for key in experiment_ids():
            print(key)
        return 0

    ids = args.ids or experiment_ids()
    status = _check_ids(ids)
    if status:
        return status

    for experiment_id in ids:
        spec = RunSpec(
            experiment_id=experiment_id,
            preset="full" if args.slow else "fast",
            seed=args.seed,
            engine=args.engine,
            kernel=args.kernel,
            threads=args.threads,
            markdown=args.markdown,
        )
        started = time.perf_counter()
        result = execute(spec)
        _print_result(result, args.markdown, time.perf_counter() - started)
        if args.save:
            path = save_bundle(
                ResultBundle(
                    experiment_id=experiment_id,
                    seed=args.seed,
                    fast=not args.slow,
                    tables=list(result.tables),
                ),
                args.save,
            )
            print(f"saved -> {path}")
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
#: Legacy flags that consume the following token as their value.
_VALUE_FLAGS = ("--seed", "--engine", "--kernel", "--threads", "--save")


def _is_legacy(argv: Sequence[str]) -> bool:
    """Pre-subcommand invocations: first positional is an experiment id
    (or there is none at all — the historical run-everything default).
    Value-taking flags are skipped with their value, so ``--seed 3 run``
    routes to the subcommand parser (which rejects the misplaced flag
    with a usage message) instead of reading ``3`` as a positional."""
    skip_value = False
    for token in argv:
        if skip_value:
            skip_value = False
            continue
        if token.startswith("-"):
            skip_value = token in _VALUE_FLAGS
            continue
        return token not in SUBCOMMANDS
    return True


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if _is_legacy(argv):
            return _legacy_main(argv)
        args = build_cli_parser().parse_args(argv)
        handler = {
            "run": _run_cmd,
            "list": _list_cmd,
            "sweep": _sweep_cmd,
            "diff": _diff_cmd,
            "trace": _trace_cmd,
            "cache": _cache_cmd,
            "bench": _bench_cmd,
            "serve": _serve_cmd,
            "submit": _submit_cmd,
            "status": _status_cmd,
            "fetch": _fetch_cmd,
            "jobs": _jobs_cmd,
            "fsck": _fsck_cmd,
        }[args.command]
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
