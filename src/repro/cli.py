"""Command-line entry point: ``python -m repro.cli [ids...]``.

Runs the experiments of DESIGN.md by id (default: all) and prints their
result tables.  ``--slow`` switches to the larger EXPERIMENTS.md-scale
parameters; ``--markdown`` emits GitHub-flavoured tables; ``--list``
shows the available ids.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Sequence

from repro.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce experiments from 'Distributed Averaging in Opinion "
            "Dynamics' (PODC 2023)"
        ),
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. EXP-F1 EXP-T222); default: all",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--slow",
        action="store_true",
        help="use the full-scale parameters recorded in EXPERIMENTS.md",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--engine",
        choices=("batch", "loop"),
        default="batch",
        help=(
            "replica simulator for Monte-Carlo experiments: the vectorized "
            "batch engine (default) or the legacy per-replica loop"
        ),
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render tables as markdown"
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="archive result tables as JSON bundles under DIR",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for key in EXPERIMENTS:
            print(key)
        return 0

    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print(f"known ids: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for experiment_id in ids:
        runner = EXPERIMENTS[experiment_id]
        kwargs = {"fast": not args.slow, "seed": args.seed}
        # Runners that expose an engine choice get the CLI's; the rest
        # do no replica sampling, so the flag has nothing to select.
        if "engine" in inspect.signature(runner).parameters:
            kwargs["engine"] = args.engine
        started = time.perf_counter()
        tables = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(f"\n### {experiment_id}  ({elapsed:.1f}s)\n")
        for table in tables:
            print(table.render_markdown() if args.markdown else table.render())
            print()
        if args.save:
            from repro.io import ResultBundle, save_bundle

            path = save_bundle(
                ResultBundle(
                    experiment_id=experiment_id,
                    seed=args.seed,
                    fast=not args.slow,
                    tables=list(tables),
                ),
                args.save,
            )
            print(f"saved -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
