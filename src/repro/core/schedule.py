"""Recorded selection sequences ``chi`` and their reversal.

Proposition 5.1 couples the Averaging Process with the Diffusion Process by
running one of them *backwards in time* on the same node-selection sequence
``chi = (chi(1), ..., chi(T))`` where ``chi(t) = (u(t), S(t))``.  To make
that coupling executable (and testable to machine precision), the
simulators can record every step into a :class:`Schedule`, which the dual
processes replay, forwards or reversed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.exceptions import ScheduleError
from repro.graphs.adjacency import Adjacency


@dataclass(frozen=True)
class SelectionStep:
    """One step ``chi(t) = (u, S)`` of a selection sequence.

    ``node`` is the updating node ``u(t)``; ``sample`` is the tuple of
    selected neighbours ``S(t)`` (size ``k`` for the NodeModel, size 1 for
    the EdgeModel).  A lazy no-op step is represented by an empty sample.
    """

    node: int
    sample: Tuple[int, ...]

    @property
    def is_noop(self) -> bool:
        """Whether this step performed no update (lazy coin came up tails)."""
        return len(self.sample) == 0


def draw_node_selection(
    adjacency: Adjacency, k: int, rng: np.random.Generator
) -> SelectionStep:
    """Draw one fresh NodeModel-law selection ``(u, S)``.

    A uniform node plus a uniform ``k``-subset of its neighbours —
    the selection law shared by the Averaging Process and all of its
    Section-5 duals.  This is the single scalar home of the draw the
    dual process facades use for standalone (non-replay) stepping.
    """
    node = int(rng.integers(adjacency.n))
    start = adjacency.offsets[node]
    degree = int(adjacency.offsets[node + 1] - start)
    if k == 1:
        sample: Tuple[int, ...] = (
            int(adjacency.neighbors[start + int(rng.integers(degree))]),
        )
    elif k == degree:
        sample = tuple(
            int(v) for v in adjacency.neighbors[start : start + degree]
        )
    else:
        pool = adjacency.neighbors[start : start + degree]
        sample = tuple(
            int(v) for v in rng.choice(pool, size=k, replace=False)
        )
    return SelectionStep(node, sample)


class SelectionReplayMixin:
    """Replay plumbing shared by every process that consumes schedules.

    A host class only needs ``step_with(step)``; :meth:`replay` (and
    the recorded-sequence semantics: no-op steps are identity maps that
    still advance time) then come for free.  Deduplicates the loop that
    used to be copied across the three ``repro.dual`` process classes.
    """

    def step_with(self, step: SelectionStep) -> None:  # pragma: no cover
        raise NotImplementedError

    def replay(self, schedule: "Schedule") -> None:
        """Apply an entire recorded selection sequence in order."""
        for step in schedule:
            self.step_with(step)


class Schedule:
    """An ordered sequence of :class:`SelectionStep` records.

    Supports appending during simulation, iteration, reversal (for the
    duality coupling) and validation against a graph.
    """

    def __init__(self, steps: Iterable[SelectionStep] = ()) -> None:
        self._steps: list[SelectionStep] = list(steps)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[SelectionStep]:
        return iter(self._steps)

    def __getitem__(self, index) -> SelectionStep:
        return self._steps[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._steps == other._steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(len={len(self._steps)})"

    # ------------------------------------------------------------------
    # Mutation and derivation
    # ------------------------------------------------------------------
    def append(self, node: int, sample: Sequence[int]) -> None:
        """Record step ``(node, sample)``."""
        self._steps.append(SelectionStep(int(node), tuple(int(s) for s in sample)))

    def reversed(self) -> "Schedule":
        """The reverse sequence ``chi^R`` used by the Diffusion Process."""
        return Schedule(reversed(self._steps))

    def without_noops(self) -> "Schedule":
        """Drop lazy no-op steps (they are identity maps in both processes)."""
        return Schedule(s for s in self._steps if not s.is_noop)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, adjacency: Adjacency, k: int | None = None) -> None:
        """Check every step is feasible on ``adjacency``.

        * the updating node exists,
        * every sampled node is a neighbour of the updating node,
        * samples contain no duplicates (sampling is without replacement),
        * if ``k`` is given, every non-noop sample has size exactly ``k``.

        Raises :class:`ScheduleError` on the first violation.
        """
        n = adjacency.n
        for t, step in enumerate(self._steps, start=1):
            if not 0 <= step.node < n:
                raise ScheduleError(f"step {t}: node {step.node} out of range")
            if step.is_noop:
                continue
            if k is not None and len(step.sample) != k:
                raise ScheduleError(
                    f"step {t}: sample size {len(step.sample)} != k = {k}"
                )
            if len(set(step.sample)) != len(step.sample):
                raise ScheduleError(f"step {t}: sample {step.sample} has duplicates")
            for v in step.sample:
                if not adjacency.has_edge(step.node, v):
                    raise ScheduleError(
                        f"step {t}: {v} is not a neighbour of {step.node}"
                    )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten to ``(nodes, sample_offsets, samples)`` NumPy arrays."""
        nodes = np.array([s.node for s in self._steps], dtype=np.int64)
        sizes = np.array([len(s.sample) for s in self._steps], dtype=np.int64)
        offsets = np.zeros(len(self._steps) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        samples = np.array(
            [v for s in self._steps for v in s.sample], dtype=np.int64
        )
        return nodes, offsets, samples

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, Sequence[int]]]) -> "Schedule":
        """Build a schedule from ``(node, sample)`` pairs."""
        schedule = cls()
        for node, sample in pairs:
            schedule.append(node, sample)
        return schedule
