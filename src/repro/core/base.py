"""Shared machinery of the two asynchronous averaging processes.

Both models perform, at each time step, the unilateral update

    xi_u(t) = alpha * xi_u(t-1) + (1 - alpha)/k * sum_i xi_{v_i}(t-1)

for a selected node ``u`` and neighbour sample ``v_1..v_k``; they differ
only in *how* ``(u, S)`` is drawn (uniform node + uniform k-subset for the
NodeModel, uniform directed edge for the EdgeModel).
:class:`AveragingProcess` implements everything else: the update, the
incremental potential/martingale tracking, optional laziness (Section 4),
optional schedule recording (for the duality of Section 5), and replay.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.core.potentials import PotentialTracker, discrepancy
from repro.core.schedule import Schedule, SelectionStep
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class StepRecord:
    """What happened in one executed step.

    ``node`` and ``sample`` echo the selection ``chi(t)``; ``old_value`` and
    ``new_value`` give the unilateral update at ``node``.  Lazy no-op steps
    produce ``sample == ()`` and equal old/new values.
    """

    t: int
    node: int
    sample: tuple[int, ...]
    old_value: float
    new_value: float

    @property
    def is_noop(self) -> bool:
        return len(self.sample) == 0


class AveragingProcess(abc.ABC):
    """Base class for the NodeModel and the EdgeModel.

    Parameters
    ----------
    graph:
        A connected undirected graph (``networkx.Graph`` or pre-frozen
        :class:`Adjacency`).
    initial_values:
        The vector ``xi(0)`` of length ``n``.
    alpha:
        Self-weight ``alpha`` in ``(0, 1)``.  The boundary ``alpha = 0`` is
        additionally admitted so the voter-model special case
        (Definition 2.1 with ``k = 1``) can be exercised.
    seed:
        Seed / generator for the process's random choices.
    lazy:
        If set, each step first flips a fair coin and performs no update on
        tails — the lazy variant of Section 4 whose transition structure
        matches the lazy walk matrix ``P``.
    record_schedule:
        If set, every step's selection is appended to :attr:`schedule`, to
        be replayed (reversed) by the dual Diffusion Process.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
        alpha: float,
        seed: SeedLike = None,
        lazy: bool = False,
        record_schedule: bool = False,
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        self.adjacency = (
            graph if isinstance(graph, Adjacency) else Adjacency.from_graph(graph)
        )
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (self.adjacency.n,):
            raise ParameterError(
                f"initial_values must have shape ({self.adjacency.n},), "
                f"got {values.shape}"
            )
        self.alpha = float(alpha)
        self.lazy = bool(lazy)
        self.rng = as_generator(seed)
        self._initial = values.copy()
        self.values = values
        self.t = 0
        self._pi = self.adjacency.stationary_pi()
        self._tracker = PotentialTracker(self._pi, self.values)
        self.schedule: Optional[Schedule] = Schedule() if record_schedule else None

    # ------------------------------------------------------------------
    # Selection: the only model-specific ingredient
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _select(self) -> tuple[int, np.ndarray]:
        """Draw ``(u, S)`` for the next step according to the model's law."""

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Execute one time step and return its :class:`StepRecord`."""
        self.t += 1
        if self.lazy and self.rng.random() < 0.5:
            node = int(self.rng.integers(self.adjacency.n))
            if self.schedule is not None:
                self.schedule.append(node, ())
            value = float(self.values[node])
            return StepRecord(self.t, node, (), value, value)

        node, sample = self._select()
        record = self._apply(node, sample)
        if self.schedule is not None:
            self.schedule.append(node, sample)
        return record

    def _apply(self, node: int, sample: np.ndarray) -> StepRecord:
        """Apply the unilateral averaging update at ``node``."""
        old = float(self.values[node])
        neighbour_mean = float(self.values[sample].mean())
        new = self.alpha * old + (1.0 - self.alpha) * neighbour_mean
        self.values[node] = new
        self._tracker.update(node, old, new, self.values)
        return StepRecord(self.t, node, tuple(int(v) for v in sample), old, new)

    def run(self, steps: int) -> None:
        """Execute ``steps`` further time steps.

        Dispatches to the model's batched fast loop when no schedule is
        being recorded; behaviour (in law) is identical to calling
        :meth:`step` repeatedly.
        """
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        self._fast_loop(steps, epsilon=None)

    def run_until_phi(self, epsilon: float, max_steps: int) -> int | None:
        """Run until ``phi <= epsilon`` or ``max_steps`` elapse.

        Returns the number of steps executed when the threshold was hit,
        or ``None`` if the budget ran out first.
        """
        if epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {epsilon}")
        if max_steps < 0:
            raise ParameterError(f"max_steps must be non-negative, got {max_steps}")
        if self.is_converged(epsilon):
            return 0
        executed = self._fast_loop(max_steps, epsilon=epsilon)
        return executed if self.is_converged(epsilon) else None

    def _fast_loop(self, steps: int, epsilon: float | None) -> int:
        """Generic step loop; subclasses override with batched versions.

        Returns the number of steps actually executed (may stop early when
        ``epsilon`` is given and reached).
        """
        executed = 0
        while executed < steps:
            self.step()
            executed += 1
            if epsilon is not None and self._tracker.phi <= epsilon:
                break
        return executed

    def replay(self, schedule: Schedule) -> None:
        """Apply a recorded selection sequence deterministically.

        Used by the duality experiments: the same ``chi`` drives the
        Averaging Process forward while the Diffusion Process consumes
        ``chi`` reversed (Lemma 5.2).
        """
        for step in schedule:
            self.t += 1
            if step.is_noop:
                continue
            self._apply(step.node, np.asarray(step.sample, dtype=np.int64))

    def reset(self, values: Sequence[float] | None = None) -> None:
        """Restore ``xi(0)`` (or set a new initial vector) and ``t = 0``."""
        if values is not None:
            values = np.asarray(values, dtype=np.float64).copy()
            if values.shape != (self.adjacency.n,):
                raise ParameterError(
                    f"values must have shape ({self.adjacency.n},), got {values.shape}"
                )
            self._initial = values.copy()
        self.values = self._initial.copy()
        self.t = 0
        self._tracker.reset(self.values)
        if self.schedule is not None:
            self.schedule = Schedule()

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.adjacency.n

    @property
    def pi(self) -> np.ndarray:
        """Stationary distribution ``pi_u = d_u / 2m`` (read-only copy)."""
        return self._pi.copy()

    @property
    def phi(self) -> float:
        """Current potential ``phi(xi(t))`` (Eq. 3), tracked incrementally."""
        return self._tracker.phi

    @property
    def simple_average(self) -> float:
        """``Avg(t) = (1/n) sum_u xi_u(t)`` (Eq. 1)."""
        return float(self.values.mean())

    @property
    def weighted_average(self) -> float:
        """``M(t) = sum_u d_u/(2m) xi_u(t)`` (Eq. 1) — the NodeModel martingale."""
        return self._tracker.weighted_mean

    @property
    def discrepancy(self) -> float:
        """``K(t) = max_u xi_u(t) - min_u xi_u(t)``."""
        return discrepancy(self.values)

    def is_converged(self, epsilon: float) -> bool:
        """Whether the state is ``eps``-converged, i.e. ``phi(xi(t)) <= eps``."""
        return self.phi <= epsilon
