"""The NodeModel (Definition 2.1).

At each step a node ``u`` is chosen uniformly at random; ``u`` samples
``k`` of its neighbours uniformly at random *without replacement* and
updates unilaterally to

    xi_u(t) = alpha * xi_u(t-1) + (1 - alpha)/k * sum_{i=1}^{k} xi_{v_i}(t-1).

Special cases: ``k = 1, alpha = 0`` is the voter model with continuous
opinions; on regular graphs with ``k = 1`` the NodeModel coincides in law
with the EdgeModel.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.base import AveragingProcess
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike


class NodeModel(AveragingProcess):
    """Asynchronous node-driven averaging (Definition 2.1).

    Parameters beyond :class:`~repro.core.base.AveragingProcess`:

    k:
        Neighbour fan-in, ``1 <= k <= d_min`` (the sample is drawn without
        replacement, so a node can never request more neighbours than it
        has; requiring ``k <= d_min`` keeps the model well defined at
        every node, matching the paper's setup).
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
        alpha: float,
        k: int = 1,
        seed: SeedLike = None,
        lazy: bool = False,
        record_schedule: bool = False,
    ) -> None:
        super().__init__(
            graph,
            initial_values,
            alpha,
            seed=seed,
            lazy=lazy,
            record_schedule=record_schedule,
        )
        if int(k) != k or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k}")
        k = int(k)
        if k > self.adjacency.d_min:
            raise ParameterError(
                f"k = {k} exceeds the minimum degree {self.adjacency.d_min}; "
                "the NodeModel samples k distinct neighbours"
            )
        self.k = k

    def _fast_loop(self, steps: int, epsilon: float | None) -> int:
        """Batched inner loop (identical law, ~10x fewer RNG calls).

        Falls back to the generic loop when a schedule is being recorded
        (records need per-step bookkeeping anyway).
        """
        if self.schedule is not None:
            return super()._fast_loop(steps, epsilon)

        adj = self.adjacency
        neighbors = adj.neighbors.tolist()
        offsets = adj.offsets.tolist()
        degrees = adj.degrees.tolist()
        pi = self._pi.tolist()
        values = self.values
        rng = self.rng
        alpha = self.alpha
        beta = 1.0 - alpha
        k = self.k
        lazy = self.lazy
        s1, s2 = self._tracker.moments

        n = adj.n
        executed = 0
        batch = 8192
        stop = False
        while executed < steps and not stop:
            size = min(batch, steps - executed)
            nodes = rng.integers(n, size=size).tolist()
            coins = rng.random(size).tolist() if lazy else None
            picks = rng.random(size * max(k, 1)).tolist()
            for i in range(size):
                executed += 1
                if coins is not None and coins[i] < 0.5:
                    continue
                u = nodes[i]
                start = offsets[u]
                degree = degrees[u]
                if k == 1:
                    v = neighbors[start + int(picks[i] * degree)]
                    neighbour_mean = float(values[v])
                elif k == degree:
                    total = 0.0
                    for j in range(degree):
                        total += float(values[neighbors[start + j]])
                    neighbour_mean = total / degree
                else:
                    # k distinct indices in [0, degree): rejection sampling
                    # on pre-drawn floats (uniform over ordered k-tuples of
                    # distinct indices == uniform k-subset for our mean).
                    base = i * k
                    chosen = [int(picks[base + j] * degree) for j in range(k)]
                    while len(set(chosen)) != k:
                        chosen = [int(f * degree) for f in rng.random(k)]
                    total = 0.0
                    for j in chosen:
                        total += float(values[neighbors[start + j]])
                    neighbour_mean = total / k
                old = float(values[u])
                new = alpha * old + beta * neighbour_mean
                values[u] = new
                weight = pi[u]
                s1 += weight * (new - old)
                s2 += weight * (new * new - old * old)
                if epsilon is not None and s2 - s1 * s1 <= epsilon:
                    stop = True
                    break
            # Resynchronise the exact moments once per batch to kill drift.
            self._tracker.reset(values)
            s1, s2 = self._tracker.moments
        self.t += executed
        return executed

    def _select(self) -> tuple[int, np.ndarray]:
        adj = self.adjacency
        rng = self.rng
        node = int(rng.integers(adj.n))
        start = adj.offsets[node]
        degree = int(adj.offsets[node + 1] - start)
        if self.k == 1:
            # Fast path: one uniform neighbour.
            sample = adj.neighbors[start + int(rng.integers(degree))]
            return node, np.array([sample], dtype=np.int64)
        if self.k == degree:
            return node, adj.neighbors[start : start + degree]
        pool = adj.neighbors[start : start + degree]
        return node, rng.choice(pool, size=self.k, replace=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NodeModel(n={self.n}, alpha={self.alpha}, k={self.k}, "
            f"lazy={self.lazy}, t={self.t})"
        )
