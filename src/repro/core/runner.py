"""Trajectory recording and convergence-value sampling.

Two usage patterns recur in the experiments:

* record a time series of observables (potential, discrepancy, averages)
  while a process runs — :func:`record_trajectory`;
* run a fresh replica to consensus and return the convergence value ``F``
  — :func:`sample_convergence_value`, the primitive under the Monte-Carlo
  variance experiments (Theorem 2.2(2)/2.4(2)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.base import AveragingProcess
from repro.core.convergence import run_to_consensus
from repro.exceptions import ParameterError


@dataclass
class Trajectory:
    """Sampled time series of a single run.

    All arrays are aligned: entry ``i`` was observed at step ``times[i]``.
    ``weighted_average`` is the NodeModel martingale ``M(t)``;
    ``simple_average`` is the EdgeModel martingale ``Avg(t)``.
    """

    times: np.ndarray
    phi: np.ndarray
    discrepancy: np.ndarray
    simple_average: np.ndarray
    weighted_average: np.ndarray

    def __len__(self) -> int:
        return len(self.times)


def record_trajectory(
    process: AveragingProcess,
    steps: int,
    sample_every: int = 1,
    include_initial: bool = True,
) -> Trajectory:
    """Run ``steps`` steps, sampling observables every ``sample_every`` steps."""
    if steps < 0:
        raise ParameterError(f"steps must be non-negative, got {steps}")
    if sample_every < 1:
        raise ParameterError(f"sample_every must be positive, got {sample_every}")

    times: list[int] = []
    phis: list[float] = []
    spreads: list[float] = []
    simple: list[float] = []
    weighted: list[float] = []

    def observe() -> None:
        times.append(process.t)
        phis.append(process.phi)
        spreads.append(process.discrepancy)
        simple.append(process.simple_average)
        weighted.append(process.weighted_average)

    if include_initial:
        observe()
    executed = 0
    while executed < steps:
        chunk = min(sample_every, steps - executed)
        process.run(chunk)
        executed += chunk
        observe()

    return Trajectory(
        times=np.asarray(times, dtype=np.int64),
        phi=np.asarray(phis),
        discrepancy=np.asarray(spreads),
        simple_average=np.asarray(simple),
        weighted_average=np.asarray(weighted),
    )


def sample_convergence_value(
    make_process: Callable[[], AveragingProcess],
    discrepancy_tol: float = 1e-9,
    max_steps: int = 50_000_000,
) -> float:
    """Build a fresh process and run it to consensus, returning ``F``.

    ``make_process`` must return a *new* process each call (with its own
    independent randomness) so that repeated calls give i.i.d. samples of
    the random variable ``F``.
    """
    process = make_process()
    result = run_to_consensus(
        process, discrepancy_tol=discrepancy_tol, max_steps=max_steps
    )
    return result.value
