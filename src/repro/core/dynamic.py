"""Averaging on dynamic graphs.

Section 3 cites voter-model analyses on *dynamic* graphs ([12]); the
averaging processes are equally well defined when the graph changes
between steps, as long as every snapshot is connected.  This module runs
the NodeModel / EdgeModel over a (cyclic or random) sequence of graph
snapshots, switching every ``switch_every`` steps.

Two structural facts carry over and are tested:

* the convex-hull and discrepancy monotonicity invariants hold per step
  regardless of the snapshot, so the process still converges whenever
  snapshots keep being connected;
* if *all snapshots are regular with the same degree*, ``pi`` is uniform
  in every snapshot, so the simple average remains a martingale across
  switches; with heterogeneous degrees the martingale property is lost —
  the dynamic analogue of the paper's regular/irregular dichotomy.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.edge_model import EdgeModel
from repro.core.node_model import NodeModel
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class DynamicAveraging:
    """NodeModel/EdgeModel over a rotating sequence of graph snapshots.

    Parameters
    ----------
    snapshots:
        Non-empty sequence of connected graphs on the same node set
        ``0..n-1``.
    initial_values:
        ``xi(0)``.
    model:
        ``"node"`` or ``"edge"``.
    alpha, k:
        Model parameters (``k`` only for the NodeModel; it must not
        exceed any snapshot's minimum degree).
    switch_every:
        Steps executed on a snapshot before moving on.
    shuffle:
        If set, the next snapshot is drawn uniformly at random instead of
        cyclically.
    """

    def __init__(
        self,
        snapshots: Sequence[nx.Graph | Adjacency],
        initial_values: Sequence[float],
        model: str = "node",
        alpha: float = 0.5,
        k: int = 1,
        switch_every: int = 100,
        shuffle: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if not snapshots:
            raise ParameterError("at least one snapshot is required")
        if model not in ("node", "edge"):
            raise ParameterError(f"model must be 'node' or 'edge', got {model!r}")
        if switch_every < 1:
            raise ParameterError(f"switch_every must be positive, got {switch_every}")
        self.adjacencies = [
            s if isinstance(s, Adjacency) else Adjacency.from_graph(s)
            for s in snapshots
        ]
        n = self.adjacencies[0].n
        if any(a.n != n for a in self.adjacencies):
            raise ParameterError("all snapshots must share the same node set")
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape != (n,):
            raise ParameterError(f"initial_values must have shape ({n},)")
        if model == "node":
            min_degree = min(a.d_min for a in self.adjacencies)
            if not 1 <= k <= min_degree:
                raise ParameterError(
                    f"k must be in [1, {min_degree}] for every snapshot, got {k}"
                )
        self.model = model
        self.alpha = float(alpha)
        self.k = int(k)
        self.switch_every = int(switch_every)
        self.shuffle = bool(shuffle)
        self.rng = as_generator(seed)
        self.values = values
        self.t = 0
        self._snapshot_index = 0
        self._process = self._build_process(self.adjacencies[0])

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def current_snapshot(self) -> int:
        """Index of the snapshot currently in use."""
        return self._snapshot_index

    @property
    def discrepancy(self) -> float:
        return float(self.values.max() - self.values.min())

    @property
    def simple_average(self) -> float:
        return float(self.values.mean())

    def _build_process(self, adjacency: Adjacency):
        if self.model == "node":
            return NodeModel(
                adjacency, self.values, alpha=self.alpha, k=self.k, seed=self.rng
            )
        return EdgeModel(adjacency, self.values, alpha=self.alpha, seed=self.rng)

    def _advance_snapshot(self) -> None:
        if self.shuffle:
            self._snapshot_index = int(self.rng.integers(len(self.adjacencies)))
        else:
            self._snapshot_index = (self._snapshot_index + 1) % len(self.adjacencies)
        self._process = self._build_process(self.adjacencies[self._snapshot_index])

    def run(self, steps: int) -> None:
        """Execute ``steps`` steps, rotating snapshots as configured."""
        if steps < 0:
            raise ParameterError(f"steps must be non-negative, got {steps}")
        executed = 0
        while executed < steps:
            remaining_on_snapshot = self.switch_every - (self.t % self.switch_every)
            chunk = min(remaining_on_snapshot, steps - executed)
            self._process.run(chunk)
            self.values = self._process.values
            self.t += chunk
            executed += chunk
            if self.t % self.switch_every == 0:
                self._advance_snapshot()

    def run_to_consensus(
        self, discrepancy_tol: float = 1e-9, max_steps: int = 50_000_000
    ) -> tuple[float, int]:
        """Run until the spread falls below ``discrepancy_tol``."""
        if discrepancy_tol <= 0:
            raise ParameterError("discrepancy_tol must be positive")
        start = self.t
        while self.discrepancy > discrepancy_tol:
            if self.t - start >= max_steps:
                raise ConvergenceError(
                    f"discrepancy {self.discrepancy:.3e} after {max_steps} steps"
                )
            self.run(min(256, max_steps - (self.t - start)))
        return float(self.values.mean()), self.t - start
