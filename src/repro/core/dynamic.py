"""Averaging on dynamic graphs.

Section 3 cites voter-model analyses on *dynamic* graphs ([12]); the
averaging processes are equally well defined when the graph changes
between steps, as long as every snapshot is connected.
:class:`DynamicAveraging` runs the NodeModel / EdgeModel over a (cyclic
or random) sequence of graph snapshots, switching every
``switch_every`` steps.

Since the dynamic engine PR this class is a thin scalar facade over
:mod:`repro.engine`: the snapshot rotation is a frozen
:class:`~repro.engine.dynamic.GraphSchedule` and the stepping is a
single-replica :class:`~repro.engine.batch.BatchNodeModel` /
:class:`~repro.engine.batch.BatchEdgeModel`, so dynamic topologies run
through exactly the same vectorized, block-kernel, cache-aware pipeline
as the static ones (the old hand loop over per-segment scalar processes
survives only as the conformance oracle in ``tests/test_dynamic_engine``).

Two structural facts carry over and are tested:

* the convex-hull and discrepancy monotonicity invariants hold per step
  regardless of the snapshot, so the process still converges whenever
  snapshots keep being connected;
* if *all snapshots are regular with the same degree*, ``pi`` is uniform
  in every snapshot, so the simple average remains a martingale across
  switches; with heterogeneous degrees the martingale property is lost —
  the dynamic analogue of the paper's regular/irregular dichotomy.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule
from repro.engine.dynamic import CyclicSchedule, GraphSchedule, RandomSchedule
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike, as_generator


class DynamicAveraging:
    """NodeModel/EdgeModel over a rotating sequence of graph snapshots.

    Parameters
    ----------
    snapshots:
        Non-empty sequence of connected graphs on the same node set
        ``0..n-1``, or a prebuilt
        :class:`~repro.engine.dynamic.GraphSchedule` (in which case
        ``switch_every`` and ``shuffle`` are taken from it).
    initial_values:
        ``xi(0)``.
    model:
        ``"node"`` or ``"edge"``.
    alpha, k:
        Model parameters (``k`` only for the NodeModel; it must not
        exceed any snapshot's minimum degree).
    switch_every:
        Steps executed on a snapshot before moving on.
    shuffle:
        If set, each segment's snapshot is drawn uniformly at random
        (from a stream seeded off ``seed``) instead of cyclically.
    """

    def __init__(
        self,
        snapshots: Sequence[nx.Graph | Adjacency] | GraphSchedule,
        initial_values: Sequence[float],
        model: str = "node",
        alpha: float = 0.5,
        k: int = 1,
        switch_every: int = 100,
        shuffle: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if model not in ("node", "edge"):
            raise ParameterError(f"model must be 'node' or 'edge', got {model!r}")
        self.rng = as_generator(seed)
        if isinstance(snapshots, GraphSchedule):
            schedule = snapshots
        elif shuffle:
            # The snapshot stream must be deterministic and random-access
            # (replays, caching), so it gets its own seed, split off the
            # process generator once.
            schedule = RandomSchedule(
                snapshots,
                switch_every,
                seed=int(self.rng.integers(2**63 - 1)),
            )
        else:
            schedule = CyclicSchedule(snapshots, switch_every)
        self.graph_schedule = schedule
        self.adjacencies = list(schedule.snapshots)
        if model == "node" and not 1 <= k <= schedule.d_min:
            raise ParameterError(
                f"k must be in [1, {schedule.d_min}] for every snapshot, got {k}"
            )
        values = np.asarray(initial_values, dtype=np.float64)
        if values.shape != (schedule.n,):
            raise ParameterError(
                f"initial_values must have shape ({schedule.n},)"
            )
        self.model = model
        self.alpha = float(alpha)
        self.k = int(k)
        self.switch_every = schedule.switch_every
        self.shuffle = bool(shuffle)
        # Imported here, not at module level: repro.core is imported by
        # repro.engine.batch (for Schedule), so a module-level import of
        # the batch models would be circular.
        from repro.engine.batch import BatchEdgeModel, BatchNodeModel

        if model == "node":
            self._batch = BatchNodeModel(
                schedule, values, alpha=self.alpha, k=self.k,
                replicas=1, seed=self.rng,
            )
        else:
            self._batch = BatchEdgeModel(
                schedule, values, alpha=self.alpha, replicas=1, seed=self.rng,
            )

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.graph_schedule.n

    @property
    def t(self) -> int:
        return self._batch.t

    @property
    def values(self) -> np.ndarray:
        """The state vector ``xi(t)`` (a live view, do not mutate)."""
        return self._batch.values[0]

    @property
    def current_snapshot(self) -> int:
        """Index of the snapshot governing the next step."""
        return self.graph_schedule.snapshot_at(self.t)

    @property
    def discrepancy(self) -> float:
        return float(self._batch.discrepancy[0])

    @property
    def simple_average(self) -> float:
        return float(self._batch.simple_average[0])

    @property
    def phi(self) -> float:
        """``phi(xi(t))`` w.r.t. the active snapshot's ``pi``."""
        return float(self._batch.phi[0])

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def run(self, steps: int) -> None:
        """Execute ``steps`` steps, rotating snapshots as configured."""
        self._batch.run(steps)

    def replay(self, schedule: Schedule) -> None:
        """Apply a recorded selection sequence deterministically.

        The snapshot stream advances with ``t`` exactly as in a free
        run, so replaying a schedule recorded from the scalar
        per-segment composition reproduces it bit for bit.
        """
        self._batch.replay(schedule)

    def run_to_consensus(
        self, discrepancy_tol: float = 1e-9, max_steps: int = 50_000_000
    ) -> tuple[float, int]:
        """Run until the spread falls below ``discrepancy_tol``."""
        if discrepancy_tol <= 0:
            raise ParameterError("discrepancy_tol must be positive")
        start = self.t
        while self.discrepancy > discrepancy_tol:
            if self.t - start >= max_steps:
                raise ConvergenceError(
                    f"discrepancy {self.discrepancy:.3e} after {max_steps} steps"
                )
            self.run(min(256, max_steps - (self.t - start)))
        return float(self.values.mean()), self.t - start
