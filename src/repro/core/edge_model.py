"""The EdgeModel (Definition 2.3).

At each step a *directed* edge ``(u, v)`` is chosen uniformly among all
``2m`` directed edges, and the tail updates unilaterally:

    xi_u(t) = alpha * xi_u(t-1) + (1 - alpha) * xi_v(t-1).

Node ``u`` is therefore selected with probability proportional to its
degree, which is exactly why the *simple* average ``Avg(t)`` — not the
degree-weighted one — is the EdgeModel's martingale (Proposition D.1(i)),
even on irregular graphs.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.base import AveragingProcess
from repro.graphs.adjacency import Adjacency
from repro.rng import SeedLike


class EdgeModel(AveragingProcess):
    """Asynchronous edge-driven averaging (Definition 2.3).

    Equivalent in law to the NodeModel with ``k = 1`` on regular graphs
    (both pick a uniform directed edge); the two differ on irregular
    graphs, where the EdgeModel biases activation towards high-degree
    nodes.
    """

    def __init__(
        self,
        graph: nx.Graph | Adjacency,
        initial_values: Sequence[float],
        alpha: float,
        seed: SeedLike = None,
        lazy: bool = False,
        record_schedule: bool = False,
    ) -> None:
        super().__init__(
            graph,
            initial_values,
            alpha,
            seed=seed,
            lazy=lazy,
            record_schedule=record_schedule,
        )
        self._tails = self.adjacency.edge_tails
        self._heads = self.adjacency.edge_heads

    def _fast_loop(self, steps: int, epsilon: float | None) -> int:
        """Batched inner loop (identical law, ~10x fewer RNG calls)."""
        if self.schedule is not None:
            return super()._fast_loop(steps, epsilon)

        tails = self._tails.tolist()
        heads = self._heads.tolist()
        pi = self._pi.tolist()
        values = self.values
        rng = self.rng
        alpha = self.alpha
        beta = 1.0 - alpha
        lazy = self.lazy
        s1, s2 = self._tracker.moments

        num_edges = len(tails)
        executed = 0
        batch = 8192
        stop = False
        while executed < steps and not stop:
            size = min(batch, steps - executed)
            indices = rng.integers(num_edges, size=size).tolist()
            coins = rng.random(size).tolist() if lazy else None
            for i in range(size):
                executed += 1
                if coins is not None and coins[i] < 0.5:
                    continue
                index = indices[i]
                u = tails[index]
                old = float(values[u])
                new = alpha * old + beta * float(values[heads[index]])
                values[u] = new
                weight = pi[u]
                s1 += weight * (new - old)
                s2 += weight * (new * new - old * old)
                if epsilon is not None and s2 - s1 * s1 <= epsilon:
                    stop = True
                    break
            self._tracker.reset(values)
            s1, s2 = self._tracker.moments
        self.t += executed
        return executed

    def _select(self) -> tuple[int, np.ndarray]:
        index = int(self.rng.integers(len(self._tails)))
        return int(self._tails[index]), self._heads[index : index + 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeModel(n={self.n}, m={self.adjacency.m}, alpha={self.alpha}, "
            f"lazy={self.lazy}, t={self.t})"
        )
