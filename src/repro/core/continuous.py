"""Continuous-time embedding of the asynchronous processes.

The discrete asynchronous models activate one node per *step*; the
standard continuous-time reading gives every node an independent rate-1
Poisson clock (rate-``2m/n`` per node for the EdgeModel's degree-biased
activation is equivalent to a rate-1 clock per *directed edge*).  The
total event rate is then ``n`` (node clocks) or ``2m`` (edge clocks), so
``t`` steps correspond to ``t / n`` (resp. ``t / 2m``) time units in
expectation — this is exactly the factor-``n`` bookkeeping the paper
uses when comparing its asynchronous bounds with synchronous diffusion
(Section 2).

:class:`PoissonClock` samples the event times so discrete trajectories
can be timestamped; the conversion helpers translate the paper's step
bounds into continuous-time bounds.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ParameterError
from repro.rng import SeedLike, as_generator


class PoissonClock:
    """Superposition of ``rate`` independent unit-rate Poisson clocks.

    ``next_time()`` advances by an ``Exp(rate)`` holding time and returns
    the new absolute time; the sequence of ticks is the event-time
    sequence of the asynchronous process.
    """

    def __init__(self, rate: float, seed: SeedLike = None) -> None:
        if rate <= 0:
            raise ParameterError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.time = 0.0
        self.ticks = 0
        self.rng = as_generator(seed)

    def next_time(self) -> float:
        """Advance to (and return) the next event time."""
        self.time += self.rng.exponential(1.0 / self.rate)
        self.ticks += 1
        return self.time

    def sample_times(self, count: int) -> np.ndarray:
        """Event times of the next ``count`` ticks (advances the clock)."""
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        gaps = self.rng.exponential(1.0 / self.rate, size=count)
        times = self.time + np.cumsum(gaps)
        if count:
            self.time = float(times[-1])
            self.ticks += count
        return times

    def __iter__(self) -> Iterator[float]:  # pragma: no cover - convenience
        while True:
            yield self.next_time()


def node_model_event_rate(n: int) -> float:
    """Total event rate of the NodeModel: one unit-rate clock per node."""
    if n < 1:
        raise ParameterError(f"n must be positive, got {n}")
    return float(n)


def edge_model_event_rate(m: int) -> float:
    """Total event rate of the EdgeModel: one unit-rate clock per
    *directed* edge, i.e. ``2m``."""
    if m < 1:
        raise ParameterError(f"m must be positive, got {m}")
    return 2.0 * m


def steps_to_time(steps: float, rate: float) -> float:
    """Expected continuous time spanned by ``steps`` discrete events."""
    if rate <= 0:
        raise ParameterError(f"rate must be positive, got {rate}")
    if steps < 0:
        raise ParameterError(f"steps must be non-negative, got {steps}")
    return steps / rate


def time_to_steps(time: float, rate: float) -> float:
    """Expected number of discrete events within ``time`` units."""
    if rate <= 0:
        raise ParameterError(f"rate must be positive, got {rate}")
    if time < 0:
        raise ParameterError(f"time must be non-negative, got {time}")
    return time * rate


def continuous_time_bound_node(n: int, lambda2: float, norm_sq: float,
                               epsilon: float) -> float:
    """Theorem 2.2(1) restated in continuous time.

    Dividing the step bound by the event rate ``n`` cancels the paper's
    asynchronous factor ``n``, recovering the synchronous-diffusion-like
    scale ``log(n ||xi||^2 / eps) / (1 - lambda_2)`` of [11] that
    Section 2 compares against.
    """
    from repro.theory.convergence import node_model_upper_bound

    return node_model_upper_bound(n, lambda2, norm_sq, epsilon) / node_model_event_rate(n)
