"""Potential functions of Section 4 and Appendix D, tracked incrementally.

The convergence analysis measures progress by

* ``phi(xi) = <xi, xi>_pi - <1, xi>_pi^2``  (Eq. 3, ``pi``-weighted), equal
  to ``(1/2) sum_{u,v} pi_u pi_v (xi_u - xi_v)^2``;
* ``phi_V(xi) = (1/2n) sum_{x,y} (xi_x - xi_y)^2
  = sum_x xi_x^2 - (sum_x xi_x)^2 / n``  (Appendix D, uniform weights);
* the discrepancy ``K = max_u xi_u - min_u xi_u``.

Because each process step changes a single coordinate, both weighted sums
can be maintained in O(1) per step; :class:`PotentialTracker` does exactly
that, making exact ``T_eps`` measurement cheap even on million-step runs.
"""

from __future__ import annotations

import numpy as np


def phi_pi(pi: np.ndarray, values: np.ndarray) -> float:
    """The paper's potential ``phi`` (Eq. 3) computed from scratch."""
    weighted_mean = float(np.sum(pi * values))
    weighted_square = float(np.sum(pi * values * values))
    return max(weighted_square - weighted_mean**2, 0.0)


def phi_pi_pairwise(pi: np.ndarray, values: np.ndarray) -> float:
    """``phi`` via the pairwise form ``(1/2) sum pi_u pi_v (xi_u - xi_v)^2``.

    O(n^2); exists to cross-validate :func:`phi_pi` in tests.
    """
    diff = values[:, None] - values[None, :]
    weights = pi[:, None] * pi[None, :]
    return 0.5 * float(np.sum(weights * diff * diff))


def phi_uniform(values: np.ndarray) -> float:
    """Uniform potential ``phi_V`` of Proposition D.1."""
    n = len(values)
    total = float(values.sum())
    return max(float(np.sum(values * values)) - total * total / n, 0.0)


def discrepancy(values: np.ndarray) -> float:
    """Discrepancy ``K = max_u xi_u - min_u xi_u``."""
    return float(values.max() - values.min())


class PotentialTracker:
    """Incrementally maintained ``pi``-weighted first and second moments.

    Tracks ``s1 = <1, xi>_pi`` and ``s2 = <xi, xi>_pi`` so that
    ``phi = s2 - s1^2`` is available in O(1) after each single-coordinate
    update.  Floating-point drift is bounded by periodically resynchronising
    from the full vector (every ``resync_every`` updates).
    """

    def __init__(self, pi: np.ndarray, values: np.ndarray, resync_every: int = 1_000_000):
        self._pi = np.asarray(pi, dtype=np.float64)
        if resync_every < 1:
            raise ValueError("resync_every must be positive")
        self._resync_every = resync_every
        self._updates_since_resync = 0
        self.reset(values)

    def reset(self, values: np.ndarray) -> None:
        """Recompute both moments from ``values``."""
        values = np.asarray(values, dtype=np.float64)
        self._s1 = float(np.sum(self._pi * values))
        self._s2 = float(np.sum(self._pi * values * values))
        self._updates_since_resync = 0

    def update(self, node: int, old: float, new: float, values: np.ndarray) -> None:
        """Account for coordinate ``node`` changing from ``old`` to ``new``.

        ``values`` must already contain the new coordinate; it is used only
        for periodic resynchronisation.
        """
        weight = self._pi[node]
        self._s1 += weight * (new - old)
        self._s2 += weight * (new * new - old * old)
        self._updates_since_resync += 1
        if self._updates_since_resync >= self._resync_every:
            self.reset(values)

    @property
    def moments(self) -> tuple[float, float]:
        """Current ``(s1, s2)`` pair — consumed by the batched fast loops."""
        return self._s1, self._s2

    def set_moments(self, s1: float, s2: float) -> None:
        """Install externally tracked moments (batched fast loops).

        Callers are expected to resynchronise via :meth:`reset`
        periodically, exactly as :meth:`update` does internally.
        """
        self._s1 = float(s1)
        self._s2 = float(s2)

    @property
    def weighted_mean(self) -> float:
        """``M(t) = <1, xi>_pi``, the degree-weighted mean of Eq. (1)."""
        return self._s1

    @property
    def phi(self) -> float:
        """Current potential ``phi = s2 - s1^2`` (clamped at 0)."""
        return max(self._s2 - self._s1 * self._s1, 0.0)
