"""Initial-value workloads ``xi(0)``.

The paper's results are stated for arbitrary initial vectors, but three
families play special roles:

* *centered* vectors — the analysis assumes w.l.o.g. that the relevant
  average (simple for the EdgeModel, degree-weighted for the NodeModel)
  is zero; :func:`center_simple` / :func:`center_degree_weighted` perform
  the shift;
* *eigenvector-aligned* vectors — ``xi(0) = beta * f_2(P)`` (NodeModel) and
  ``xi(0) = beta * f_2(L)`` (EdgeModel) realise the convergence-time lower
  bounds of Proposition B.2;
* *bounded* families (Rademacher, uniform, indicator) — when all initial
  values are ``o(sqrt(n))`` the variance bound gives ``Var(F) = o(1)``, so
  nodes actually *estimate* the initial average (Section 2).
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import networkx as nx
import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.spectral import (
    second_laplacian_eigenpair,
    second_walk_eigenpair,
    stationary_distribution,
)
from repro.rng import SeedLike, as_generator

GraphLike = Union[nx.Graph, Adjacency]


# ----------------------------------------------------------------------
# Plain families
# ----------------------------------------------------------------------
def constant_values(n: int, value: float = 1.0) -> np.ndarray:
    """All nodes share ``value`` — the fixed point of both processes."""
    return np.full(n, float(value))


def indicator_values(n: int, node: int = 0, scale: float = 1.0) -> np.ndarray:
    """``scale`` at ``node``, zero elsewhere (a single-opinion seed)."""
    if not 0 <= node < n:
        raise ParameterError(f"node must be in [0, {n}), got {node}")
    values = np.zeros(n)
    values[node] = scale
    return values


def linear_ramp(n: int, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Evenly spaced values from ``low`` to ``high`` (deterministic spread)."""
    return np.linspace(low, high, n)


def uniform_values(n: int, low: float = -1.0, high: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """I.i.d. uniform values on ``[low, high]``."""
    if high <= low:
        raise ParameterError(f"need high > low, got [{low}, {high}]")
    return as_generator(seed).uniform(low, high, size=n)


def gaussian_values(n: int, mean: float = 0.0, std: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """I.i.d. Gaussian values."""
    if std < 0:
        raise ParameterError(f"std must be non-negative, got {std}")
    return as_generator(seed).normal(mean, std, size=n)


def rademacher_values(n: int, seed: SeedLike = None) -> np.ndarray:
    """I.i.d. ``+-1`` values — ``||xi||_2^2 = n`` exactly, so
    ``Var(F) = Theta(1/n)`` by Theorem 2.2(2)."""
    return as_generator(seed).choice(np.array([-1.0, 1.0]), size=n)


def bipartition_values(n: int, split: int | None = None) -> np.ndarray:
    """First ``split`` nodes at ``+1``, the rest at ``-1`` (two camps)."""
    split = n // 2 if split is None else split
    if not 0 <= split <= n:
        raise ParameterError(f"split must be in [0, {n}], got {split}")
    values = np.full(n, -1.0)
    values[:split] = 1.0
    return values


# ----------------------------------------------------------------------
# Centering (Section 2's w.l.o.g.)
# ----------------------------------------------------------------------
def center_simple(values: np.ndarray) -> np.ndarray:
    """Shift so that ``Avg(0) = (1/n) sum_u xi_u(0) = 0``."""
    values = np.asarray(values, dtype=np.float64)
    return values - values.mean()


def center_degree_weighted(graph: GraphLike, values: np.ndarray) -> np.ndarray:
    """Shift so that ``M(0) = sum_u d_u/(2m) xi_u(0) = 0``.

    This is the centering the NodeModel analysis assumes on irregular
    graphs (Section 2); on regular graphs it coincides with
    :func:`center_simple`.
    """
    values = np.asarray(values, dtype=np.float64)
    pi = stationary_distribution(graph)
    return values - float(np.sum(pi * values))


# ----------------------------------------------------------------------
# Worst cases (Proposition B.2)
# ----------------------------------------------------------------------
def second_eigenvector_aligned(graph: GraphLike, scale: float | None = None) -> np.ndarray:
    """``xi(0) = scale * f_2(P)`` — NodeModel lower-bound initial state.

    Proposition B.2 uses ``scale = n``; that is the default.
    """
    _, f2 = second_walk_eigenpair(graph)
    n = len(f2)
    return (float(n) if scale is None else float(scale)) * f2


def fiedler_aligned(graph: GraphLike, scale: float | None = None) -> np.ndarray:
    """``xi(0) = scale * f_2(L)`` — EdgeModel lower-bound initial state."""
    _, f2 = second_laplacian_eigenpair(graph)
    n = len(f2)
    return (float(n) if scale is None else float(scale)) * f2


#: Registry of initial-value families addressable by name in experiment
#: configs.  Graph-dependent families take the graph as first argument.
INITIAL_FAMILIES: Dict[str, Callable[..., np.ndarray]] = {
    "constant": constant_values,
    "indicator": indicator_values,
    "linear_ramp": linear_ramp,
    "uniform": uniform_values,
    "gaussian": gaussian_values,
    "rademacher": rademacher_values,
    "bipartition": bipartition_values,
}


def make_initial(family: str, n: int, **kwargs) -> np.ndarray:
    """Build a named (graph-independent) initial-value family."""
    try:
        factory = INITIAL_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(INITIAL_FAMILIES))
        raise ParameterError(
            f"unknown initial family {family!r}; known: {known}"
        ) from None
    return factory(n, **kwargs)
