"""Core averaging processes: the paper's primary contribution.

* :class:`repro.core.node_model.NodeModel` — Definition 2.1,
* :class:`repro.core.edge_model.EdgeModel` — Definition 2.3,
* :mod:`repro.core.potentials` — the ``pi``-weighted potential ``phi``
  (Eq. 3), the uniform potential ``phi_V`` (Proposition D.1), discrepancy,
  all maintained incrementally,
* :mod:`repro.core.schedule` — recorded selection sequences ``chi`` enabling
  the exact duality replay of Lemma 5.2,
* :mod:`repro.core.initial` — initial-value workloads, including the
  worst-case eigenvector-aligned states of Proposition B.2,
* :mod:`repro.core.convergence` — ``eps``-convergence detection and
  ``T_eps`` measurement,
* :mod:`repro.core.runner` — trajectory recording and convergence-value
  sampling for the Monte-Carlo harness.
"""

from repro.core.base import AveragingProcess, StepRecord
from repro.core.continuous import (
    PoissonClock,
    edge_model_event_rate,
    node_model_event_rate,
    steps_to_time,
    time_to_steps,
)
from repro.core.dynamic import DynamicAveraging
from repro.core.convergence import measure_t_eps, run_to_consensus
from repro.core.edge_model import EdgeModel
from repro.core.initial import (
    INITIAL_FAMILIES,
    center_degree_weighted,
    center_simple,
    fiedler_aligned,
    gaussian_values,
    indicator_values,
    linear_ramp,
    make_initial,
    rademacher_values,
    second_eigenvector_aligned,
    uniform_values,
)
from repro.core.node_model import NodeModel
from repro.core.potentials import (
    PotentialTracker,
    discrepancy,
    phi_pi,
    phi_uniform,
)
from repro.core.runner import Trajectory, record_trajectory, sample_convergence_value
from repro.core.schedule import Schedule, SelectionStep

__all__ = [
    "AveragingProcess",
    "DynamicAveraging",
    "PoissonClock",
    "EdgeModel",
    "INITIAL_FAMILIES",
    "NodeModel",
    "PotentialTracker",
    "Schedule",
    "SelectionStep",
    "StepRecord",
    "Trajectory",
    "center_degree_weighted",
    "center_simple",
    "discrepancy",
    "edge_model_event_rate",
    "fiedler_aligned",
    "gaussian_values",
    "indicator_values",
    "linear_ramp",
    "make_initial",
    "measure_t_eps",
    "node_model_event_rate",
    "phi_pi",
    "phi_uniform",
    "rademacher_values",
    "record_trajectory",
    "run_to_consensus",
    "sample_convergence_value",
    "second_eigenvector_aligned",
    "steps_to_time",
    "time_to_steps",
    "uniform_values",
]
