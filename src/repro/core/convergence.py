"""``eps``-convergence detection and ``T_eps`` measurement.

The paper defines the state ``xi(t)`` to be *eps-converged* when
``phi(xi(t)) <= eps`` (Section 4), and ``T_eps`` as the first such time.
Because :class:`~repro.core.base.AveragingProcess` tracks ``phi``
incrementally, :func:`measure_t_eps` costs O(1) per step on top of the
simulation itself, so the convergence-time experiments measure ``T_eps``
*exactly* rather than by sub-sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import AveragingProcess
from repro.exceptions import ConvergenceError, ParameterError


@dataclass(frozen=True)
class ConsensusResult:
    """Outcome of a run-to-consensus.

    ``t`` is the number of executed steps, ``value`` the common value ``F``
    reached (the mean of the final vector — all coordinates agree to within
    ``residual_discrepancy``).
    """

    t: int
    value: float
    residual_discrepancy: float
    phi: float


def measure_t_eps(
    process: AveragingProcess,
    epsilon: float,
    max_steps: int,
) -> int:
    """Run ``process`` until ``phi(xi(t)) <= epsilon`` and return ``T_eps``.

    Counts steps executed *from the current state* (callers normally start
    at ``t = 0``).  Raises :class:`ConvergenceError` if the budget
    ``max_steps`` is exhausted first — convergence-time experiments treat
    that as a failed configuration rather than silently reporting the cap.
    """
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if max_steps < 0:
        raise ParameterError(f"max_steps must be non-negative, got {max_steps}")
    executed = process.run_until_phi(epsilon, max_steps)
    if executed is None:
        raise ConvergenceError(
            f"phi = {process.phi:.3e} > epsilon = {epsilon:.3e} "
            f"after {max_steps} steps"
        )
    return executed


def run_to_consensus(
    process: AveragingProcess,
    discrepancy_tol: float = 1e-9,
    max_steps: int = 50_000_000,
    check_every: int = 64,
) -> ConsensusResult:
    """Run until the value spread falls below ``discrepancy_tol``.

    This is how the Monte-Carlo harness samples the convergence value
    ``F``: once ``max - min <= tol`` the common value is determined to
    within ``tol`` and we report the mean.  The potential gives a cheap
    O(1) necessary condition, so the O(n) discrepancy check only runs when
    the potential is already small and at most every ``check_every`` steps.
    """
    if discrepancy_tol <= 0:
        raise ParameterError(f"discrepancy_tol must be positive, got {discrepancy_tol}")
    if check_every < 1:
        raise ParameterError(f"check_every must be positive, got {check_every}")

    # phi >= pi_min^2 * sum of squared deviations is awkward; use the simple
    # sufficient relation: spread K satisfies
    #   phi >= pi_min^2 * K^2   (the max and min nodes contribute at least
    #   pi_min * pi_min * K^2 to the pairwise form of Eq. 3),
    # so phi <= pi_min^2 * tol^2 implies K <= tol.  We use the cheap phi
    # gate first, then confirm with the exact spread.
    pi_min = float(process.pi.min())
    phi_gate = (pi_min * discrepancy_tol) ** 2

    start = process.t
    while process.t - start < max_steps:
        remaining = max_steps - (process.t - start)
        process.run(min(check_every, remaining))
        if process.phi <= phi_gate or process.discrepancy <= discrepancy_tol:
            spread = process.discrepancy
            if spread <= discrepancy_tol:
                return ConsensusResult(
                    t=process.t - start,
                    value=float(process.values.mean()),
                    residual_discrepancy=spread,
                    phi=process.phi,
                )
    raise ConvergenceError(
        f"discrepancy = {process.discrepancy:.3e} > tol = {discrepancy_tol:.3e} "
        f"after {max_steps} steps"
    )


def epsilon_for_discrepancy(n: int, target_discrepancy: float) -> float:
    """The paper's comparison scale: ``(eps/n)^6``-convergence implies
    discrepancy at most ``eps`` (Section 4).

    Given a target discrepancy ``eps``, return the potential threshold
    ``(eps / n)^6`` that guarantees it.
    """
    if target_discrepancy <= 0:
        raise ParameterError("target_discrepancy must be positive")
    if n < 1:
        raise ParameterError("n must be positive")
    return float((target_discrepancy / n) ** 6)
