"""repro — a reproduction of "Distributed Averaging in Opinion Dynamics".

Berenbrink, Cooper, Gava, Mallmann-Trenn, Radzik, Kohan Marzagão, Rivera —
PODC 2023 (arXiv:2211.17125).

Quickstart::

    import networkx as nx
    from repro import NodeModel, run_to_consensus

    graph = nx.random_regular_graph(4, 100, seed=1)
    values = [float(i % 10) for i in range(100)]
    process = NodeModel(graph, values, alpha=0.5, k=2, seed=7)
    result = run_to_consensus(process)
    print(result.value)   # close to the (degree-weighted) initial average

To estimate Monte-Carlo quantities over many replicas, the batch engine
simulates all of them simultaneously as one ``(B, n)`` matrix::

    from repro import BatchNodeModel, run_to_consensus_batch

    batch = BatchNodeModel(graph, values, alpha=0.5, k=2,
                           replicas=1000, seed=7)
    result = run_to_consensus_batch(batch, discrepancy_tol=1e-8)
    print(result.value.var())   # Var(F) from 1000 replicas at array speed

(``sample_f_values`` below routes through this engine by default.)

Subpackages
-----------
``repro.core``
    The NodeModel / EdgeModel averaging processes, potentials,
    convergence measurement, initial-value workloads.
``repro.graphs``
    Graph generators, compact adjacency, spectral toolkit.
``repro.engine``
    Vectorized batch-replica simulation engine: ``BatchNodeModel`` /
    ``BatchEdgeModel`` advance B independent replicas per NumPy round
    behind pluggable dense/CSR sampling backends, with convergence
    masking, replica sharding across processes, and an on-disk result
    cache.  Identical in law to ``repro.core`` (the oracle), 1-2 orders
    of magnitude faster per replica.
``repro.dual``
    The Diffusion Process, Random Walk Process, Q-chain and the
    executable duality of Section 5.
``repro.theory``
    Closed-form bounds: convergence times, contraction factors,
    ``Var(F)`` envelopes, martingale structure.
``repro.baselines``
    Voter model, pairwise gossip, DeGroot, Friedkin–Johnsen,
    Hegselmann–Krause, synchronous diffusion, push-sum.
``repro.sim`` / ``repro.analysis``
    Monte-Carlo replication, moment estimation, scaling fits, tables.
``repro.experiments``
    One module per paper artefact (figures, theorems); each registers
    itself with ``repro.api`` and regenerates the corresponding result
    table.
``repro.api``
    The declarative run API: ``RunSpec`` / ``RunResult`` with full
    provenance, the ``@experiment`` registration decorator, the
    manifest-indexed ``ArtifactStore``, and ``execute`` — the single
    execution path behind the ``repro run | list | sweep | diff`` CLI::

        from repro.api import ArtifactStore, RunSpec, execute

        result = execute(RunSpec("EXP-T222", overrides={"engine": "loop"}))
        ArtifactStore("results/").save(result)
"""

from repro.api import (
    ArtifactStore,
    RunResult,
    RunSpec,
    execute,
)
from repro.core import (
    EdgeModel,
    NodeModel,
    Schedule,
    measure_t_eps,
    run_to_consensus,
)
from repro.dual import (
    DiffusionProcess,
    QChain,
    RandomWalkProcess,
    run_coupled,
    verify_duality,
)
from repro.engine import (
    BatchEdgeModel,
    BatchNodeModel,
    EngineSpec,
    ResultCache,
    run_to_consensus_batch,
)
from repro.exceptions import (
    ConvergenceError,
    GraphError,
    NotConnectedError,
    NotRegularError,
    ParameterError,
    ReproError,
    ScheduleError,
)
from repro.graphs import Adjacency, make_graph
from repro.sim import ResultTable, estimate_moments, sample_f_values
from repro.theory import variance_bounds, variance_envelope

__version__ = "1.0.0"

__all__ = [
    "Adjacency",
    "ArtifactStore",
    "BatchEdgeModel",
    "BatchNodeModel",
    "ConvergenceError",
    "DiffusionProcess",
    "EdgeModel",
    "EngineSpec",
    "GraphError",
    "NodeModel",
    "NotConnectedError",
    "NotRegularError",
    "ParameterError",
    "QChain",
    "RandomWalkProcess",
    "ReproError",
    "ResultCache",
    "ResultTable",
    "RunResult",
    "RunSpec",
    "Schedule",
    "ScheduleError",
    "estimate_moments",
    "execute",
    "make_graph",
    "measure_t_eps",
    "run_coupled",
    "run_to_consensus",
    "run_to_consensus_batch",
    "sample_f_values",
    "variance_bounds",
    "variance_envelope",
    "verify_duality",
]
