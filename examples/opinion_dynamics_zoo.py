"""Opinion-dynamics zoo: the paper's processes next to their relatives.

Runs six dynamics from the related-work landscape (Section 3) on the same
small-world network and initial opinions and prints where each one ends
up — consensus value, fragmentation, or anchored equilibrium:

* NodeModel (the paper)        -> one value, near the weighted average
* voter model                  -> one of the initial opinions
* DeGroot (synchronous)        -> exactly the weighted average
* Friedkin-Johnsen             -> no consensus: anchored equilibrium
* Hegselmann-Krause            -> possible fragmentation into clusters
* synchronous diffusion        -> exactly the simple average

Run:  python examples/opinion_dynamics_zoo.py
"""

import networkx as nx
import numpy as np

from repro import NodeModel, run_to_consensus
from repro.baselines.degroot import DeGrootModel
from repro.baselines.friedkin_johnsen import FriedkinJohnsenModel
from repro.baselines.hegselmann_krause import HegselmannKrauseModel
from repro.baselines.load_balancing import SynchronousDiffusion
from repro.baselines.voter import VoterModel

N = 50
SEED = 4


def main() -> None:
    graph = nx.connected_watts_strogatz_graph(N, 4, 0.2, seed=SEED)
    rng = np.random.default_rng(SEED)
    opinions = rng.uniform(0.0, 1.0, size=N)
    print(f"small-world network (Watts-Strogatz), n = {N}")
    print(f"initial opinions: mean = {opinions.mean():.4f}, "
          f"spread = {np.ptp(opinions):.4f}\n")

    node = NodeModel(graph, opinions, alpha=0.5, k=2, seed=SEED)
    result = run_to_consensus(node, discrepancy_tol=1e-8)
    print(f"NodeModel          -> consensus at {result.value:.4f} "
          f"({result.t} steps)")

    voter = VoterModel(graph, np.arange(N), seed=SEED)
    winner, steps = voter.run_to_consensus()
    print(f"voter model        -> adopts node {winner}'s opinion "
          f"{opinions[winner]:.4f} ({steps} steps)")

    degroot = DeGrootModel(graph, opinions)
    value, rounds = degroot.run_to_consensus(discrepancy_tol=1e-10)
    print(f"DeGroot            -> consensus at {value:.4f} ({rounds} rounds)")

    fj = FriedkinJohnsenModel(graph, opinions, susceptibility=0.7)
    fj.run(300)
    equilibrium = fj.fixed_point()
    print(f"Friedkin-Johnsen   -> NO consensus: equilibrium spread "
          f"{np.ptp(equilibrium):.4f} (stubbornness keeps opinions apart)")

    hk = HegselmannKrauseModel(graph, opinions, confidence=0.12)
    hk.run_until_stable()
    clusters = hk.clusters()
    centers = ", ".join(f"{hk.values[c].mean():.3f}" for c in clusters)
    print(f"Hegselmann-Krause  -> {len(clusters)} cluster(s) at [{centers}]")

    diffusion = SynchronousDiffusion(graph, opinions)
    value, rounds = diffusion.run_to_consensus(discrepancy_tol=1e-10)
    print(f"sync. diffusion    -> consensus at {value:.4f} ({rounds} rounds) "
          f"= simple average exactly")


if __name__ == "__main__":
    main()
