"""Sensor-network averaging: unilateral pulls vs coordinated protocols.

A classic use of distributed averaging (Boyd et al. [14]): sensors in the
unit square each hold a noisy temperature reading and want the network-
wide mean without a coordinator.  We compare, on the same random
geometric graph:

* EdgeModel           — the paper's unilateral pull (no coordination),
* pairwise gossip     — coordinated simultaneous averaging (exact),
* push-sum            — unilateral push with weight bookkeeping (exact).

The EdgeModel lands within the Theorem 2.4(2)-scale error of the truth;
the exact protocols recover it to machine precision but need either
coordination or extra per-node state.

Run:  python examples/sensor_network.py
"""

import numpy as np

from repro import EdgeModel, run_to_consensus
from repro.baselines.gossip import PairwiseGossip
from repro.baselines.pushsum import PushSum
from repro.graphs.generators import random_geometric_connected

N = 80
SEED = 3


def main() -> None:
    graph = random_geometric_connected(N, seed=SEED)
    rng = np.random.default_rng(SEED)
    true_field = 20.0
    readings = true_field + rng.normal(0.0, 0.5, size=N)
    truth = float(readings.mean())

    print(f"geometric sensor network: n = {N}, m = {graph.number_of_edges()}")
    print(f"true mean reading: {truth:.6f}\n")
    print(f"{'protocol':<18} {'estimate':>12} {'error':>12} {'steps':>9}")
    print("-" * 55)

    edge = EdgeModel(graph, readings, alpha=0.5, seed=SEED)
    result = run_to_consensus(edge, discrepancy_tol=1e-9)
    print(f"{'EdgeModel':<18} {result.value:12.6f} "
          f"{abs(result.value - truth):12.2e} {result.t:9d}")

    gossip = PairwiseGossip(graph, readings, seed=SEED)
    value, steps = gossip.run_to_consensus(discrepancy_tol=1e-9)
    print(f"{'pairwise gossip':<18} {value:12.6f} "
          f"{abs(value - truth):12.2e} {steps:9d}")

    pushsum = PushSum(graph, readings, seed=SEED)
    value, steps = pushsum.run_to_accuracy(tol=1e-9)
    print(f"{'push-sum':<18} {value:12.6f} "
          f"{abs(value - truth):12.2e} {steps:9d}")

    print("\nthe EdgeModel's residual error is the 'price of simplicity': "
          "Theta(||xi - mean||/n) standard deviation, no coordination needed.")


if __name__ == "__main__":
    main()
