"""Variance study: 'the clique and the cycle have the same Var(F)'.

Theorem 2.2(2)'s most striking consequence: the variance of the
convergence value does not depend on the graph structure — only on
``||xi(0)||^2 / n^2``.  This script estimates Var(F) by Monte Carlo on
four regular topologies carrying the *same* initial values and prints the
estimates against the Proposition 5.8 interval.

The replicas run through the vectorized batch engine (``repro.engine``):
``sample_f_values`` simulates all of them as one ``(B, n)`` matrix, so
cranking REPLICAS up is cheap.  Swap ``engine="loop"`` in to feel the
difference — the legacy path runs one process per replica.

Run:  python examples/variance_study.py       (~seconds)
"""

import numpy as np

from repro import NodeModel, estimate_moments, sample_f_values, variance_bounds
from repro.core.initial import center_simple, rademacher_values
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
    torus_graph,
)

N = 36
ALPHA = 0.5
REPLICAS = 600  # the batch engine makes larger samples cheap


def main() -> None:
    values = center_simple(rademacher_values(N, seed=1))
    norm_sq = float(np.sum(values**2))
    print(f"n = {N}, same +-1 initial values everywhere, "
          f"||xi||^2 = {norm_sq:.1f}")
    print(f"Theorem 2.2(2) scale ||xi||^2/n^2 = {norm_sq / N**2:.4f}")
    print(f"{REPLICAS} replicas per graph via the batch engine\n")
    print(f"{'graph':<24} {'Var(F) est.':>12} {'95% CI':>22} {'Prop 5.8 core':>14}")
    print("-" * 76)

    for name, graph in [
        ("cycle (d=2)", cycle_graph(N)),
        ("torus (d=4)", torus_graph(N)),
        ("random regular (d=4)", random_regular_graph(N, 4, seed=2)),
        ("complete (d=35)", complete_graph(N)),
    ]:
        bounds = variance_bounds(graph, values, alpha=ALPHA, k=1)

        def make(rng, graph=graph):
            return NodeModel(graph, values, alpha=ALPHA, k=1, seed=rng)

        # engine="batch" is the default; spelled out here for the demo.
        sample = sample_f_values(
            make, REPLICAS, seed=3, discrepancy_tol=1e-6, engine="batch"
        )
        estimate = estimate_moments(sample, seed=3)
        lo, hi = estimate.variance_ci
        print(f"{name:<24} {estimate.variance:12.5f} "
              f"[{lo:9.5f}, {hi:9.5f}] {bounds.core:14.5f}")

    print("\nall four topologies land on the same Var(F) — the structure "
          "independence of Theorem 2.2(2).")


if __name__ == "__main__":
    main()
