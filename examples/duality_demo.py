"""Duality demo: the paper's Figures 1 and 4, executed.

Replays the exact worked examples from the paper — the triangle graph
with opinions [6, 8, 9] and alpha = 1/2 — and checks Lemma 5.2's identity
``W(T) = xi(T)^T`` (averaging forward == diffusion backward), then
stress-tests the identity on a random graph and schedule.

Run:  python examples/duality_demo.py
"""

import numpy as np

from repro import run_coupled, verify_duality
from repro.dual.duality import figure1_trace, figure4_trace
from repro.graphs.generators import erdos_renyi_graph


def show_figure(name: str, figure) -> None:
    print(f"--- {name} ---")
    for t, (row, paper) in enumerate(zip(figure.trace.xi, figure.expected_xi)):
        ok = "ok" if np.allclose(row, paper) else "MISMATCH"
        print(f"  t={t}: xi = {np.round(row, 6).tolist()}   paper = "
              f"{np.round(paper, 6).tolist()}   [{ok}]")
    print(f"  diffusion (reversed) cost W(T) = "
          f"{np.round(figure.trace.w_final, 6).tolist()}")
    print(f"  max |W(T) - xi(T)| = {figure.trace.max_error:.2e}\n")


def main() -> None:
    show_figure("Figure 1: alpha = 1/2, k = 1", figure1_trace())
    show_figure("Figure 4: alpha = 1/2, k = 2", figure4_trace())

    graph = erdos_renyi_graph(25, 0.25, seed=1)
    initial = np.random.default_rng(1).normal(size=25)
    trace = run_coupled(graph, initial, alpha=0.4, k=1, steps=500, seed=2)
    print("random G(25, 0.25), 500 random steps:")
    print(f"  duality exact: {verify_duality(trace)} "
          f"(max error {trace.max_error:.2e})")
    print("\nLemma 5.2 is an exact, per-schedule identity — the coupling "
          "works for every graph, alpha, k and selection sequence.")


if __name__ == "__main__":
    main()
