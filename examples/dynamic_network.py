"""Averaging while the network itself changes.

Social graphs are not static: contacts appear and disappear.  This
example runs the NodeModel over a rotating sequence of connected
snapshots (as in the dynamic-graph voter analyses cited in Section 3)
and shows that

* consensus is still reached — the convex-hull/discrepancy invariants
  are per-step facts that do not care about the snapshot;
* when all snapshots are regular with the same degree the consensus
  value still concentrates near the (invariant) simple average;
* heterogeneous-degree snapshots break the martingale, shifting F.

Run:  python examples/dynamic_network.py
"""

import networkx as nx
import numpy as np

from repro.core.dynamic import DynamicAveraging
from repro.core.initial import center_simple, rademacher_values

N = 30
REPLICAS = 60


def consensus_values(snapshots, initial, label):
    finals = []
    for seed in range(REPLICAS):
        process = DynamicAveraging(
            snapshots, initial, model="node", alpha=0.5, k=1,
            switch_every=40, seed=seed,
        )
        value, _ = process.run_to_consensus(discrepancy_tol=1e-7)
        finals.append(value)
    finals = np.asarray(finals)
    print(f"{label:<34} mean F = {finals.mean():+.4f}   "
          f"std = {finals.std(ddof=1):.4f}")
    return finals


def main() -> None:
    initial = center_simple(rademacher_values(N, seed=1))
    print(f"n = {N}, centered +-1 opinions (Avg(0) = 0), "
          f"{REPLICAS} replicas each\n")

    regular_snapshots = [
        nx.random_regular_graph(4, N, seed=s) for s in range(4)
    ]
    consensus_values(regular_snapshots, initial,
                     "rotating 4-regular snapshots")

    mixed_snapshots = [
        nx.random_regular_graph(4, N, seed=9),
        nx.star_graph(N - 1),
        nx.barbell_graph(N // 2, 0),
    ]
    consensus_values(mixed_snapshots, initial,
                     "regular + star + barbell rotation")

    print("\nwith same-degree snapshots the average stays a martingale and "
          "F concentrates at 0; mixing in hub-dominated snapshots biases "
          "activation and widens/shifts F — the dynamic analogue of the "
          "paper's regular-vs-irregular dichotomy.")


if __name__ == "__main__":
    main()
