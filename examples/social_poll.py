"""Social-network polling: the degree bias of limited-information updates.

The paper's motivating scenario (Section 1): users of a social network
form an opinion — say, how much to budget for a vacation — by asking a
few random friends rather than polling their whole friend list.

This example runs the NodeModel on a network with hubs (a lollipop graph:
a celebrity clique plus a chain of casual users) and shows that the
consensus budget is pulled towards the *degree-weighted* average — highly
connected users' opinions count more (Lemma 4.1) — while the EdgeModel
converges to the fair simple average in expectation.

Run:  python examples/social_poll.py
"""

import numpy as np

from repro import EdgeModel, NodeModel, run_to_consensus
from repro.graphs.generators import lollipop_graph
from repro.graphs.spectral import stationary_distribution

N = 40
ALPHA = 0.5
REPLICAS = 20
# Budgets are in dollars; cent-level agreement is plenty.
TOLERANCE = 1e-2


def main() -> None:
    graph = lollipop_graph(N)
    degrees = np.array([d for _, d in graph.degree()], float)

    # Clique members (high degree) want lavish budgets; the chain of
    # casual users (degree <= 2) wants cheap trips.
    budgets = np.where(degrees > 2, 3000.0, 500.0)
    simple_average = float(budgets.mean())
    pi = stationary_distribution(graph)
    weighted_average = float(np.sum(pi * budgets))

    print(f"lollipop network: n = {N}, clique size = {(degrees > 2).sum()}")
    print(f"fair (simple) average budget      : {simple_average:8.1f}")
    print(f"degree-weighted average (Lemma 4.1): {weighted_average:8.1f}\n")

    node_values = []
    edge_values = []
    for seed in range(REPLICAS):
        node = NodeModel(graph, budgets, alpha=ALPHA, k=1, seed=seed)
        node_values.append(run_to_consensus(node, discrepancy_tol=TOLERANCE).value)
        edge = EdgeModel(graph, budgets, alpha=ALPHA, seed=1000 + seed)
        edge_values.append(run_to_consensus(edge, discrepancy_tol=TOLERANCE).value)

    node_mean = float(np.mean(node_values))
    edge_mean = float(np.mean(edge_values))
    print(f"NodeModel consensus (mean of {REPLICAS} runs): {node_mean:8.1f}"
          f"   <- near the degree-weighted average")
    print(f"EdgeModel consensus (mean of {REPLICAS} runs): {edge_mean:8.1f}"
          f"   <- near the fair average")
    print("\ntakeaway: asking 'a few random friends' is not neutral — "
          "hub opinions dominate under node-driven updates; edge-driven "
          "updates restore the simple average in expectation.")


if __name__ == "__main__":
    main()
