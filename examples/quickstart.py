"""Quickstart: run both averaging processes and compare with theory.

Builds a 4-regular random graph, runs the NodeModel and the EdgeModel to
consensus from the same initial opinions, and prints the convergence
value ``F`` next to the initial average, plus the predicted spread of
``F`` from Theorem 2.2(2).

Run:  python examples/quickstart.py
"""

import networkx as nx
import numpy as np

from repro import EdgeModel, NodeModel, run_to_consensus, variance_envelope
from repro.core.initial import center_simple

N = 100
ALPHA = 0.5  # self-weight: keep half your opinion, average the rest
SEED = 7


def main() -> None:
    graph = nx.random_regular_graph(4, N, seed=SEED)
    rng = np.random.default_rng(SEED)
    opinions = center_simple(rng.normal(size=N))  # centered: Avg(0) = 0

    print(f"graph: 4-regular, n = {N}; initial average = {opinions.mean():+.4f}")
    print(f"initial spread (max - min) = {np.ptp(opinions):.3f}\n")

    node = NodeModel(graph, opinions, alpha=ALPHA, k=2, seed=SEED)
    result = run_to_consensus(node)
    print(f"NodeModel(k=2): consensus F = {result.value:+.5f} "
          f"after {result.t} steps")

    edge = EdgeModel(graph, opinions, alpha=ALPHA, seed=SEED + 1)
    result_edge = run_to_consensus(edge)
    print(f"EdgeModel:      consensus F = {result_edge.value:+.5f} "
          f"after {result_edge.t} steps\n")

    norm_sq = float(np.sum(opinions**2))
    low, high = variance_envelope(N, 4, 2, ALPHA, norm_sq)
    print("Theorem 2.2(2): E[F] = 0 and Var(F) in "
          f"[{low:.2e}, {high:.2e}]  (std ~ {np.sqrt(high):.4f})")
    print("so a single run's F lands within a few such standard deviations "
          "of the true average — the price of coordination-free averaging.")


if __name__ == "__main__":
    main()
