"""Tests for mixing-time utilities and the sweep helper."""

import networkx as nx
import numpy as np
import pytest

from repro.dual.qchain import QChain
from repro.exceptions import ParameterError
from repro.sim.sweep import sweep, sweep_size
from repro.theory.mixing import (
    empirical_mixing_time,
    qchain_mixing_tolerance,
    spectral_mixing_bound,
    total_variation,
)


class TestTotalVariation:
    def test_identical_distributions(self):
        p = np.array([0.25, 0.75])
        assert total_variation(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_symmetric(self):
        p = np.array([0.2, 0.8])
        q = np.array([0.5, 0.5])
        assert total_variation(p, q) == total_variation(q, p) == pytest.approx(0.3)

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            total_variation(np.array([1.0]), np.array([0.5, 0.5]))


class TestSpectralBound:
    def test_formula(self):
        bound = spectral_mixing_bound(0.5, 0.1, 0.01)
        assert bound == pytest.approx(np.log(1.0 / (0.01 * 0.1)) / 0.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            spectral_mixing_bound(1.0, 0.1, 0.01)
        with pytest.raises(ParameterError):
            spectral_mixing_bound(0.5, 0.0, 0.01)
        with pytest.raises(ParameterError):
            spectral_mixing_bound(0.5, 0.1, 1.5)


class TestEmpiricalMixingTime:
    def test_two_state_chain(self):
        q = np.array([[0.9, 0.1], [0.1, 0.9]])
        stationary = np.array([0.5, 0.5])
        t = empirical_mixing_time(q, stationary, epsilon=0.01)
        # TV from worst start after t steps is 0.5 * (0.8)^t.
        expected = int(np.ceil(np.log(0.02) / np.log(0.8)))
        assert t == expected

    def test_already_mixed(self):
        q = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert empirical_mixing_time(q, np.array([0.5, 0.5]), 0.1) == 1

    def test_monotone_in_epsilon(self):
        q = np.array([[0.9, 0.1], [0.2, 0.8]])
        mu = np.array([2 / 3, 1 / 3])
        loose = empirical_mixing_time(q, mu, 0.1)
        tight = empirical_mixing_time(q, mu, 0.001)
        assert tight >= loose

    def test_budget_exceeded(self):
        q = np.array([[1.0 - 1e-9, 1e-9], [1e-9, 1.0 - 1e-9]])
        with pytest.raises(ParameterError):
            empirical_mixing_time(q, np.array([0.5, 0.5]), 0.01, max_time=16)

    def test_qchain_mixes_to_lemma57_law(self):
        """The Q-chain mixes to its closed-form stationary law; the
        empirical mixing time is finite and consistent with the spectral
        scale (n^2-state chain on K5)."""
        graph = nx.complete_graph(5)
        chain = QChain(graph, alpha=0.5, k=2)
        q = chain.transition_matrix()
        mu = chain.stationary_closed_form()
        t = empirical_mixing_time(q, mu, epsilon=1e-6)
        assert t >= 1
        power = np.linalg.matrix_power(q, t)
        worst = 0.5 * np.abs(power - mu[None, :]).sum(axis=1).max()
        assert worst <= 1e-6


class TestQChainTolerance:
    def test_formula(self):
        assert qchain_mixing_tolerance(10, 2.0) == pytest.approx(
            1.0 / (4.0 * 10**7)
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            qchain_mixing_tolerance(0, 1.0)
        with pytest.raises(ParameterError):
            qchain_mixing_tolerance(10, 0.0)


class TestSweep:
    def test_cartesian_product_rows(self):
        table = sweep(
            "demo",
            axes={"a": [1, 2], "b": ["x", "y", "z"]},
            evaluate=lambda a, b: {"joined": f"{a}{b}"},
            measurements=["joined"],
        )
        assert len(table.rows) == 6
        assert table.columns == ["a", "b", "joined"]
        assert table.rows[0] == [1, "x", "1x"]
        assert table.rows[-1] == [2, "z", "2z"]

    def test_missing_measurement_raises(self):
        with pytest.raises(ParameterError, match="did not return"):
            sweep(
                "demo",
                axes={"a": [1]},
                evaluate=lambda a: {},
                measurements=["m"],
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ParameterError):
            sweep("demo", axes={}, evaluate=lambda: {}, measurements=["m"])

    def test_sweep_size(self):
        assert sweep_size({"a": [1, 2], "b": [1, 2, 3]}) == 6

    def test_common_kwargs_reach_every_point(self):
        table = sweep(
            "demo",
            axes={"a": [1, 2]},
            evaluate=lambda a, engine: {"tag": f"{a}-{engine}"},
            measurements=["tag"],
            common={"engine": "loop"},
        )
        assert [row[-1] for row in table.rows] == ["1-loop", "2-loop"]

    def test_common_key_colliding_with_axis_rejected(self):
        with pytest.raises(ParameterError, match="collide"):
            sweep(
                "demo",
                axes={"a": [1]},
                evaluate=lambda a: {"m": a},
                measurements=["m"],
                common={"a": 2},
            )


class TestSparseSpectral:
    def test_matches_dense_on_regular_graph(self):
        from repro.graphs.spectral import (
            second_walk_eigenpair,
            second_walk_eigenpair_sparse,
        )

        graph = nx.random_regular_graph(4, 60, seed=3)
        dense_l2, dense_f2 = second_walk_eigenpair(graph)
        sparse_l2, sparse_f2 = second_walk_eigenpair_sparse(graph)
        assert sparse_l2 == pytest.approx(dense_l2, abs=1e-8)
        # Eigenvectors match up to sign.
        alignment = abs(float(np.dot(dense_f2, sparse_f2))) / (
            np.linalg.norm(dense_f2) * np.linalg.norm(sparse_f2)
        )
        assert alignment == pytest.approx(1.0, abs=1e-6)

    def test_matches_dense_on_irregular_graph(self):
        from repro.graphs.spectral import (
            second_walk_eigenpair,
            second_walk_eigenpair_sparse,
        )

        graph = nx.barbell_graph(6, 2)
        dense_l2, _ = second_walk_eigenpair(graph)
        sparse_l2, _ = second_walk_eigenpair_sparse(graph)
        assert sparse_l2 == pytest.approx(dense_l2, abs=1e-8)
