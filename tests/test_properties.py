"""Tests for structural properties and Definition 5.6 distance classes."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import NotConnectedError, NotRegularError
from repro.graphs import properties as props
from repro.graphs.spectral import second_laplacian_eigenpair


class TestBasicPredicates:
    def test_degree_vector(self, star5):
        degrees = props.degree_vector(star5)
        assert degrees.tolist() == [5, 1, 1, 1, 1, 1]

    def test_is_regular(self, petersen, star5):
        assert props.is_regular(petersen)
        assert not props.is_regular(star5)

    def test_require_regular_returns_degree(self, petersen):
        assert props.require_regular(petersen) == 3

    def test_require_regular_raises(self, star5):
        with pytest.raises(NotRegularError, match="Lemma 5.7"):
            props.require_regular(star5, context="Lemma 5.7")

    def test_require_connected(self):
        with pytest.raises(NotConnectedError):
            props.require_connected(nx.Graph([(0, 1), (2, 3)]))

    def test_require_connected_passes(self, cycle6):
        props.require_connected(cycle6)  # no raise


class TestDistanceClasses:
    def test_counts_sum_to_n_squared(self, petersen):
        classes = props.distance_classes(petersen)
        s0, s1, s_plus = classes.counts
        assert s0 + s1 + s_plus == 100

    def test_s0_size_is_n(self, petersen):
        classes = props.distance_classes(petersen)
        assert classes.counts[0] == 10

    def test_s1_size_is_2m(self, petersen):
        classes = props.distance_classes(petersen)
        assert classes.counts[1] == 2 * 15

    def test_complete_graph_has_empty_s_plus(self):
        classes = props.distance_classes(nx.complete_graph(5))
        assert classes.counts == (5, 20, 0)

    def test_cycle_s_plus(self, cycle6):
        classes = props.distance_classes(cycle6)
        # 36 pairs: 6 diagonal, 12 adjacent, rest at distance >= 2.
        assert classes.counts == (6, 12, 18)

    def test_class_matrix_consistent(self, petersen):
        classes = props.distance_classes(petersen)
        matrix = classes.class_of()
        # Diagonal is class 0.
        assert np.all(np.diag(matrix) == 0)
        # Adjacent pairs are class 1 and symmetric.
        for u, v in petersen.edges():
            assert matrix[u, v] == 1 and matrix[v, u] == 1
        # Spot-check a distance-2 pair.
        paths = dict(nx.all_pairs_shortest_path_length(petersen))
        far = [(u, v) for u in paths for v, dist in paths[u].items() if dist >= 2]
        u, v = far[0]
        assert matrix[u, v] == 2


class TestCommonNeighbours:
    def test_common_neighbor_counts_cycle(self, cycle6):
        counts = props.common_neighbor_counts(cycle6)
        # In C6, nodes at distance 2 share exactly one neighbour.
        assert counts[0, 2] == 1
        # Adjacent nodes in C6 share none.
        assert counts[0, 1] == 0
        # Diagonal equals the degree.
        assert counts[0, 0] == 2

    def test_complete_graph_counts(self):
        counts = props.common_neighbor_counts(nx.complete_graph(5))
        assert counts[0, 1] == 3  # K5 adjacent pairs share n - 2 = 3
        assert counts[0, 0] == 4

    def test_petersen_girth5_no_common_neighbours_for_adjacent(self, petersen):
        counts = props.common_neighbor_counts(petersen)
        for u, v in petersen.edges():
            assert counts[u, v] == 0  # girth 5: no triangles


class TestIsoperimetric:
    def test_exact_cycle(self):
        # For C6 the best cut takes half the cycle: 2 boundary edges / 3 nodes.
        value = props.isoperimetric_number_exact(nx.cycle_graph(6))
        assert value == pytest.approx(2.0 / 3.0)

    def test_exact_complete(self):
        # K4: any S with |S| = 2 has 4 boundary edges -> i = 2.
        value = props.isoperimetric_number_exact(nx.complete_graph(4))
        assert value == pytest.approx(2.0)

    def test_exact_guard_on_size(self):
        with pytest.raises(ValueError):
            props.isoperimetric_number_exact(nx.cycle_graph(30))

    def test_cheeger_bound_valid_with_exact_isoperimetric(self, cycle6):
        i_exact = props.isoperimetric_number_exact(cycle6)
        bound = props.isoperimetric_lower_bound(cycle6, isoperimetric=i_exact)
        lambda2, _ = second_laplacian_eigenpair(cycle6)
        assert lambda2 >= bound - 1e-12

    @pytest.mark.parametrize("n", [6, 8, 10, 12])
    def test_cheeger_bound_valid_across_cycles(self, n):
        graph = nx.cycle_graph(n)
        i_exact = props.isoperimetric_number_exact(graph)
        bound = props.isoperimetric_lower_bound(graph, isoperimetric=i_exact)
        lambda2, _ = second_laplacian_eigenpair(graph)
        assert lambda2 >= bound - 1e-12

    def test_sweep_cut_heuristic_runs(self, petersen):
        bound = props.isoperimetric_lower_bound(petersen)
        assert bound > 0
