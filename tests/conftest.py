"""Shared fixtures: small graphs exercised across the suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import Adjacency


@pytest.fixture(scope="session", autouse=True)
def _pre_arm_jit_fallback_warning():
    """Keep the tier-1 suite warning-clean without numba.

    ``resolve_kernel("jit")`` emits its once-per-process fallback
    ``RuntimeWarning`` the first time numba is found missing — which,
    under ``filterwarnings = error::RuntimeWarning``, would blow up
    whichever unrelated test happens to request the jit kernel first.
    Pre-arming the one-shot flag here makes the *dedicated* fallback
    regression tests (which reset the flag and capture the warning via
    ``pytest.warns``) the only place the warning fires.
    """
    from repro.engine import kernels

    if not kernels.numba_available():
        kernels._FALLBACK_WARNED = True
    yield


@pytest.fixture
def triangle() -> nx.Graph:
    """The 3-clique used by the paper's Figures 1 and 4."""
    return nx.complete_graph(3)


@pytest.fixture
def cycle6() -> nx.Graph:
    return nx.cycle_graph(6)


@pytest.fixture
def petersen() -> nx.Graph:
    return nx.petersen_graph()


@pytest.fixture
def star5() -> nx.Graph:
    """Star with hub 0 and 5 leaves (irregular)."""
    return nx.star_graph(5)


@pytest.fixture
def path4() -> nx.Graph:
    return nx.path_graph(4)


@pytest.fixture
def small_regular() -> nx.Graph:
    """A connected 4-regular graph on 10 nodes (fixed seed)."""
    graph = nx.random_regular_graph(4, 10, seed=7)
    assert nx.is_connected(graph)
    return graph


@pytest.fixture
def cycle6_adjacency(cycle6) -> Adjacency:
    return Adjacency.from_graph(cycle6)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
