"""Tests for the one-step contraction factors (Prop B.1 / D.1(ii))."""

import numpy as np
import pytest

from repro.core.edge_model import EdgeModel
from repro.core.node_model import NodeModel
from repro.core.potentials import phi_pi, phi_uniform
from repro.exceptions import ParameterError
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.graphs.spectral import (
    second_laplacian_eigenpair,
    second_walk_eigenpair,
    stationary_distribution,
)
from repro.theory import contraction


class TestNodeFactor:
    def test_k1_closed_form(self):
        # For k = 1 the bracket reduces to 2 alpha.
        factor = contraction.node_model_contraction_factor(10, 0.5, 0.5, 1)
        expected = 1.0 - (0.5 * 0.5 * 2 * 0.5) / 10
        assert factor == pytest.approx(expected)

    def test_factor_in_unit_interval(self):
        for alpha in (0.1, 0.5, 0.9):
            for k in (1, 2, 8):
                factor = contraction.node_model_contraction_factor(20, 0.7, alpha, k)
                assert 0.0 < factor < 1.0

    def test_rate_increases_with_k(self):
        # More sampled neighbours -> (weakly) faster contraction.
        rates = [
            contraction.node_model_contraction_rate(20, 0.6, 0.5, k)
            for k in (1, 2, 4, 8)
        ]
        assert all(b >= a - 1e-15 for a, b in zip(rates, rates[1:]))

    def test_rate_k_dependence_bounded_by_factor_two(self):
        # The paper: the k-dependent factor is (1 + 1/k)-like, in [1, 2].
        rate1 = contraction.node_model_contraction_rate(20, 0.6, 0.5, 1)
        rate_inf = contraction.node_model_contraction_rate(20, 0.6, 0.5, 10**6)
        assert rate_inf / rate1 <= 2.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ParameterError):
            contraction.node_model_contraction_factor(1, 0.5, 0.5, 1)
        with pytest.raises(ParameterError):
            contraction.node_model_contraction_factor(10, 1.0, 0.5, 1)
        with pytest.raises(ParameterError):
            contraction.node_model_contraction_factor(10, 0.5, 0.5, 0)


class TestEdgeFactor:
    def test_closed_form(self):
        factor = contraction.edge_model_contraction_factor(15, 2.0, 0.5)
        assert factor == pytest.approx(1.0 - 0.5 * 0.5 * 2.0 / 15)

    def test_validation(self):
        with pytest.raises(ParameterError):
            contraction.edge_model_contraction_factor(0, 1.0, 0.5)
        with pytest.raises(ParameterError):
            contraction.edge_model_contraction_factor(10, 0.0, 0.5)


class TestEmpiricalContraction:
    """Monte-Carlo verification that the factors really bound the drop."""

    @pytest.mark.parametrize("alpha,k", [(0.5, 1), (0.3, 2)])
    def test_node_bound_holds_from_random_state(self, small_regular, rng, alpha, k):
        initial = rng.normal(size=10)
        pi = stationary_distribution(small_regular)
        lambda2, _ = second_walk_eigenpair(small_regular)
        phi0 = phi_pi(pi, initial)
        bound = contraction.node_model_contraction_factor(10, lambda2, alpha, k)
        trials = 20_000
        process = NodeModel(small_regular, initial, alpha=alpha, k=k, seed=1)
        total = 0.0
        for _ in range(trials):
            process.reset()
            process.step()
            total += process.phi
        measured = (total / trials) / phi0
        assert measured <= bound + 4.0 / np.sqrt(trials)

    def test_node_bound_tight_on_f2(self, small_regular):
        # On xi = f_2 with k = 1 the proof's inequalities are equalities
        # (single eigencomponent), so measured ~= bound.
        lambda2, f2 = second_walk_eigenpair(small_regular)
        pi = stationary_distribution(small_regular)
        phi0 = phi_pi(pi, f2)
        bound = contraction.node_model_contraction_factor(10, lambda2, 0.5, 1)
        trials = 60_000
        process = NodeModel(small_regular, f2, alpha=0.5, k=1, seed=2)
        total = 0.0
        for _ in range(trials):
            process.reset()
            process.step()
            total += process.phi
        measured = (total / trials) / phi0
        assert measured == pytest.approx(bound, abs=6.0 / np.sqrt(trials))

    def test_edge_bound_holds(self, rng):
        graph = cycle_graph(12)
        initial = rng.normal(size=12)
        initial -= initial.mean()
        lambda2_l, _ = second_laplacian_eigenpair(graph)
        bound = contraction.edge_model_contraction_factor(12, lambda2_l, 0.5)
        phi0 = phi_uniform(initial)
        trials = 20_000
        process = EdgeModel(graph, initial, alpha=0.5, seed=3)
        total = 0.0
        for _ in range(trials):
            process.reset()
            process.step()
            total += phi_uniform(process.values)
        measured = (total / trials) / phi0
        assert measured <= bound + 4.0 / np.sqrt(trials)


class TestMeanStateFactor:
    def test_q2_drives_expected_state(self, small_regular):
        # E[xi(t)] = q2^t f2 for xi(0) = f2 (Eq. 43): verify via E-matrix.
        from repro.theory.martingale import node_model_expected_update

        alpha = 0.4
        lambda2, f2 = second_walk_eigenpair(small_regular)
        q2 = contraction.mean_state_contraction_factor(10, lambda2, alpha)
        update = node_model_expected_update(small_regular, alpha)
        assert np.allclose(update @ f2, q2 * f2, atol=1e-10)
