"""Guard tests for the example scripts.

Full example runs take tens of seconds each; here we verify that every
example compiles, is executable as a script (has a main guard), and that
the fastest one actually runs end to end.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least 3 examples"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    source = path.read_text(encoding="utf-8")
    assert '__name__ == "__main__"' in source
    assert source.lstrip().startswith('"""'), "examples start with a docstring"


def test_duality_demo_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "duality_demo.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "duality exact: True" in result.stdout
    assert "[ok]" in result.stdout


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert "consensus F" in result.stdout
