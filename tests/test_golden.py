"""Golden-trajectory regression fixtures.

A small matrix of (model x kernel x backend x static/dynamic) cells is
run at frozen seeds and the exact end state hashed; the hashes live in
``tests/golden/trajectories.json``.  Future kernel or backend refactors
cannot silently change a realized trajectory: any drift fails here with
the offending cell named.

Everything in a cell is deterministic by construction — circulant and
wheel graphs (no generator RNG), a linear-ramp initial vector, integer
PCG64 seeds (stream-compatible across NumPy versions) — so the hashes
are portable across machines and Python/NumPy versions.

To regenerate after an *intentional* trajectory change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py

and commit the rewritten JSON together with the change that justifies
it.  The jit kernel has no hashes of its own: it is bit-identical to
fused by contract, asserted directly when numba is available.
"""

import hashlib
import json
import os
import pathlib

import networkx as nx
import numpy as np
import pytest

from repro.core.initial import center_simple, linear_ramp
from repro.engine import (
    BatchCoalescing,
    BatchDiffusion,
    BatchEdgeModel,
    BatchNodeModel,
    BatchWalks,
    CyclicSchedule,
    numba_available,
)
from repro.graphs.adjacency import Adjacency

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "trajectories.json"

N = 16
STEPS = 300  # crosses the default 256-round block boundary
REPLICAS = 3
SEED = 2024
SWITCH_EVERY = 13

#: Deterministic topologies: two 4-regular circulants and one irregular
#: wheel (d_min = 3, so k = 2 stays valid everywhere).
CIRC_A = Adjacency.from_graph(nx.circulant_graph(N, [1, 2]))
CIRC_B = Adjacency.from_graph(nx.circulant_graph(N, [1, 3]))
WHEEL = Adjacency.from_graph(nx.wheel_graph(N))


def _graph(topology: str):
    if topology == "static":
        return CIRC_A
    if topology == "static-irregular":
        return WHEEL
    return CyclicSchedule([CIRC_A, WHEEL, CIRC_B], SWITCH_EVERY)


#: cell id -> construction recipe.  Kernel "jit" is deliberately absent
#: (bit-identical to "fused"; see test_jit_matches_fused_cells).
CELLS = {
    "node-k1.numpy.dense.static": ("node", "numpy", "dense", "static", 1, False),
    "node-k1.fused.dense.static": ("node", "fused", "dense", "static", 1, False),
    "node-k1.fused.csr.static": ("node", "fused", "csr", "static", 1, False),
    "node-k2.fused.dense.static-irregular": (
        "node", "fused", "dense", "static-irregular", 2, False,
    ),
    "node-k1-lazy.fused.dense.static": (
        "node", "fused", "dense", "static", 1, True,
    ),
    "edge.numpy.dense.static": ("edge", "numpy", "dense", "static", 1, False),
    "edge.fused.dense.static": ("edge", "fused", "dense", "static", 1, False),
    "node-k1.numpy.dense.dynamic": ("node", "numpy", "dense", "dynamic", 1, False),
    "node-k1.fused.dense.dynamic": ("node", "fused", "dense", "dynamic", 1, False),
    "node-k1.fused.csr.dynamic": ("node", "fused", "csr", "dynamic", 1, False),
    "node-k2.fused.dense.dynamic": ("node", "fused", "dense", "dynamic", 2, False),
    "node-k1-lazy.fused.dense.dynamic": (
        "node", "fused", "dense", "dynamic", 1, True,
    ),
    "edge.numpy.dense.dynamic": ("edge", "numpy", "dense", "dynamic", 1, False),
    "edge.fused.dense.dynamic": ("edge", "fused", "dense", "dynamic", 1, False),
}


#: Dual-engine cells: kind, backend, topology key, k, alpha.  The
#: diffusion/walk/coalescing batch processes are deterministic at the
#: frozen seed exactly like the primal ones.
DUAL_CELLS = {
    "dual-diffusion-k1.dense.static": ("diffusion", "dense", "static", 1, 0.5),
    "dual-diffusion-k2.csr.static-irregular": (
        "diffusion", "csr", "static-irregular", 2, 0.25,
    ),
    "dual-walks-k1.dense.static": ("walks", "dense", "static", 1, 0.5),
    "dual-walks-k2.dense.static-irregular": (
        "walks", "dense", "static-irregular", 2, 0.5,
    ),
    "dual-coalescing.dense.static": ("coalescing", "dense", "static", 1, 0.25),
}


def _run_dual_cell(recipe):
    kind, backend, topology, k, alpha = recipe
    cost = center_simple(linear_ramp(N, 0.0, 1.0))
    adjacency = _graph(topology)
    if kind == "diffusion":
        batch = BatchDiffusion(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=REPLICAS,
            seed=SEED, backend=backend,
        )
    elif kind == "walks":
        batch = BatchWalks(
            adjacency, cost=cost, alpha=alpha, k=k, replicas=REPLICAS,
            seed=SEED, backend=backend,
        )
    else:
        batch = BatchCoalescing(
            adjacency, alpha=alpha, replicas=REPLICAS, seed=SEED,
            backend=backend,
        )
    batch.run(STEPS)
    return batch


def _dual_state_hash(batch) -> str:
    if isinstance(batch, BatchDiffusion):
        payload = np.ascontiguousarray(batch.loads).tobytes()
    else:
        payload = np.ascontiguousarray(batch.positions).tobytes()
        if isinstance(batch, BatchCoalescing):
            payload += np.ascontiguousarray(batch.num_clusters).tobytes()
    return hashlib.sha256(payload).hexdigest()[:24]


def _run_cell(recipe):
    model, kernel, backend, topology, k, lazy = recipe
    initial = center_simple(linear_ramp(N, 0.0, 1.0))
    graph = _graph(topology)
    if model == "node":
        batch = BatchNodeModel(
            graph, initial, 0.5, k=k, replicas=REPLICAS, seed=SEED,
            lazy=lazy, backend=backend, kernel=kernel,
        )
    else:
        batch = BatchEdgeModel(
            graph, initial, 0.5, replicas=REPLICAS, seed=SEED,
            lazy=lazy, backend=backend, kernel=kernel,
        )
    batch.run(STEPS)
    return batch


def _state_hash(batch) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(batch.values).tobytes()
    ).hexdigest()[:24]


def _load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_every_cell():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regeneration pass (see test_regenerate_golden)")
    golden = _load_golden()
    assert set(golden["cells"]) == set(CELLS)
    assert set(golden["dual_cells"]) == set(DUAL_CELLS)


@pytest.mark.parametrize("cell_id", sorted(CELLS))
def test_end_state_matches_golden(cell_id):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regeneration pass (see test_regenerate_golden)")
    golden = _load_golden()
    actual = _state_hash(_run_cell(CELLS[cell_id]))
    assert actual == golden["cells"][cell_id], (
        f"trajectory drift in cell {cell_id!r}: hash {actual} != "
        f"golden {golden['cells'][cell_id]}; if the change is intentional, "
        "regenerate with REPRO_REGEN_GOLDEN=1 and commit the new fixtures"
    )


@pytest.mark.parametrize("cell_id", sorted(DUAL_CELLS))
def test_dual_end_state_matches_golden(cell_id):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regeneration pass (see test_regenerate_golden)")
    golden = _load_golden()
    actual = _dual_state_hash(_run_dual_cell(DUAL_CELLS[cell_id]))
    assert actual == golden["dual_cells"][cell_id], (
        f"trajectory drift in dual cell {cell_id!r}: hash {actual} != "
        f"golden {golden['dual_cells'][cell_id]}; if the change is "
        "intentional, regenerate with REPRO_REGEN_GOLDEN=1 and commit the "
        "new fixtures"
    )


@pytest.mark.skipif(
    not os.environ.get("REPRO_REGEN_GOLDEN"),
    reason="set REPRO_REGEN_GOLDEN=1 to rewrite the fixtures",
)
def test_regenerate_golden():
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "meta": {
            "n": N,
            "steps": STEPS,
            "replicas": REPLICAS,
            "seed": SEED,
            "switch_every": SWITCH_EVERY,
            "hash": "sha256(values.tobytes())[:24]",
            "dual_hash": (
                "sha256(loads|positions[+num_clusters] .tobytes())[:24]"
            ),
        },
        "cells": {
            cell_id: _state_hash(_run_cell(recipe))
            for cell_id, recipe in sorted(CELLS.items())
        },
        "dual_cells": {
            cell_id: _dual_state_hash(_run_dual_cell(recipe))
            for cell_id, recipe in sorted(DUAL_CELLS.items())
        },
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("cell_id", sorted(CELLS))
def test_end_state_matches_golden_under_tracing(cell_id):
    """The off-state contract, asserted in the on-state: an enabled
    tracer observes but never perturbs — every golden hash is
    bit-identical with tracing active (numpy and fused kernels alike)."""
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regeneration pass (see test_regenerate_golden)")
    from repro.obs import Tracer, activate

    golden = _load_golden()
    tracer = Tracer()
    with activate(tracer):
        actual = _state_hash(_run_cell(CELLS[cell_id]))
    assert actual == golden["cells"][cell_id], (
        f"tracing perturbed cell {cell_id!r}: hash {actual} != "
        f"golden {golden['cells'][cell_id]} — instrumentation must never "
        "touch RNG state or values"
    )


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
@pytest.mark.parametrize(
    "cell_id",
    sorted(c for c in CELLS if CELLS[c][1] == "fused"),
)
def test_jit_matches_fused_cells(cell_id):
    """jit is hashed implicitly: bit-identical to the fused golden."""
    model, _, backend, topology, k, lazy = CELLS[cell_id]
    fused = _run_cell((model, "fused", backend, topology, k, lazy))
    jit = _run_cell((model, "jit", backend, topology, k, lazy))
    assert jit.kernel == "jit"
    np.testing.assert_array_equal(fused.values, jit.values)
