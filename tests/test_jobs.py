"""Tests for the async job-orchestration service (repro.jobs).

Layered like the subsystem itself: file locks, the job model, the
queue's rename-atomic transitions, dedup coalescing, the worker run
inline, and finally full end-to-end service runs with subprocess
workers — including the acceptance scenarios: N concurrent identical
submissions costing one engine computation, SIGKILL crash recovery
with retry, and the submit/fetch round trip being bit-identical to a
synchronous run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.api import ArtifactStore, RunResult, RunSpec, execute
from repro.api.registry import REGISTRY
from repro.exceptions import JobError
from repro.jobs import (
    CANCELLED,
    COALESCED,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    Job,
    JobHandle,
    JobQueue,
    Orchestrator,
    Worker,
    backoff_seconds,
    jobs_telemetry,
    submit,
)
from repro.locks import FileLock, LockTimeout, atomic_write_text
from repro.obs import chrome_trace
from repro.obs.metrics import METRICS

TEST_EXPERIMENT_ID = "TEST-SVC"
_TEST_MODULE = "repro_svc_testexp"
_TEST_MODULE_SOURCE = textwrap.dedent(
    '''
    """Service-test probe experiment (written by tests/test_jobs.py)."""
    import os
    import time

    from repro.api.registry import ParamSpec, experiment
    from repro.sim.results import ResultTable


    @experiment(
        "TEST-SVC",
        artefact="job-service end-to-end probe",
        params={
            "touch_file": ParamSpec(
                str, "append one line per engine invocation", default=""
            ),
            "block_file": ParamSpec(
                str, "spin while this file exists", default=""
            ),
            "value": ParamSpec(int, "payload column", default=1),
        },
    )
    def run_probe(seed=0, touch_file="", block_file="", value=1):
        if touch_file:
            with open(touch_file, "a") as handle:
                handle.write(f"{os.getpid()}\\n")
        while block_file and os.path.exists(block_file):
            time.sleep(0.02)
        table = ResultTable("probe", ["seed", "value"])
        table.add_row(seed, value)
        return [table]
    '''
)


@pytest.fixture(scope="module")
def probe_module(tmp_path_factory):
    """The probe experiment, importable here AND by worker subprocesses."""
    directory = tmp_path_factory.mktemp("svc_mod")
    (directory / f"{_TEST_MODULE}.py").write_text(_TEST_MODULE_SOURCE)
    sys.path.insert(0, str(directory))
    extra = os.environ.get("PYTHONPATH", "")
    os.environ["PYTHONPATH"] = (
        f"{extra}{os.pathsep}{directory}" if extra else str(directory)
    )
    __import__(_TEST_MODULE)
    yield _TEST_MODULE
    sys.path.remove(str(directory))
    os.environ["PYTHONPATH"] = extra
    sys.modules.pop(_TEST_MODULE, None)
    REGISTRY.pop(TEST_EXPERIMENT_ID, None)


def _drain_inline(root, jobs=None):
    """Process everything queued with an in-process worker."""
    return Worker(str(root), poll=0.01).run(max_jobs=jobs, idle_exit=0.05)


# ----------------------------------------------------------------------
# File locks
# ----------------------------------------------------------------------
class TestFileLock:
    def test_mutual_exclusion_between_threads(self, tmp_path):
        path = tmp_path / "x.lock"
        order = []

        def hold():
            with FileLock(path):
                order.append("enter")
                time.sleep(0.1)
                order.append("exit")

        first = threading.Thread(target=hold)
        first.start()
        time.sleep(0.02)
        with FileLock(path, timeout=5):
            order.append("second")
        first.join()
        assert order == ["enter", "exit", "second"]

    def test_timeout_raises(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.05, stale_after=60).acquire()

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("dead\n")
        old = time.time() - 120
        os.utime(path, (old, old))
        with FileLock(path, timeout=1, stale_after=30):
            pass  # acquired despite the abandoned lock file

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        target = tmp_path / "data.json"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]  # no temp litter


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------
class TestJobModel:
    def test_json_round_trip(self):
        job = Job(spec=RunSpec("EXP-F4", seed=3), max_retries=5)
        job.error = "boom"
        clone = Job.from_json(job.to_json())
        assert clone == job
        assert clone.key == RunSpec("EXP-F4", seed=3).key()

    def test_unknown_state_rejected(self):
        with pytest.raises(JobError):
            Job(spec=RunSpec("EXP-F4"), state="lost")

    def test_malformed_record_rejected(self):
        with pytest.raises(JobError, match="malformed job record"):
            Job.from_payload({"id": "j1"})

    def test_backoff_grows_and_caps(self):
        delays = [backoff_seconds(attempt) for attempt in range(1, 12)]
        assert delays[:3] == [0.5, 1.0, 2.0]
        assert delays == sorted(delays)
        assert max(delays) == 30.0

    def test_backoff_jitter_is_deterministic_per_job(self):
        """Same (job, attempt) always yields the same delay — records
        and replays stay reproducible."""
        first = backoff_seconds(3, job_id="jdeadbeef0001")
        again = backoff_seconds(3, job_id="jdeadbeef0001")
        assert first == again
        assert first != backoff_seconds(4, job_id="jdeadbeef0001")

    def test_backoff_jitter_spreads_a_requeued_batch(self):
        """Regression: a dead-worker sweep requeues many jobs at one
        instant; jittered delays must not collide (claim stampede)."""
        from repro.jobs.model import BACKOFF_JITTER_FRACTION, new_job_id

        base = backoff_seconds(4)  # un-jittered: 4.0s for every job
        delays = [
            backoff_seconds(4, job_id=new_job_id()) for _ in range(64)
        ]
        assert len(set(delays)) == len(delays)  # all distinct
        floor = base * (1.0 - BACKOFF_JITTER_FRACTION)
        assert all(floor <= delay <= base for delay in delays)
        # The spread actually uses the band, not a corner of it.
        assert max(delays) - min(delays) > 0.1 * base

    def test_backoff_jitter_respects_the_cap(self):
        for attempt in range(1, 16):
            delay = backoff_seconds(attempt, job_id="jfeedface0002")
            assert delay <= 30.0


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_submit_enqueues_and_registers_key(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(RunSpec("EXP-F4"))
        assert job.state == QUEUED
        assert (tmp_path / "queued" / f"{job.id}.json").exists()
        assert queue.dedup.active_primary(job.key, queue._is_active) == job.id

    def test_claim_is_fifo_and_exclusive(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(RunSpec("EXP-F4", seed=1))
        second = queue.submit(RunSpec("EXP-F4", seed=2))
        claimed = queue.claim()
        assert claimed.id == first.id
        assert claimed.state == "claimed"
        assert queue.claim().id == second.id
        assert queue.claim() is None

    def test_requeue_backoff_then_quarantine(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(RunSpec("EXP-F4"), max_retries=1)
        job = queue.claim()
        retried = queue.requeue(job, "worker died")
        assert retried.state == QUEUED
        assert retried.attempts == 1
        assert retried.not_before > time.time()
        assert queue.claim() is None  # still inside the backoff window
        retried.not_before = 0.0
        queue.update(retried)
        job = queue.claim()
        quarantined = queue.requeue(job, "worker died again")
        assert quarantined.state == QUARANTINED
        assert "died again" in quarantined.error
        # terminal: the key is free for a fresh primary
        fresh = queue.submit(RunSpec("EXP-F4"))
        assert fresh.state == QUEUED

    def test_lost_ownership_is_an_error(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(RunSpec("EXP-F4"))
        job = queue.claim()
        queue.requeue(job, "presumed dead")  # orchestrator stole it back
        with pytest.raises(JobError, match="lost ownership"):
            queue.transition(job, DONE)

    def test_cancel_only_inactive(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(RunSpec("EXP-F4"))
        assert queue.cancel(job.id).state == CANCELLED
        job2 = queue.submit(RunSpec("EXP-F4"))
        queue.claim()
        with pytest.raises(JobError, match="only queued/coalesced"):
            queue.cancel(job2.id)

    def test_get_unknown_job(self, tmp_path):
        with pytest.raises(JobError, match="no job"):
            JobQueue(tmp_path).get("jdeadbeef")

    def test_heartbeats_round_trip_and_drop(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(RunSpec("EXP-F4"))
        job = queue.claim(worker_pid=4242)
        beat = queue.read_heartbeat(job.id)
        assert beat["pid"] == 4242
        queue.write_heartbeat(job, counters={"engine.replica_steps": 7.0})
        assert queue.read_heartbeat(job.id)["counters"] == {
            "engine.replica_steps": 7.0
        }
        queue.transition(job, DONE)
        assert queue.read_heartbeat(job.id) is None

    def test_stop_flag(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()


# ----------------------------------------------------------------------
# Dedup
# ----------------------------------------------------------------------
class TestDedup:
    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        queue = JobQueue(tmp_path)
        base = METRICS.value("jobs.deduped")
        handles = [submit(RunSpec("EXP-F4"), root=tmp_path) for _ in range(8)]
        states = [h.status(follow=False).state for h in handles]
        assert states.count(QUEUED) == 1
        assert states.count(COALESCED) == 7
        assert METRICS.value("jobs.deduped") - base == 7
        stats = queue.stats()
        assert stats["deduped"] == 7
        primary = handles[0].status(follow=False)
        for handle in handles[1:]:
            assert handle.status(follow=False).coalesced_into == primary.id
            assert handle.status(follow=True).id == primary.id

    def test_different_configurations_do_not_coalesce(self, tmp_path):
        first = submit(RunSpec("EXP-F4", seed=0), root=tmp_path)
        second = submit(RunSpec("EXP-F4", seed=1), root=tmp_path)
        assert first.status(follow=False).state == QUEUED
        assert second.status(follow=False).state == QUEUED

    def test_terminal_primary_frees_the_key(self, tmp_path):
        submit(RunSpec("EXP-F4"), root=tmp_path)
        _drain_inline(tmp_path)
        again = submit(RunSpec("EXP-F4"), root=tmp_path)
        assert again.status(follow=False).state == QUEUED


# ----------------------------------------------------------------------
# Worker (inline, no subprocesses)
# ----------------------------------------------------------------------
class TestWorkerInline:
    def test_done_job_round_trips_result(self, tmp_path):
        handle = submit(RunSpec("EXP-F4", seed=5), root=tmp_path)
        assert _drain_inline(tmp_path) == 1
        job = handle.status()
        assert job.state == DONE
        result = handle.result()
        direct = execute(RunSpec("EXP-F4", seed=5))
        assert [t.to_payload() for t in result.tables] == [
            t.to_payload() for t in direct.tables
        ]
        assert result.provenance.graph_hashes == direct.provenance.graph_hashes

    def test_coalesced_followers_share_the_artifact(self, tmp_path):
        handles = [
            submit(RunSpec("EXP-F4", seed=2), root=tmp_path) for _ in range(3)
        ]
        assert _drain_inline(tmp_path) == 1  # one computation for three
        payloads = [
            [t.to_payload() for t in h.wait(timeout=5).tables] for h in handles
        ]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_deterministic_failure_is_terminal(self, tmp_path):
        base = METRICS.value("jobs.failed")
        handle = submit(RunSpec("EXP-NOPE"), root=tmp_path)
        _drain_inline(tmp_path)
        job = handle.status()
        assert job.state == FAILED
        assert "EXP-NOPE" in job.error
        assert METRICS.value("jobs.failed") - base == 1
        with pytest.raises(JobError, match="failed"):
            handle.wait(timeout=1)

    def test_traced_job_archives_telemetry(self, tmp_path):
        from repro.obs import summarize

        handle = submit(RunSpec("EXP-F1", trace=True), root=tmp_path)
        _drain_inline(tmp_path)
        result = handle.wait(timeout=5)
        assert result.telemetry is not None
        assert result.telemetry["spans"]
        summary = summarize(result.telemetry)
        assert summary["span_count"] > 0

    def test_wait_timeout(self, tmp_path):
        handle = submit(RunSpec("EXP-F4"), root=tmp_path)
        with pytest.raises(JobError, match="timed out"):
            handle.wait(timeout=0.1, poll=0.02)

    def test_worker_stops_on_stop_file(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.ensure_layout()
        queue.request_stop()
        assert Worker(str(tmp_path)).run() == 0  # returns immediately


# ----------------------------------------------------------------------
# Orchestrator sweep (no subprocesses: dead pids faked)
# ----------------------------------------------------------------------
class TestOrchestratorSweep:
    @staticmethod
    def _dead_pid() -> int:
        proc = subprocess.Popen(["true"])
        proc.wait()
        return proc.pid

    def test_dead_worker_job_is_requeued(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(RunSpec("EXP-F4"))
        queue.claim(worker_pid=self._dead_pid())
        orchestrator = Orchestrator(str(tmp_path), workers=0)
        base = METRICS.value("jobs.retried")
        assert orchestrator.sweep() == 1
        assert METRICS.value("jobs.retried") - base == 1
        [job] = queue.jobs(states=(QUEUED,))
        assert job.attempts == 1
        assert "died" in job.error

    def test_poison_job_quarantined_after_max_retries(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(RunSpec("EXP-F4"), max_retries=1)
        orchestrator = Orchestrator(str(tmp_path), workers=0)
        for _ in range(2):
            queue.claim(worker_pid=self._dead_pid())
            orchestrator.sweep()
            requeued = queue.jobs(states=(QUEUED,))
            for job in requeued:  # lift the backoff gate for the re-claim
                job.not_before = 0.0
                queue.update(job)
        [job] = queue.jobs(states=(QUARANTINED,))
        assert job.attempts == 1
        assert queue.stats()["quarantined"] == 1

    def test_live_fresh_worker_is_left_alone(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(RunSpec("EXP-F4"))
        queue.claim(worker_pid=os.getpid())
        assert Orchestrator(str(tmp_path), workers=0).sweep() == 0


# ----------------------------------------------------------------------
# Service telemetry
# ----------------------------------------------------------------------
class TestJobsTelemetry:
    def test_spans_and_counters(self, tmp_path):
        handles = [
            submit(RunSpec("EXP-F4", trace=True), root=tmp_path)
            for _ in range(2)
        ]
        _drain_inline(tmp_path)
        handles[0].wait(timeout=5)
        queue = JobQueue(tmp_path)
        telemetry = jobs_telemetry(queue)
        assert telemetry["schema"] == 1
        assert telemetry["counters"]["jobs.submitted"] == 2.0
        assert telemetry["counters"]["jobs.deduped"] == 1.0
        job_spans = [
            span for span in telemetry["spans"] if span["name"] == "job"
        ]
        assert len(job_spans) == 2
        done_span = next(
            span for span in job_spans if span["attrs"]["state"] == DONE
        )
        run_child = next(
            child for child in done_span["children"]
            if child["name"] == "job.run"
        )
        # the worker's archived trace is merged under the job's run span
        assert run_child.get("children"), "worker spans not grafted"
        # and the whole block renders through the existing obs tooling
        events = chrome_trace(telemetry)["traceEvents"]
        assert any(event["ph"] == "X" for event in events)


# ----------------------------------------------------------------------
# End-to-end service runs (subprocess workers)
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_eight_concurrent_identical_submissions_one_computation(
        self, tmp_path, probe_module
    ):
        root = tmp_path / "svc"
        touch = tmp_path / "invocations.txt"
        spec = RunSpec(
            TEST_EXPERIMENT_ID, overrides={"touch_file": str(touch)}
        )
        threads_results = []

        def submit_one():
            threads_results.append(submit(spec, root=root))

        threads = [threading.Thread(target=submit_one) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = Orchestrator(
            str(root), workers=2, poll=0.05, worker_poll=0.05,
            imports=[probe_module],
        ).serve(until_idle=True, timeout=90)
        assert stats["done"] == 1
        assert stats["deduped"] == 7
        assert touch.read_text().count("\n") == 1  # ONE engine computation
        reference = [
            t.to_payload() for t in execute(spec).tables
        ]
        for handle in threads_results:
            result = handle.wait(timeout=10)
            assert [t.to_payload() for t in result.tables] == reference
        # exactly one artefact in the fan-out store
        assert len(ArtifactStore(root / "store").records()) == 1

    def test_sigkilled_worker_job_is_retried_to_completion(
        self, tmp_path, probe_module
    ):
        root = tmp_path / "svc"
        block = tmp_path / "block"
        block.touch()
        spec = RunSpec(
            TEST_EXPERIMENT_ID,
            overrides={"block_file": str(block)},
            trace=True,
        )
        handle = submit(spec, root=root)
        job_id = handle.status(follow=False).id
        orchestrator = Orchestrator(
            str(root), workers=1, heartbeat_timeout=3.0, poll=0.05,
            worker_poll=0.05, heartbeat_interval=0.1,
            imports=[probe_module],
        )
        server = threading.Thread(
            target=orchestrator.serve,
            kwargs={"until_idle": True, "timeout": 90},
        )
        server.start()
        try:
            queue = JobQueue(root)
            deadline = time.monotonic() + 60
            victim = None
            while time.monotonic() < deadline:
                beat = queue.read_heartbeat(job_id)
                if beat and beat.get("state") == RUNNING and beat.get("pid"):
                    victim = beat["pid"]
                    break
                time.sleep(0.05)
            assert victim, "worker never started running the job"
            os.kill(victim, signal.SIGKILL)
            block.unlink()  # the retry must complete quickly
            result = handle.wait(timeout=60)
        finally:
            queue.request_stop()
            server.join(timeout=30)
        job = handle.status()
        assert job.state == DONE
        assert job.attempts == 1  # exactly one requeue
        assert queue.stats()["retried"] == 1
        # provenance survived the retry: the resolved parameters are the
        # submitted configuration, and the traced run's telemetry merged
        assert result.provenance.parameters["block_file"] == str(block)
        assert result.telemetry is not None
        telemetry = jobs_telemetry(queue)
        [job_span] = [
            span for span in telemetry["spans"] if span["name"] == "job"
        ]
        assert job_span["attrs"]["attempts"] == 1
        run_child = next(
            child for child in job_span["children"]
            if child["name"] == "job.run"
        )
        assert run_child.get("children"), "worker trace not merged"

    def test_cli_submit_serve_fetch_matches_synchronous_run(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        root = str(tmp_path / "svc")
        assert main([
            "submit", "EXP-F4", "--seed", "3", "--root", root, "--json",
        ]) == 0
        [entry] = json.loads(capsys.readouterr().out)
        assert main([
            "serve", "--root", root, "--workers", "1", "--until-idle",
            "--timeout", "90",
        ]) == 0
        capsys.readouterr()
        assert main(["fetch", entry["job"], "--root", root, "--json"]) == 0
        fetched = json.loads(capsys.readouterr().out)
        assert main(["run", "EXP-F4", "--seed", "3", "--json"]) == 0
        [ran] = json.loads(capsys.readouterr().out)
        assert fetched["tables"] == ran["tables"]
        assert fetched["spec"]["seed"] == 3
        assert (
            fetched["provenance"]["graph_hashes"]
            == ran["provenance"]["graph_hashes"]
        )


# ----------------------------------------------------------------------
# Concurrent-writer safety of the ArtifactStore (satellite)
# ----------------------------------------------------------------------
class TestStoreConcurrency:
    @staticmethod
    def _result(index: int) -> RunResult:
        from repro.api.spec import Provenance
        from repro.sim.results import ResultTable

        table = ResultTable("t", ["i"])
        table.add_row(index)
        return RunResult(
            spec=RunSpec(f"EXP-CONC-{index}"),
            tables=[table],
            provenance=Provenance(
                parameters={}, engine=None, version="test",
                graph_hashes=[], wall_time_s=0.0, timestamp=float(index),
            ),
        )

    def test_parallel_saves_lose_no_manifest_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        results = [self._result(index) for index in range(16)]
        threads = [
            threading.Thread(target=store.save, args=(result,))
            for result in results
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = store.records()
        assert len(records) == 16  # unlocked read-modify-write drops some
        for index in range(16):
            reloaded = store.load(f"EXP-CONC-{index}.fast.s0")
            assert reloaded.tables[0].rows == [[index]]
